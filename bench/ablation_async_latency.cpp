// Ablation — asynchronous operation and broadcast latency.
//
// The paper motivates the DAG precisely for asynchronous deployments
// (§5.3.3: "each client continuously runs the training process as often as
// its resources permit"). This bench runs the event-driven simulator and
// sweeps the broadcast latency, exposing a dynamics result the round-based
// simulation hides: latency (i.e. transaction concurrency) is what gives
// the DAG its width — with instantaneous broadcast the tip set collapses
// towards a chain, forcing cross-cluster approvals and killing
// specialization, while moderate latency reproduces the paper's clustering.
//
// Thin driver over the registry's "ablation-async-latency" scenario.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — async broadcast latency vs specialization",
                      "latency sustains DAG width; zero latency collapses specialization");
  // Latency as a fraction of the mean client step interval (1.0).
  const std::vector<double> latencies = {0.0, 0.1, 0.3, 1.0};

  auto csv = bench::open_csv(args, "ablation_async_latency",
                             {"latency", "pureness", "mean_accuracy", "dag_size", "tips"});

  std::cout << "\nlatency  pureness  accuracy  dag_size  tips\n";
  for (double latency : latencies) {
    scenario::ScenarioSpec spec = scenario::get_scenario("ablation-async-latency");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.broadcast_latency = latency;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::cout << bench::fmt(latency, 1) << "      " << bench::fmt(result.pureness) << "     "
              << bench::fmt(result.final_accuracy) << "     " << result.dag_size << "       "
              << result.tips << "\n";
    csv.row({bench::fmt(latency, 1), bench::fmt(result.pureness),
             bench::fmt(result.final_accuracy), std::to_string(result.dag_size),
             std::to_string(result.tips)});
  }
  std::cout << "\nShape check: pureness near the 0.33 random base at latency 0, rising"
               "\nsharply once the latency sustains concurrent tips.\n";
  return 0;
}
