// Ablation — asynchronous operation and broadcast latency.
//
// The paper motivates the DAG precisely for asynchronous deployments
// (§5.3.3: "each client continuously runs the training process as often as
// its resources permit"). This bench runs the event-driven simulator and
// sweeps the broadcast latency, exposing a dynamics result the round-based
// simulation hides: latency (i.e. transaction concurrency) is what gives
// the DAG its width — with instantaneous broadcast the tip set collapses
// towards a chain, forcing cross-cluster approvals and killing
// specialization, while moderate latency reproduces the paper's clustering.
#include "bench_common.hpp"
#include "data/synthetic_digits.hpp"
#include "sim/async_simulator.hpp"
#include "sim/models.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — async broadcast latency vs specialization",
                      "latency sustains DAG width; zero latency collapses specialization");
  const std::size_t steps = args.rounds ? args.rounds * 5 : 400;
  // Latency as a fraction of the mean client step interval (1.0).
  const std::vector<double> latencies = {0.0, 0.1, 0.3, 1.0};

  auto csv = bench::open_csv(args, "ablation_async_latency",
                             {"latency", "pureness", "mean_accuracy", "dag_size", "tips"});

  std::cout << "\nlatency  pureness  accuracy  dag_size  tips\n";
  for (double latency : latencies) {
    data::SyntheticDigitsConfig data_config;
    data_config.num_clients = 15;
    data_config.samples_per_client = 100;
    data_config.image_size = 10;
    data_config.seed = args.seed;
    auto ds = data::make_fmnist_clustered(data_config);
    auto factory = sim::make_mlp_factory(shape_numel(ds.element_shape), 24, 10);
    sim::AsyncSimulatorConfig config;
    config.client.train = {1, 10, 10, 0.05};
    config.client.alpha = 10.0;
    config.broadcast_latency = latency;
    config.seed = args.seed;
    sim::AsyncDagSimulator simulator(std::move(ds), factory, config);
    const auto records = simulator.run_steps(steps);

    double acc = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = records.size() - records.size() / 4; i < records.size(); ++i) {
      acc += records[i].result.trained_eval.accuracy;
      ++counted;
    }
    const double pureness = simulator.approval_pureness().pureness;
    const std::size_t tips = simulator.dag().tips().size();
    std::cout << bench::fmt(latency, 1) << "      " << bench::fmt(pureness) << "     "
              << bench::fmt(acc / static_cast<double>(counted)) << "     "
              << simulator.dag().size() << "       " << tips << "\n";
    csv.row({bench::fmt(latency, 1), bench::fmt(pureness),
             bench::fmt(acc / static_cast<double>(counted)),
             std::to_string(simulator.dag().size()), std::to_string(tips)});
  }
  std::cout << "\nShape check: pureness near the 0.33 random base at latency 0, rising"
               "\nsharply once the latency sustains concurrent tips.\n";
  return 0;
}
