// Ablation — decentralized alternatives on clustered non-IID data:
// Specializing DAG vs gossip learning vs FedAvg on FMNIST-clustered.
//
// Gossip (paper §3.2) averages with a uniformly random peer and therefore
// generalizes across clusters like FedAvg does; the DAG's accuracy-aware
// partner selection is what enables specialization. Expectation: DAG's
// per-client accuracy >= both baselines on clustered data.
//
// Thin driver over the registry's "ablation-baselines" scenario: the
// algorithm backends run behind the same runner, so the sweep is one axis.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — DAG vs gossip learning vs FedAvg on clustered data",
                      "accuracy-aware DAG specializes; gossip/FedAvg generalize");

  auto csv = bench::open_csv(args, "ablation_baselines",
                             {"algorithm", "round", "mean_accuracy"});

  std::vector<std::pair<std::string, double>> late;
  for (const scenario::AlgorithmKind algorithm :
       {scenario::AlgorithmKind::kDag, scenario::AlgorithmKind::kGossip,
        scenario::AlgorithmKind::kFedAvg}) {
    scenario::ScenarioSpec spec = scenario::get_scenario("ablation-baselines");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.algorithm = algorithm;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    const std::size_t window = std::min<std::size_t>(10, result.series.size());
    double tail = 0.0;
    for (const scenario::ScenarioPoint& point : result.series) {
      csv.row({result.algorithm, std::to_string(point.round), bench::fmt(point.mean_accuracy)});
      if (point.round + window > result.series.size()) tail += point.mean_accuracy;
    }
    late.emplace_back(result.algorithm, tail / static_cast<double>(window));
  }

  std::cout << "late accuracy (mean of last 10 rounds):\n";
  for (const auto& [algorithm, accuracy] : late) {
    std::cout << "  " << algorithm << ": " << bench::fmt(accuracy) << "\n";
  }
  std::cout << "\nShape check: dag >= gossip and dag >= fedavg on clustered non-IID data.\n";
  return 0;
}
