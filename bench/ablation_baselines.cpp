// Ablation — decentralized alternatives on clustered non-IID data:
// Specializing DAG vs gossip learning vs FedAvg on FMNIST-clustered.
//
// Gossip (paper §3.2) averages with a uniformly random peer and therefore
// generalizes across clusters like FedAvg does; the DAG's accuracy-aware
// partner selection is what enables specialization. Expectation: DAG's
// per-client accuracy >= both baselines on clustered data.
#include "bench_common.hpp"
#include "fl/fed_server.hpp"
#include "fl/gossip.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — DAG vs gossip learning vs FedAvg on clustered data",
                      "accuracy-aware DAG specializes; gossip/FedAvg generalize");
  const std::size_t rounds = args.rounds ? args.rounds : 80;
  const sim::PresetOptions options{args.seed, false};

  auto csv = bench::open_csv(args, "ablation_baselines",
                             {"algorithm", "round", "mean_accuracy"});

  // --- DAG
  double dag_late = 0.0;
  {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset(options);
    sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto& record = simulator.run_round();
      csv.row({"dag", std::to_string(round), bench::fmt(record.mean_trained_accuracy())});
      if (round > rounds - 10) dag_late += record.mean_trained_accuracy();
    }
  }
  dag_late /= 10.0;

  // --- gossip
  double gossip_late = 0.0;
  {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset(options);
    fl::GossipConfig config;
    config.train = preset.sim.client.train;
    fl::GossipNetwork net(&preset.dataset, preset.factory, config, Rng(args.seed));
    Rng select_rng(args.seed ^ 0x6055);
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto active = select_rng.sample_without_replacement(
          preset.dataset.clients.size(), preset.sim.clients_per_round);
      const auto evals = net.run_round(active);
      double mean = 0.0;
      for (const auto& e : evals) mean += e.accuracy;
      mean /= static_cast<double>(evals.size());
      csv.row({"gossip", std::to_string(round), bench::fmt(mean)});
      if (round > rounds - 10) gossip_late += mean;
    }
  }
  gossip_late /= 10.0;

  // --- FedAvg
  double fedavg_late = 0.0;
  {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset(options);
    fl::FedServerConfig config;
    config.train = preset.sim.client.train;
    fl::FedServer server(preset.factory, config, Rng(args.seed));
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto result = server.run_round(preset.dataset, preset.sim.clients_per_round);
      double mean = 0.0;
      for (const auto& e : result.client_evals) mean += e.accuracy;
      mean /= static_cast<double>(result.client_evals.size());
      csv.row({"fedavg", std::to_string(round), bench::fmt(mean)});
      if (round > rounds - 10) fedavg_late += mean;
    }
  }
  fedavg_late /= 10.0;

  std::cout << "late accuracy (mean of last 10 rounds):\n"
            << "  dag:    " << bench::fmt(dag_late) << "\n"
            << "  gossip: " << bench::fmt(gossip_late) << "\n"
            << "  fedavg: " << bench::fmt(fedavg_late) << "\n";
  std::cout << "\nShape check: dag >= gossip and dag >= fedavg on clustered non-IID data.\n";
  return 0;
}
