// Ablation — number of approved parents per transaction.
//
// The paper fixes 2 approvals (the Tangle's choice). This ablation sweeps
// 1 / 2 / 3 / 5 parents on FMNIST-clustered. 1 parent degenerates into
// per-walk chains (no averaging — no knowledge transfer between lineages);
// more parents average more models per update, which generalizes harder and
// can dilute specialization.
//
// Thin driver over the registry's "ablation-num-parents" scenario.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — approvals per transaction (paper: 2)",
                      "2 parents balances mixing and specialization");

  // Pureness is an end-of-run metric here (the runner reports it once per
  // run); the per-round column carries the accuracy series only.
  auto csv = bench::open_csv(args, "ablation_num_parents",
                             {"parents", "round", "accuracy", "final_pureness"});

  std::cout << "parents  late_accuracy  pureness  dag_size\n";
  for (const std::size_t parents : {1u, 2u, 3u, 5u}) {
    scenario::ScenarioSpec spec = scenario::get_scenario("ablation-num-parents");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.client.num_parents = parents;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    for (const scenario::ScenarioPoint& point : result.series) {
      if (point.round % 10 == 0 && point.round != result.series.size()) {
        csv.row({std::to_string(parents), std::to_string(point.round),
                 bench::fmt(point.mean_accuracy), ""});
      }
    }
    // The final row always carries the end-of-run pureness.
    csv.row({std::to_string(parents), std::to_string(result.series.size()),
             bench::fmt(result.series.back().mean_accuracy), bench::fmt(result.pureness)});
    std::cout << parents << "        " << bench::fmt(result.final_accuracy) << "          "
              << bench::fmt(result.pureness) << "     " << result.dag_size << "\n";
  }
  std::cout << "\nShape check: accuracy should not collapse for any setting; pureness is"
               "\nhighest for small parent counts (less cross-cluster averaging).\n";
  return 0;
}
