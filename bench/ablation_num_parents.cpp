// Ablation — number of approved parents per transaction.
//
// The paper fixes 2 approvals (the Tangle's choice). This ablation sweeps
// 1 / 2 / 3 / 5 parents on FMNIST-clustered. 1 parent degenerates into
// per-walk chains (no averaging — no knowledge transfer between lineages);
// more parents average more models per update, which generalizes harder and
// can dilute specialization.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — approvals per transaction (paper: 2)",
                      "2 parents balances mixing and specialization");
  const std::size_t rounds = args.rounds ? args.rounds : 80;

  auto csv = bench::open_csv(args, "ablation_num_parents",
                             {"parents", "round", "accuracy", "pureness"});

  std::cout << "parents  late_accuracy  pureness  dag_size\n";
  for (const std::size_t parents : {1u, 2u, 3u, 5u}) {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset({args.seed, false});
    preset.sim.client.num_parents = parents;
    sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
    double late_acc = 0.0;
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto& record = simulator.run_round();
      if (round > rounds - 10) late_acc += record.mean_trained_accuracy();
      if (round % 10 == 0) {
        csv.row({std::to_string(parents), std::to_string(round),
                 bench::fmt(record.mean_trained_accuracy()),
                 bench::fmt(simulator.approval_pureness().pureness)});
      }
    }
    std::cout << parents << "        " << bench::fmt(late_acc / 10.0) << "          "
              << bench::fmt(simulator.approval_pureness().pureness) << "     "
              << simulator.dag().size() << "\n";
  }
  std::cout << "\nShape check: accuracy should not collapse for any setting; pureness is"
               "\nhighest for small parent counts (less cross-cluster averaging).\n";
  return 0;
}
