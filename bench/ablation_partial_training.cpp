// Ablation — partial-layer training (the paper's future-work direction:
// "integrate ideas from multi-task and personalized federated learning such
// as training only some layers of the machine learning model").
//
// Clients train only the classifier head on top of frozen feature layers
// (the registry's "ablation-partial-training" base), compared against full
// training: accuracy, pureness, and wall time. Thin driver over the
// registry scenario; the sweep axis is train.freeze_prefix_params.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — partial-layer training (paper future work)",
                      "head-only training trades some accuracy for cheaper rounds");

  auto csv = bench::open_csv(args, "ablation_partial_training",
                             {"mode", "round", "accuracy"});

  std::cout << "mode       late_accuracy  pureness  wall_seconds\n";
  // The MLP has 4 parameter tensors; freezing the first two trains only the
  // classifier head on top of fixed random features.
  for (const auto& [label, freeze] :
       {std::pair<const char*, std::size_t>{"full", 0}, {"head-only", 2}}) {
    scenario::ScenarioSpec spec = scenario::get_scenario("ablation-partial-training");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.client.train.freeze_prefix_params = freeze;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    for (const scenario::ScenarioPoint& point : result.series) {
      if (point.round % 10 == 0) {
        csv.row({label, std::to_string(point.round), bench::fmt(point.mean_accuracy)});
      }
    }
    std::cout << label << std::string(11 - std::string(label).size(), ' ')
              << bench::fmt(result.final_accuracy) << "          "
              << bench::fmt(result.pureness) << "     " << bench::fmt(result.wall_seconds, 1)
              << "\n";
  }
  std::cout << "\nShape check: head-only training remains well above chance (0.1) and"
               "\nstill specializes (pureness above the 0.33 base), at reduced accuracy"
               "\nrelative to full training.\n";
  return 0;
}
