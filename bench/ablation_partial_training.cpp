// Ablation — partial-layer training (the paper's future-work direction:
// "integrate ideas from multi-task and personalized federated learning such
// as training only some layers of the machine learning model").
//
// Clients first train the full model; after a warm-up the feature layers
// are frozen and only the classifier head keeps training. Compared against
// full training throughout: accuracy, pureness, and local training time.
#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/timer.hpp"

using namespace specdag;

namespace {

struct Outcome {
  double late_accuracy = 0.0;
  double pureness = 0.0;
  double seconds = 0.0;
};

Outcome run_frozen(std::size_t freeze_prefix, std::size_t rounds, std::uint64_t seed,
                   CsvWriter& csv, const std::string& label) {
  sim::ExperimentPreset preset = sim::fmnist_clustered_preset({seed, false});
  preset.sim.client.train.freeze_prefix_params = freeze_prefix;
  sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
  Outcome outcome;
  Timer timer;
  for (std::size_t round = 1; round <= rounds; ++round) {
    simulator.run_round();
    const auto& record = simulator.history().back();
    if (round > rounds - 10) outcome.late_accuracy += record.mean_trained_accuracy();
    if (round % 10 == 0) {
      csv.row({label, std::to_string(round), bench::fmt(record.mean_trained_accuracy())});
    }
  }
  outcome.seconds = timer.elapsed_seconds();
  outcome.late_accuracy /= 10.0;
  outcome.pureness = simulator.approval_pureness().pureness;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — partial-layer training (paper future work)",
                      "head-only training trades some accuracy for cheaper rounds");
  const std::size_t rounds = args.rounds ? args.rounds : 80;

  auto csv = bench::open_csv(args, "ablation_partial_training",
                             {"mode", "round", "accuracy"});

  const Outcome full = run_frozen(0, rounds, args.seed, csv, "full");
  // The MLP has 4 parameter tensors; freezing the first two trains only the
  // classifier head on top of fixed random features.
  const Outcome head_only = run_frozen(2, rounds, args.seed, csv, "head-only");

  std::cout << "mode       late_accuracy  pureness  wall_seconds\n";
  std::cout << "full       " << bench::fmt(full.late_accuracy) << "          "
            << bench::fmt(full.pureness) << "     " << bench::fmt(full.seconds, 1) << "\n";
  std::cout << "head-only  " << bench::fmt(head_only.late_accuracy) << "          "
            << bench::fmt(head_only.pureness) << "     " << bench::fmt(head_only.seconds, 1)
            << "\n";
  std::cout << "\nShape check: head-only training remains well above chance (0.1) and"
               "\nstill specializes (pureness above the 0.33 base), at reduced accuracy"
               "\nrelative to full training.\n";
  return 0;
}
