// Ablation — the publish-if-better gate (paper §4.1: "clients only publish
// their model update if the training resulted in a model that performs
// better ... than the current consensus model").
//
// Compares gate on vs off on FMNIST-clustered: accuracy, approval pureness,
// and DAG size. Expectation: without the gate every client publishes every
// round (larger DAG, including regressions); the gate filters bad updates
// without slowing convergence.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — publish-if-better gate",
                      "gate filters regressive updates at equal or better accuracy");
  const std::size_t rounds = args.rounds ? args.rounds : 80;

  auto csv = bench::open_csv(args, "ablation_publish_gate",
                             {"gate", "round", "accuracy", "published", "dag_size"});

  for (const bool gate : {true, false}) {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset({args.seed, false});
    preset.sim.client.publish_gate = gate;
    sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
    double late_acc = 0.0;
    std::size_t published_total = 0;
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto& record = simulator.run_round();
      published_total += record.publish_count();
      if (round > rounds - 10) late_acc += record.mean_trained_accuracy();
      csv.row({gate ? "on" : "off", std::to_string(round),
               bench::fmt(record.mean_trained_accuracy()),
               std::to_string(record.publish_count()),
               std::to_string(simulator.dag().size())});
    }
    std::cout << "gate " << (gate ? "on " : "off") << ": late accuracy "
              << bench::fmt(late_acc / 10.0) << ", pureness "
              << bench::fmt(simulator.approval_pureness().pureness) << ", published "
              << published_total << "/" << rounds * preset.sim.clients_per_round
              << ", dag size " << simulator.dag().size() << "\n";
  }
  std::cout << "\nShape check: with the gate on, fewer transactions are published while"
               "\nlate accuracy stays at least as high.\n";
  return 0;
}
