// Ablation — the publish-if-better gate (paper §4.1: "clients only publish
// their model update if the training resulted in a model that performs
// better ... than the current consensus model").
//
// Compares gate on vs off on FMNIST-clustered: accuracy, approval pureness,
// and DAG size. Expectation: without the gate every client publishes every
// round (larger DAG, including regressions); the gate filters bad updates
// without slowing convergence.
//
// Thin driver over the registry's "ablation-publish-gate" scenario.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — publish-if-better gate",
                      "gate filters regressive updates at equal or better accuracy");

  auto csv = bench::open_csv(args, "ablation_publish_gate",
                             {"gate", "round", "accuracy", "published", "dag_size"});

  for (const bool gate : {true, false}) {
    scenario::ScenarioSpec spec = scenario::get_scenario("ablation-publish-gate");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.client.publish_gate = gate;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::size_t published_total = 0;
    for (const scenario::ScenarioPoint& point : result.series) {
      published_total += point.publishes;
      csv.row({gate ? "on" : "off", std::to_string(point.round),
               bench::fmt(point.mean_accuracy), std::to_string(point.publishes),
               std::to_string(point.dag_size)});
    }
    std::cout << "gate " << (gate ? "on " : "off") << ": late accuracy "
              << bench::fmt(result.final_accuracy) << ", pureness "
              << bench::fmt(result.pureness) << ", published " << published_total << "/"
              << result.series.size() * spec.clients_per_round << ", dag size "
              << result.dag_size << "\n";
  }
  std::cout << "\nShape check: with the gate on, fewer transactions are published while"
               "\nlate accuracy stays at least as high.\n";
  return 0;
}
