// Ablation — random-weights attack rate (paper §4.4, first threat model).
//
// An attacker injects transactions with random weights via the random tip
// selector. Sweeping the attack rate exposes the trade-off §4.4 describes:
// at low rates the accuracy-aware walk routes around junk (its accuracy is
// ~chance) and honest training is unaffected; when malicious updates start
// dominating the tip set they can take over the consensus — which is why
// rate limiting (proof-of-work) matters.
//
// Reported per rate: honest consensus accuracy, fraction of honest
// consensus references that are attacker transactions, and junk share of
// traffic. Thin driver over the registry's "ablation-random-weights"
// scenario: the attack schedule and the takeover metrics run inside the
// scenario engine; this main only sweeps the rate.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — random-weights attack rate",
                      "low-rate junk is routed around; dominating junk takes over");
  // Attacker transactions per round (0 = no attack).
  const std::vector<double> rates = {0.0, 0.25, 1.0, 3.0};

  auto csv = bench::open_csv(args, "ablation_random_weights_attack",
                             {"rate", "junk_traffic_share", "consensus_accuracy",
                              "junk_reference_fraction"});

  std::cout << "\nrate/round  junk_share  consensus_acc  junk_refs\n";
  for (double rate : rates) {
    scenario::ScenarioSpec spec = scenario::get_scenario("ablation-random-weights");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.attacks.random_weights.rate = rate;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    const double junk_share = static_cast<double>(result.attacker_transactions) /
                              static_cast<double>(result.dag_size - 1);
    const double junk_refs = rate > 0.0 ? result.junk_reference_fraction : 0.0;
    std::cout << bench::fmt(rate, 2) << "        " << bench::fmt(junk_share, 2) << "        "
              << bench::fmt(result.consensus_accuracy) << "          "
              << bench::fmt(junk_refs, 2) << "\n";
    csv.row({bench::fmt(rate, 2), bench::fmt(junk_share), bench::fmt(result.consensus_accuracy),
             bench::fmt(junk_refs)});
  }
  std::cout << "\nShape check: consensus accuracy stays high and junk references stay"
               "\nrare at low rates; both degrade as junk approaches a dominant share"
               "\n(the paper's argument for rate-limiting publication).\n";
  return 0;
}
