// Ablation — random-weights attack rate (paper §4.4, first threat model).
//
// An attacker injects transactions with random weights via the random tip
// selector. Sweeping the attack rate exposes the trade-off §4.4 describes:
// at low rates the accuracy-aware walk routes around junk (its accuracy is
// ~chance) and honest training is unaffected; when malicious updates start
// dominating the tip set they can take over the consensus — which is why
// rate limiting (proof-of-work) matters.
//
// Reported per rate: honest consensus accuracy, fraction of honest
// consensus references that are attacker transactions, and junk share of
// traffic.
#include "bench_common.hpp"
#include "fl/attacker.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — random-weights attack rate",
                      "low-rate junk is routed around; dominating junk takes over");
  const std::size_t rounds = args.rounds ? args.rounds : 60;
  // Attacker transactions per round (0 = no attack).
  const std::vector<double> rates = {0.0, 0.25, 1.0, 3.0};

  auto csv = bench::open_csv(args, "ablation_random_weights_attack",
                             {"rate", "junk_traffic_share", "consensus_accuracy",
                              "junk_reference_fraction"});

  std::cout << "\nrate/round  junk_share  consensus_acc  junk_refs\n";
  for (double rate : rates) {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset({args.seed, false});
    nn::ModelFactory factory = preset.factory;
    sim::DagSimulator simulator(std::move(preset.dataset), factory, preset.sim);

    nn::Sequential probe = factory();
    fl::RandomWeightAttackerConfig attack_config;
    attack_config.transactions_per_round = 1;
    fl::RandomWeightAttacker attacker(/*publisher_id=*/1000, probe.num_weights(),
                                      attack_config, Rng(args.seed ^ 0xBAD));

    std::size_t junk_published = 0;
    double budget = 0.0;
    for (std::size_t round = 0; round < rounds; ++round) {
      simulator.run_round();
      budget += rate;
      while (budget >= 1.0) {
        attacker.attack(simulator.network().dag(), round);
        ++junk_published;
        budget -= 1.0;
      }
    }

    const auto evals = simulator.evaluate_consensus_all();
    double mean_acc = 0.0;
    for (const auto& e : evals) mean_acc += e.accuracy;
    mean_acc /= static_cast<double>(evals.size());

    std::size_t junk_refs = 0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      const dag::TxId ref = simulator.network().consensus_reference(static_cast<int>(i));
      if (simulator.dag().transaction(ref).publisher == 1000) ++junk_refs;
    }
    const double junk_ref_fraction =
        static_cast<double>(junk_refs) / static_cast<double>(evals.size());
    const double junk_share = static_cast<double>(junk_published) /
                              static_cast<double>(simulator.dag().size() - 1);

    std::cout << bench::fmt(rate, 2) << "        " << bench::fmt(junk_share, 2)
              << "        " << bench::fmt(mean_acc) << "          "
              << bench::fmt(junk_ref_fraction, 2) << "\n";
    csv.row({bench::fmt(rate, 2), bench::fmt(junk_share), bench::fmt(mean_acc),
             bench::fmt(junk_ref_fraction)});
  }
  std::cout << "\nShape check: consensus accuracy stays high and junk references stay"
               "\nrare at low rates; both degrade as junk approaches a dominant share"
               "\n(the paper's argument for rate-limiting publication).\n";
  return 0;
}
