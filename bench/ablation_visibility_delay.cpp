// Ablation — delayed transaction visibility.
//
// The paper notes (§5.3.5) that balanced tip growth "would also require
// ideal network conditions, i.e. all new transactions are broadcasted
// equally well among network participants". This ablation relaxes that
// assumption: transactions become visible to other clients' walks only
// `d` rounds after publication. Expectation: learning and specialization
// degrade gracefully — stale tips mean staler averaged models, but the
// accuracy bias still routes walks into the right cluster.
//
// Runs as a scenario-engine sweep over visibility_delay_rounds: the four
// delay settings execute in parallel across the thread pool, and the
// per-run summaries additionally stream to results/ as JSONL.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — transaction visibility delay",
                      "graceful degradation when broadcast is slow");
  const std::size_t rounds = args.rounds ? args.rounds : 80;

  scenario::ScenarioSpec base = scenario::get_scenario("visibility-delay");
  base.seed = args.seed;
  base.rounds = rounds;

  scenario::SweepSpec sweep;
  sweep.base = scenario::spec_to_json(base);
  sweep.axes.push_back({"visibility_delay_rounds",
                        {scenario::Json(0), scenario::Json(1), scenario::Json(3),
                         scenario::Json(6)}});
  // Every delay runs with the bench seed: the sweep varies exactly one knob,
  // everything else (including the data) stays identical.
  sweep.derive_seeds = false;
  sweep.out_path = args.out_dir + "/ablation_visibility_delay.jsonl";

  const std::vector<scenario::SweepRun> runs = scenario::run_sweep(sweep);

  auto csv = bench::open_csv(args, "ablation_visibility_delay", {"delay", "round", "accuracy"});
  std::cout << "delay  late_accuracy  pureness  dag_size\n";
  for (const scenario::SweepRun& run : runs) {
    const std::size_t delay = run.params.find("visibility_delay_rounds")->as_uint();
    for (const scenario::ScenarioPoint& point : run.result.series) {
      if (point.round % 10 == 0) {
        csv.row({std::to_string(delay), std::to_string(point.round),
                 bench::fmt(point.mean_accuracy)});
      }
    }
    std::cout << delay << "      " << bench::fmt(run.result.final_accuracy) << "          "
              << bench::fmt(run.result.pureness) << "     " << run.result.dag_size << "\n";
  }
  std::cout << "\nShape check: accuracy and pureness decrease only mildly as the delay"
               "\ngrows — the DAG tolerates slow broadcast.\n";
  return 0;
}
