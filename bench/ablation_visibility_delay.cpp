// Ablation — delayed transaction visibility.
//
// The paper notes (§5.3.5) that balanced tip growth "would also require
// ideal network conditions, i.e. all new transactions are broadcasted
// equally well among network participants". This ablation relaxes that
// assumption: transactions become visible to other clients' walks only
// `d` rounds after publication. Expectation: learning and specialization
// degrade gracefully — stale tips mean staler averaged models, but the
// accuracy bias still routes walks into the right cluster.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Ablation — transaction visibility delay",
                      "graceful degradation when broadcast is slow");
  const std::size_t rounds = args.rounds ? args.rounds : 80;

  auto csv = bench::open_csv(args, "ablation_visibility_delay",
                             {"delay", "round", "accuracy"});

  std::cout << "delay  late_accuracy  pureness  dag_size\n";
  for (const std::size_t delay : {0u, 1u, 3u, 6u}) {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset({args.seed, false});
    preset.sim.visibility_delay_rounds = delay;
    sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
    double late = 0.0;
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto& record = simulator.run_round();
      if (round > rounds - 10) late += record.mean_trained_accuracy();
      if (round % 10 == 0) {
        csv.row({std::to_string(delay), std::to_string(round),
                 bench::fmt(record.mean_trained_accuracy())});
      }
    }
    std::cout << delay << "      " << bench::fmt(late / 10.0) << "          "
              << bench::fmt(simulator.approval_pureness().pureness) << "     "
              << simulator.dag().size() << "\n";
  }
  std::cout << "\nShape check: accuracy and pureness decrease only mildly as the delay"
               "\ngrows — the DAG tolerates slow broadcast.\n";
  return 0;
}
