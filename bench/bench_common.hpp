// Shared support for the figure/table reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (§5) as a *thin driver* over a registry scenario: it sweeps
// the figure's remaining axis (dataset, algorithm, alpha, attack rate, ...)
// through scenario::run_scenario, prints the measured series next to the
// paper's expected shape, and writes a CSV under results/ for external
// plotting. All orchestration — simulators, attacks, baselines, metrics —
// lives in the scenario engine; this header only carries argument parsing
// and output formatting. All benches are deterministic and accept an
// optional `--seed N` / `--rounds N` override.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace specdag::bench {

struct BenchArgs {
  std::uint64_t seed = 42;
  std::size_t rounds = 0;  // 0 = use the experiment default
  std::string out_dir = "results";

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << flag << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (flag == "--seed") {
        args.seed = std::strtoull(next().c_str(), nullptr, 10);
      } else if (flag == "--rounds") {
        args.rounds = std::strtoul(next().c_str(), nullptr, 10);
      } else if (flag == "--out") {
        args.out_dir = next();
      } else if (flag == "--help" || flag == "-h") {
        std::cout << "usage: bench [--seed N] [--rounds N] [--out DIR]\n";
        std::exit(0);
      } else if (flag.rfind("--benchmark", 0) == 0) {
        // Tolerate google-benchmark-style flags so `for b in build/bench/*`
        // sweeps can pass uniform arguments.
        if (flag.find('=') == std::string::npos) (void)next();
      } else {
        std::cerr << "unknown flag " << flag << "\n";
        std::exit(2);
      }
    }
    return args;
  }
};

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "==================================================================\n";
  std::cout << id << "\n";
  std::cout << "Paper claim: " << claim << "\n";
  std::cout << "==================================================================\n";
}

inline std::string fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

// Opens results/<name>.csv (creating the directory) with the given header.
inline CsvWriter open_csv(const BenchArgs& args, const std::string& name,
                          const std::vector<std::string>& header) {
  std::filesystem::create_directories(args.out_dir);
  return CsvWriter(args.out_dir + "/" + name + ".csv", header);
}

}  // namespace specdag::bench
