// Figures 10 & 11 — DAG vs FedAvg vs FedProx on the FedProx synthetic(0.5,
// 0.5) dataset: average accuracy (Fig. 10) and average loss (Fig. 11) per
// round, 30 clients total, 10 active per round.
//
// Paper shape: the centralized baselines are more consistent early; the DAG
// is noisier but eventually outperforms FedAvg in both accuracy and loss and
// comes close to FedProx on loss.
//
// Thin driver over the registry's "fig10-11-fedprox" scenario: one run per
// algorithm, same dataset and seed.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

namespace {

double tail_mean(const std::vector<scenario::ScenarioPoint>& series, bool loss,
                 std::size_t n = 10) {
  n = std::min(n, series.size());
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = series.size() - n; i < series.size(); ++i) {
    sum += loss ? series[i].mean_loss : series[i].mean_accuracy;
  }
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figures 10/11 — DAG vs FedAvg vs FedProx on synthetic(0.5, 0.5)",
                      "DAG eventually outperforms FedAvg; loss approaches FedProx");

  std::vector<scenario::ScenarioResult> results;
  for (const scenario::AlgorithmKind algorithm :
       {scenario::AlgorithmKind::kDag, scenario::AlgorithmKind::kFedAvg,
        scenario::AlgorithmKind::kFedProx}) {
    scenario::ScenarioSpec spec = scenario::get_scenario("fig10-11-fedprox");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.algorithm = algorithm;
    results.push_back(scenario::run_scenario(spec));
  }
  const auto& dag = results[0].series;
  const auto& fedavg = results[1].series;
  const auto& fedprox = results[2].series;

  auto csv = bench::open_csv(args, "fig10_11_fedprox",
                             {"round", "dag_acc", "fedavg_acc", "fedprox_acc", "dag_loss",
                              "fedavg_loss", "fedprox_loss"});
  std::cout << "\nround  dag_acc  fedavg_acc  fedprox_acc  |  dag_loss  fedavg_loss  "
               "fedprox_loss\n";
  for (std::size_t r = 0; r < dag.size(); ++r) {
    csv.row({std::to_string(r + 1), bench::fmt(dag[r].mean_accuracy),
             bench::fmt(fedavg[r].mean_accuracy), bench::fmt(fedprox[r].mean_accuracy),
             bench::fmt(dag[r].mean_loss), bench::fmt(fedavg[r].mean_loss),
             bench::fmt(fedprox[r].mean_loss)});
    if ((r + 1) % 20 == 0) {
      std::cout << r + 1 << "     " << bench::fmt(dag[r].mean_accuracy) << "    "
                << bench::fmt(fedavg[r].mean_accuracy) << "       "
                << bench::fmt(fedprox[r].mean_accuracy) << "        |  "
                << bench::fmt(dag[r].mean_loss) << "     " << bench::fmt(fedavg[r].mean_loss)
                << "        " << bench::fmt(fedprox[r].mean_loss) << "\n";
    }
  }

  std::cout << "\nFinal (mean of last 10 rounds):\n"
            << "  accuracy: dag " << bench::fmt(tail_mean(dag, false)) << ", fedavg "
            << bench::fmt(tail_mean(fedavg, false)) << ", fedprox "
            << bench::fmt(tail_mean(fedprox, false)) << "\n"
            << "  loss:     dag " << bench::fmt(tail_mean(dag, true)) << ", fedavg "
            << bench::fmt(tail_mean(fedavg, true)) << ", fedprox "
            << bench::fmt(tail_mean(fedprox, true)) << "\n";
  std::cout << "Shape check: dag final accuracy >= fedavg final accuracy; dag final loss"
               "\n<= fedavg final loss (paper Figures 10 and 11).\n";
  return 0;
}
