// Figures 10 & 11 — DAG vs FedAvg vs FedProx on the FedProx synthetic(0.5,
// 0.5) dataset: average accuracy (Fig. 10) and average loss (Fig. 11) per
// round, 30 clients total, 10 active per round.
//
// Paper shape: the centralized baselines are more consistent early; the DAG
// is noisier but eventually outperforms FedAvg in both accuracy and loss and
// comes close to FedProx on loss.
#include "bench_common.hpp"
#include "fl/fed_server.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

namespace {

struct Series {
  std::vector<double> accuracy;
  std::vector<double> loss;
};

Series run_dag(sim::ExperimentPreset preset, std::size_t rounds) {
  sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
  Series series;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto& record = simulator.run_round();
    series.accuracy.push_back(record.mean_trained_accuracy());
    series.loss.push_back(record.mean_trained_loss());
  }
  return series;
}

Series run_fed(sim::ExperimentPreset preset, std::size_t rounds, double mu,
               std::uint64_t seed) {
  fl::FedServerConfig config;
  config.train = preset.sim.client.train;
  config.proximal_mu = mu;
  fl::FedServer server(preset.factory, config, Rng(seed));
  Series series;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto result = server.run_round(preset.dataset, preset.sim.clients_per_round);
    double acc = 0.0, loss = 0.0;
    for (const auto& e : result.client_evals) {
      acc += e.accuracy;
      loss += e.loss;
    }
    series.accuracy.push_back(acc / static_cast<double>(result.client_evals.size()));
    series.loss.push_back(loss / static_cast<double>(result.client_evals.size()));
  }
  return series;
}

double tail_mean(const std::vector<double>& v, std::size_t n = 10) {
  double sum = 0.0;
  for (std::size_t i = v.size() - n; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figures 10/11 — DAG vs FedAvg vs FedProx on synthetic(0.5, 0.5)",
                      "DAG eventually outperforms FedAvg; loss approaches FedProx");
  const std::size_t rounds = args.rounds ? args.rounds : 100;
  const sim::PresetOptions options{args.seed, false};

  const Series dag = run_dag(sim::fedprox_synthetic_preset(options), rounds);
  const Series fedavg = run_fed(sim::fedprox_synthetic_preset(options), rounds, 0.0, args.seed);
  // mu = 1 is the FedProx paper's value for the synthetic dataset.
  const Series fedprox = run_fed(sim::fedprox_synthetic_preset(options), rounds, 1.0, args.seed);

  auto csv = bench::open_csv(args, "fig10_11_fedprox",
                             {"round", "dag_acc", "fedavg_acc", "fedprox_acc", "dag_loss",
                              "fedavg_loss", "fedprox_loss"});
  std::cout << "\nround  dag_acc  fedavg_acc  fedprox_acc  |  dag_loss  fedavg_loss  "
               "fedprox_loss\n";
  for (std::size_t r = 0; r < rounds; ++r) {
    csv.row({std::to_string(r + 1), bench::fmt(dag.accuracy[r]), bench::fmt(fedavg.accuracy[r]),
             bench::fmt(fedprox.accuracy[r]), bench::fmt(dag.loss[r]),
             bench::fmt(fedavg.loss[r]), bench::fmt(fedprox.loss[r])});
    if ((r + 1) % 20 == 0) {
      std::cout << r + 1 << "     " << bench::fmt(dag.accuracy[r]) << "    "
                << bench::fmt(fedavg.accuracy[r]) << "       " << bench::fmt(fedprox.accuracy[r])
                << "        |  " << bench::fmt(dag.loss[r]) << "     "
                << bench::fmt(fedavg.loss[r]) << "        " << bench::fmt(fedprox.loss[r])
                << "\n";
    }
  }

  std::cout << "\nFinal (mean of last 10 rounds):\n"
            << "  accuracy: dag " << bench::fmt(tail_mean(dag.accuracy)) << ", fedavg "
            << bench::fmt(tail_mean(fedavg.accuracy)) << ", fedprox "
            << bench::fmt(tail_mean(fedprox.accuracy)) << "\n"
            << "  loss:     dag " << bench::fmt(tail_mean(dag.loss)) << ", fedavg "
            << bench::fmt(tail_mean(fedavg.loss)) << ", fedprox "
            << bench::fmt(tail_mean(fedprox.loss)) << "\n";
  std::cout << "Shape check: dag final accuracy >= fedavg final accuracy; dag final loss"
               "\n<= fedavg final loss (paper Figures 10 and 11).\n";
  return 0;
}
