// Figures 12, 13 & 14 — flipped-label poisoning on FMNIST (author split).
//
// Protocol (paper §5.3.4): train clean for R rounds, then flip labels 3<->8
// for a fraction p of clients and continue for another R rounds. Measured:
//   Fig. 12: % of class-3/8 test samples mispredicted as the other class
//            (per round, mean over benign evaluation clients), for
//            p in {0, 0.2, 0.3} with the accuracy selector and p=0.2 with
//            the random tip selector.
//   Fig. 13: average number of poisoned transactions approved (directly or
//            indirectly) by the clients' reference transactions.
//   Fig. 14: distribution of poisoned clients over the Louvain-inferred
//            clusters (p=0.3).
//
// Paper shape: accuracy selector keeps flip rates low (p=0.2 ~ baseline;
// p=0.3 noticeable but < 30%); the random selector with p=0.2 flips *more*
// than the accuracy selector with p=0.3; poisoned clients concentrate in
// poisoned-majority communities.
//
// Thin driver over the registry's "fig12-14-poisoning" scenario: the attack
// schedule and the per-round flip/approval probes run inside the scenario
// engine; this main only sweeps the fraction and the tip selector.
#include <map>

#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figures 12/13/14 — flipped-label poisoning (3 <-> 8)",
      "accuracy selector contains poisoning; random selector at p=0.2 flips more "
      "than accuracy selector at p=0.3; poisoned clients cluster together");
  const std::size_t phase_rounds = args.rounds ? args.rounds : 40;

  struct Variant {
    std::string label;
    double p;
    fl::SelectorKind selector;
  };
  const std::vector<Variant> variants = {
      {"p=0.0", 0.0, fl::SelectorKind::kAccuracy},
      {"p=0.2", 0.2, fl::SelectorKind::kAccuracy},
      {"p=0.2-random", 0.2, fl::SelectorKind::kRandom},
      {"p=0.3", 0.3, fl::SelectorKind::kAccuracy},
  };

  auto csv12 = bench::open_csv(args, "fig12_flip_rate",
                               {"scenario", "round", "flip_rate", "approved_poisoned"});
  std::map<std::string, scenario::ScenarioResult> results;
  for (const Variant& variant : variants) {
    scenario::ScenarioSpec spec = scenario::get_scenario("fig12-14-poisoning");
    spec.seed = args.seed;
    spec.rounds = 2 * phase_rounds;
    spec.attacks.label_flip.start_round = phase_rounds;
    // p = 0 is the clean control: the probe schedule (metrics_every) is
    // independent of the fraction, so it measures the identical rounds.
    spec.attacks.label_flip.fraction = variant.p;
    spec.client.selector = variant.selector;
    results.emplace(variant.label, scenario::run_scenario(spec));
    for (const scenario::ScenarioPoint& point : results.at(variant.label).series) {
      if (!point.has_attack_metrics) continue;
      csv12.row({variant.label, std::to_string(point.round), bench::fmt(point.flip_rate),
                 bench::fmt(point.approved_poisoned)});
    }
  }

  std::cout << "\nFigure 12 — mean flip rate over the attack phase:\n";
  for (const auto& [label, result] : results) {
    std::cout << "  " << label << ": " << bench::fmt(100.0 * result.mean_flip_rate, 1)
              << "% flipped\n";
  }

  std::cout << "\nFigure 13 — mean approved poisoned transactions in the consensus:\n";
  for (const auto& [label, result] : results) {
    if (label == "p=0.0") continue;
    std::cout << "  " << label << ": " << bench::fmt(result.mean_approved_poisoned, 1)
              << " transactions\n";
  }

  std::cout << "\nFigure 14 — poisoned clients per inferred cluster (p=0.3):\n";
  auto csv14 = bench::open_csv(args, "fig14_poison_clusters",
                               {"community", "benign", "poisoned"});
  const scenario::ScenarioResult& r03 = results.at("p=0.3");
  std::size_t poisoned_in_poison_majority = 0, poisoned_total = 0;
  for (std::size_t c = 0; c < r03.poison_communities.size(); ++c) {
    const auto& [benign, poisoned] = r03.poison_communities[c];
    std::cout << "  community " << c << ": " << benign << " benign, " << poisoned
              << " poisoned\n";
    csv14.row({std::to_string(c), std::to_string(benign), std::to_string(poisoned)});
    poisoned_total += poisoned;
    if (poisoned >= benign) poisoned_in_poison_majority += poisoned;
  }

  std::cout << "\nShape checks:\n"
            << "  flip(p=0.2) close to flip(p=0.0): "
            << bench::fmt(100.0 * results.at("p=0.2").mean_flip_rate, 1) << "% vs "
            << bench::fmt(100.0 * results.at("p=0.0").mean_flip_rate, 1) << "%\n"
            << "  flip(p=0.2, random) > flip(p=0.3, accuracy): "
            << bench::fmt(100.0 * results.at("p=0.2-random").mean_flip_rate, 1) << "% vs "
            << bench::fmt(100.0 * results.at("p=0.3").mean_flip_rate, 1) << "%\n"
            << "  poisoned clients in poisoned-majority communities: "
            << poisoned_in_poison_majority << "/" << poisoned_total << "\n";
  return 0;
}
