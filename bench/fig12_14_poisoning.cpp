// Figures 12, 13 & 14 — flipped-label poisoning on FMNIST (author split).
//
// Protocol (paper §5.3.4): train clean for R rounds, then flip labels 3<->8
// for a fraction p of clients and continue for another R rounds. Measured:
//   Fig. 12: % of class-3/8 test samples mispredicted as the other class
//            (per round, mean over benign evaluation clients), for
//            p in {0, 0.2, 0.3} with the accuracy selector and p=0.2 with
//            the random tip selector.
//   Fig. 13: average number of poisoned transactions approved (directly or
//            indirectly) by the clients' reference transactions.
//   Fig. 14: distribution of poisoned clients over the Louvain-inferred
//            clusters (p=0.3).
//
// Paper shape: accuracy selector keeps flip rates low (p=0.2 ~ baseline;
// p=0.3 noticeable but < 30%); the random selector with p=0.2 flips *more*
// than the accuracy selector with p=0.3; poisoned clients concentrate in
// poisoned-majority communities.
#include <map>

#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

namespace {

struct Scenario {
  std::string label;
  double p;
  fl::SelectorKind selector;
};

struct ScenarioResult {
  std::vector<double> flip_rate;        // per post-attack round
  std::vector<double> approved_poison;  // per post-attack round
  metrics::LouvainResult louvain;
  std::vector<bool> client_poisoned;
};

ScenarioResult run_scenario(const Scenario& scenario, std::size_t clean_rounds,
                            std::size_t attack_rounds, std::uint64_t seed) {
  sim::ExperimentPreset preset = sim::fmnist_by_author_preset({seed, false});
  preset.sim.client.selector = scenario.selector;
  nn::ModelFactory factory = preset.factory;
  sim::DagSimulator simulator(std::move(preset.dataset), factory, preset.sim);
  simulator.run_rounds(clean_rounds);
  simulator.apply_poisoning(scenario.p, 3, 8);

  ScenarioResult result;
  nn::Sequential probe = factory();
  for (std::size_t round = 0; round < attack_rounds; ++round) {
    simulator.run_round();
    // Evaluate each benign client's consensus/reference model.
    double flip_sum = 0.0, poison_sum = 0.0;
    std::size_t benign = 0;
    for (std::size_t i = 0; i < simulator.dataset().clients.size(); ++i) {
      const auto& client = simulator.dataset().clients[i];
      if (client.poisoned) continue;
      const dag::TxId reference =
          simulator.network().consensus_reference(static_cast<int>(i));
      const auto weights = simulator.dag().weights(reference);
      flip_sum += fl::flip_rate(probe, *weights, client, 3, 8);
      poison_sum +=
          static_cast<double>(metrics::approved_poisoned_count(simulator.dag(), reference));
      ++benign;
    }
    result.flip_rate.push_back(flip_sum / static_cast<double>(benign));
    result.approved_poison.push_back(poison_sum / static_cast<double>(benign));
  }
  result.louvain = simulator.louvain_communities();
  for (const auto& client : simulator.dataset().clients) {
    result.client_poisoned.push_back(client.poisoned);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figures 12/13/14 — flipped-label poisoning (3 <-> 8)",
      "accuracy selector contains poisoning; random selector at p=0.2 flips more "
      "than accuracy selector at p=0.3; poisoned clients cluster together");
  const std::size_t clean_rounds = args.rounds ? args.rounds : 40;
  const std::size_t attack_rounds = args.rounds ? args.rounds : 40;

  const std::vector<Scenario> scenarios = {
      {"p=0.0", 0.0, fl::SelectorKind::kAccuracy},
      {"p=0.2", 0.2, fl::SelectorKind::kAccuracy},
      {"p=0.2-random", 0.2, fl::SelectorKind::kRandom},
      {"p=0.3", 0.3, fl::SelectorKind::kAccuracy},
  };

  auto csv12 = bench::open_csv(args, "fig12_flip_rate",
                               {"scenario", "round", "flip_rate", "approved_poisoned"});
  std::map<std::string, ScenarioResult> results;
  for (const auto& scenario : scenarios) {
    results[scenario.label] = run_scenario(scenario, clean_rounds, attack_rounds, args.seed);
    const auto& r = results[scenario.label];
    for (std::size_t round = 0; round < r.flip_rate.size(); ++round) {
      csv12.row({scenario.label, std::to_string(clean_rounds + round + 1),
                 bench::fmt(r.flip_rate[round]), bench::fmt(r.approved_poison[round])});
    }
  }

  std::cout << "\nFigure 12 — mean flip rate over the attack phase:\n";
  std::map<std::string, double> mean_flip;
  for (const auto& [label, r] : results) {
    double mean = 0.0;
    for (double f : r.flip_rate) mean += f;
    mean /= static_cast<double>(r.flip_rate.size());
    mean_flip[label] = mean;
    std::cout << "  " << label << ": " << bench::fmt(100.0 * mean, 1) << "% flipped\n";
  }

  std::cout << "\nFigure 13 — mean approved poisoned transactions in the consensus:\n";
  for (const auto& [label, r] : results) {
    if (label == "p=0.0") continue;
    double mean = 0.0;
    for (double c : r.approved_poison) mean += c;
    mean /= static_cast<double>(r.approved_poison.size());
    std::cout << "  " << label << ": " << bench::fmt(mean, 1) << " transactions\n";
  }

  std::cout << "\nFigure 14 — poisoned clients per inferred cluster (p=0.3):\n";
  auto csv14 = bench::open_csv(args, "fig14_poison_clusters",
                               {"community", "benign", "poisoned"});
  const auto& r03 = results["p=0.3"];
  std::map<int, std::pair<std::size_t, std::size_t>> per_community;  // benign, poisoned
  for (std::size_t i = 0; i < r03.louvain.partition.size(); ++i) {
    auto& [benign, poisoned] = per_community[r03.louvain.partition[i]];
    if (r03.client_poisoned[i]) {
      ++poisoned;
    } else {
      ++benign;
    }
  }
  std::size_t poisoned_in_poison_majority = 0, poisoned_total = 0;
  for (const auto& [community, counts] : per_community) {
    std::cout << "  community " << community << ": " << counts.first << " benign, "
              << counts.second << " poisoned\n";
    csv14.row({std::to_string(community), std::to_string(counts.first),
               std::to_string(counts.second)});
    poisoned_total += counts.second;
    if (counts.second >= counts.first) poisoned_in_poison_majority += counts.second;
  }

  std::cout << "\nShape checks:\n"
            << "  flip(p=0.2) close to flip(p=0.0): "
            << bench::fmt(100.0 * mean_flip["p=0.2"], 1) << "% vs "
            << bench::fmt(100.0 * mean_flip["p=0.0"], 1) << "%\n"
            << "  flip(p=0.2, random) > flip(p=0.3, accuracy): "
            << bench::fmt(100.0 * mean_flip["p=0.2-random"], 1) << "% vs "
            << bench::fmt(100.0 * mean_flip["p=0.3"], 1) << "%\n"
            << "  poisoned clients in poisoned-majority communities: "
            << poisoned_in_poison_majority << "/" << poisoned_total << "\n";
  return 0;
}
