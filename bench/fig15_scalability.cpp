// Figure 15 — time required for the biased random walk as the number of
// concurrently active clients grows (5, 10, 20, 40), on the FMNIST author
// split. Walks start at a transaction sampled 15-25 steps behind the tips
// (Popov), exactly as in the paper's §5.3.5 setup, and model evaluations are
// not cached across rounds so every walk pays its full evaluation cost.
//
// Paper shape: the per-walk duration differs only marginally across
// concurrency levels — concurrency has little impact on the walk cost, so
// the approach scales well. Absolute milliseconds are hardware- and
// model-size-dependent; the claim is the flat trend.
//
// Thin driver over the registry's "fig15-scalability" scenario: the runner
// records the per-round walk cost; this main only sweeps clients_per_round.
#include <algorithm>

#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "util/stats.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 15 — random-walk duration vs concurrently active clients",
                      "walk duration roughly flat in the number of active clients");
  const std::vector<std::size_t> active_counts = {5, 10, 20, 40};

  auto csv = bench::open_csv(args, "fig15_scalability",
                             {"active_clients", "round", "mean_walk_ms", "mean_evaluations",
                              "dag_size"});

  std::vector<double> mean_by_concurrency;
  for (std::size_t active : active_counts) {
    scenario::ScenarioSpec spec = scenario::get_scenario("fig15-scalability");
    spec.seed = args.seed;
    if (args.rounds) spec.rounds = args.rounds;
    spec.clients_per_round = active;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::vector<double> walk_ms;
    for (const scenario::ScenarioPoint& point : result.series) {
      const double ms = 1e3 * point.mean_walk_seconds;
      walk_ms.push_back(ms);
      csv.row({std::to_string(active), std::to_string(point.round), bench::fmt(ms),
               bench::fmt(point.mean_walk_evaluations, 1), std::to_string(point.dag_size)});
    }
    const Summary s = summarize(walk_ms);
    mean_by_concurrency.push_back(s.mean);
    std::cout << active << " active clients: mean walk " << bench::fmt(s.mean, 2)
              << " ms (median " << bench::fmt(s.median, 2) << ", q3 " << bench::fmt(s.q3, 2)
              << ")\n";
  }

  const double spread = *std::max_element(mean_by_concurrency.begin(),
                                          mean_by_concurrency.end()) /
                        std::max(1e-9, *std::min_element(mean_by_concurrency.begin(),
                                                         mean_by_concurrency.end()));
  std::cout << "\nmax/min mean walk duration across concurrency levels: "
            << bench::fmt(spread, 2) << "x\n";
  std::cout << "Shape check: the ratio should stay small (paper: marginal differences"
               "\nbetween 5 and 40 active clients), indicating good scalability.\n";
  return 0;
}
