// Figure 15 — time required for the biased random walk as the number of
// concurrently active clients grows (5, 10, 20, 40), on the FMNIST author
// split. Walks start at a transaction sampled 15-25 steps behind the tips
// (Popov), exactly as in the paper's §5.3.5 setup, and model evaluations are
// not cached across rounds so every walk pays its full evaluation cost.
//
// Paper shape: the per-walk duration differs only marginally across
// concurrency levels — concurrency has little impact on the walk cost, so
// the approach scales well. Absolute milliseconds are hardware- and
// model-size-dependent; the claim is the flat trend.
#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 15 — random-walk duration vs concurrently active clients",
                      "walk duration roughly flat in the number of active clients");
  const std::size_t rounds = args.rounds ? args.rounds : 50;
  const std::vector<std::size_t> active_counts = {5, 10, 20, 40};

  auto csv = bench::open_csv(args, "fig15_scalability",
                             {"active_clients", "round", "mean_walk_ms", "mean_evaluations",
                              "dag_size"});

  std::vector<double> mean_by_concurrency;
  for (std::size_t active : active_counts) {
    sim::ExperimentPreset preset = sim::fmnist_by_author_preset({args.seed, false});
    // Need enough clients for the largest concurrency level.
    data::SyntheticDigitsConfig data_config;
    data_config.seed = args.seed;
    data_config.num_clients = 60;
    data_config.samples_per_client = 80;
    preset.dataset = data::make_fmnist_by_author(data_config);
    preset.sim.clients_per_round = active;
    // Paper cost model: depth-sampled start, no cross-round evaluation cache.
    preset.sim.client.walk_start = tipsel::WalkStart::kDepthSampled;
    preset.sim.client.start_depth_min = 15;
    preset.sim.client.start_depth_max = 25;
    preset.sim.client.persistent_accuracy_cache = false;
    sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);

    std::vector<double> walk_ms;
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto& record = simulator.run_round();
      double evals = 0.0;
      for (const auto& r : record.results) evals += static_cast<double>(r.walk_stats.evaluations);
      evals /= static_cast<double>(record.results.size());
      const double ms = 1e3 * record.mean_walk_seconds();
      walk_ms.push_back(ms);
      csv.row({std::to_string(active), std::to_string(round), bench::fmt(ms),
               bench::fmt(evals, 1), std::to_string(simulator.dag().size())});
    }
    const Summary s = summarize(walk_ms);
    mean_by_concurrency.push_back(s.mean);
    std::cout << active << " active clients: mean walk " << bench::fmt(s.mean, 2)
              << " ms (median " << bench::fmt(s.median, 2) << ", q3 " << bench::fmt(s.q3, 2)
              << ")\n";
  }

  const double spread = *std::max_element(mean_by_concurrency.begin(),
                                          mean_by_concurrency.end()) /
                        std::max(1e-9, *std::min_element(mean_by_concurrency.begin(),
                                                         mean_by_concurrency.end()));
  std::cout << "\nmax/min mean walk duration across concurrency levels: "
            << bench::fmt(spread, 2) << "x\n";
  std::cout << "Shape check: the ratio should stay small (paper: marginal differences"
               "\nbetween 5 and 40 active clients), indicating good scalability.\n";
  return 0;
}
