// Figure 5 — choosing alpha on FMNIST-clustered: (a) modularity of
// G_clients, (b) number of partitions found by Louvain, (c) misclassification
// fraction, each over training rounds for alpha in {1, 10, 100}.
//
// Paper shape: alpha=1 -> decreasing/low modularity, 1 big partition, high
// misclassification; alpha=100 -> high modularity but too many partitions;
// alpha=10 -> rising modularity, ~3 partitions, misclassification -> 0.
//
// Runs through the scenario engine: the base configuration comes from the
// registry's "fmnist-clustered" scenario with the runner's
// community_metrics_every tracking supplying the per-round Louvain series.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 5 — alpha vs modularity / #partitions / misclassification",
                      "alpha=10 balances: rising modularity, ~3 partitions, ~0 misclassification");
  const std::size_t rounds = args.rounds ? args.rounds : 100;
  const std::vector<double> alphas = {1.0, 10.0, 100.0};

  auto csv = bench::open_csv(args, "fig5_alpha_metrics",
                             {"alpha", "round", "modularity", "partitions",
                              "misclassification"});

  for (double alpha : alphas) {
    scenario::ScenarioSpec spec = scenario::get_scenario("fmnist-clustered");
    spec.seed = args.seed;
    spec.rounds = rounds;
    // Paper §5.3.1: the Figure 5 experiments use a subset of 100 clients
    // (99 divides into the 3 clusters).
    spec.num_clients = 99;
    spec.client.alpha = alpha;
    spec.community_metrics_every = 5;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::cout << "\n--- alpha = " << alpha << "\nround  modularity  partitions  misclass\n";
    for (const scenario::ScenarioPoint& point : result.series) {
      if (!point.has_community_metrics) continue;
      csv.row({bench::fmt(alpha, 1), std::to_string(point.round),
               bench::fmt(point.modularity), std::to_string(point.communities),
               bench::fmt(point.misclassification)});
      if (point.round % 20 == 0) {
        std::cout << point.round << "     " << bench::fmt(point.modularity) << "       "
                  << point.communities << "           "
                  << bench::fmt(point.misclassification) << "\n";
      }
    }
  }
  std::cout << "\nShape check: alpha=10 should show the highest stable modularity with"
               "\n~3 partitions and near-zero misclassification; alpha=1 should stay"
               "\nnear one partition with high misclassification.\n";
  return 0;
}
