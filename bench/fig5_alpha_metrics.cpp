// Figure 5 — choosing alpha on FMNIST-clustered: (a) modularity of
// G_clients, (b) number of partitions found by Louvain, (c) misclassification
// fraction, each over training rounds for alpha in {1, 10, 100}.
//
// Paper shape: alpha=1 -> decreasing/low modularity, 1 big partition, high
// misclassification; alpha=100 -> high modularity but too many partitions;
// alpha=10 -> rising modularity, ~3 partitions, misclassification -> 0.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 5 — alpha vs modularity / #partitions / misclassification",
                      "alpha=10 balances: rising modularity, ~3 partitions, ~0 misclassification");
  const std::size_t rounds = args.rounds ? args.rounds : 100;
  const std::vector<double> alphas = {1.0, 10.0, 100.0};

  auto csv = bench::open_csv(args, "fig5_alpha_metrics",
                             {"alpha", "round", "modularity", "partitions",
                              "misclassification"});

  for (double alpha : alphas) {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset({args.seed, false});
    // Paper §5.3.1: the Figure 5 experiments use a subset of 100 clients.
    data::SyntheticDigitsConfig data_config;
    data_config.seed = args.seed;
    data_config.num_clients = 99;  // divisible into the 3 clusters
    preset.dataset = data::make_fmnist_clustered(data_config);
    preset.sim.client.alpha = alpha;
    const auto true_clusters = [&] {
      std::vector<int> tc;
      for (const auto& c : preset.dataset.clients) tc.push_back(c.true_cluster);
      return tc;
    }();
    sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);

    std::cout << "\n--- alpha = " << alpha << "\nround  modularity  partitions  misclass\n";
    for (std::size_t round = 1; round <= rounds; ++round) {
      simulator.run_round();
      if (round % 5 != 0) continue;
      const auto louvain = simulator.louvain_communities();
      const double misclass =
          metrics::misclassification_fraction(louvain.partition, true_clusters);
      csv.row({bench::fmt(alpha, 1), std::to_string(round), bench::fmt(louvain.modularity),
               std::to_string(louvain.num_communities), bench::fmt(misclass)});
      if (round % 20 == 0) {
        std::cout << round << "     " << bench::fmt(louvain.modularity) << "       "
                  << louvain.num_communities << "           " << bench::fmt(misclass) << "\n";
      }
    }
  }
  std::cout << "\nShape check: alpha=10 should show the highest stable modularity with"
               "\n~3 partitions and near-zero misclassification; alpha=1 should stay"
               "\nnear one partition with high misclassification.\n";
  return 0;
}
