// Figure 6 — accuracy per round on FMNIST-clustered for alpha in
// {0.1, 1, 10, 100} with the standard normalization (Eq. 1-2).
//
// Paper shape: higher alpha improves accuracy earlier; all alphas approach
// high accuracy by round 100 (the task is solvable by a generalist model).
//
// Runs through the scenario engine: the base configuration comes from the
// registry's "fmnist-clustered" scenario and only alpha varies.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 6 — accuracy per round for alpha sweep (standard normalization)",
                      "alpha >= 10 improves accuracy earlier than alpha <= 1");
  const std::size_t rounds = args.rounds ? args.rounds : 100;
  const std::vector<double> alphas = {0.1, 1.0, 10.0, 100.0};

  auto csv = bench::open_csv(args, "fig6_alpha_accuracy", {"alpha", "round", "accuracy"});

  // Mean accuracy at round 20 per alpha — the "early accuracy" the figure is
  // really about.
  std::vector<double> early_accuracy;

  for (double alpha : alphas) {
    scenario::ScenarioSpec spec = scenario::get_scenario("fmnist-clustered");
    spec.seed = args.seed;
    spec.rounds = rounds;
    spec.client.alpha = alpha;
    spec.client.normalization = tipsel::Normalization::kStandard;

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::cout << "\n--- alpha = " << alpha << "\nround  accuracy\n";
    double at20 = 0.0;
    for (const scenario::ScenarioPoint& point : result.series) {
      csv.row({bench::fmt(alpha, 1), std::to_string(point.round),
               bench::fmt(point.mean_accuracy)});
      if (point.round == 20) at20 = point.mean_accuracy;
      if (point.round % 20 == 0) {
        std::cout << point.round << "     " << bench::fmt(point.mean_accuracy) << "\n";
      }
    }
    early_accuracy.push_back(at20);
  }

  std::cout << "\nEarly accuracy (round 20) by alpha:\n";
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    std::cout << "  alpha=" << alphas[i] << ": " << bench::fmt(early_accuracy[i]) << "\n";
  }
  std::cout << "Shape check: the round-20 accuracy should increase with alpha.\n";
  return 0;
}
