// Figure 6 — accuracy per round on FMNIST-clustered for alpha in
// {0.1, 1, 10, 100} with the standard normalization (Eq. 1-2).
//
// Paper shape: higher alpha improves accuracy earlier; all alphas approach
// high accuracy by round 100 (the task is solvable by a generalist model).
#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 6 — accuracy per round for alpha sweep (standard normalization)",
                      "alpha >= 10 improves accuracy earlier than alpha <= 1");
  const std::size_t rounds = args.rounds ? args.rounds : 100;
  const std::vector<double> alphas = {0.1, 1.0, 10.0, 100.0};

  auto csv = bench::open_csv(args, "fig6_alpha_accuracy", {"alpha", "round", "accuracy"});

  // Mean accuracy at round 20 per alpha — the "early accuracy" the figure is
  // really about.
  std::vector<double> early_accuracy;

  for (double alpha : alphas) {
    sim::ExperimentPreset preset = sim::fmnist_clustered_preset({args.seed, false});
    preset.sim.client.alpha = alpha;
    preset.sim.client.normalization = tipsel::Normalization::kStandard;
    sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
    std::cout << "\n--- alpha = " << alpha << "\nround  accuracy\n";
    double at20 = 0.0;
    for (std::size_t round = 1; round <= rounds; ++round) {
      const auto& record = simulator.run_round();
      csv.row({bench::fmt(alpha, 1), std::to_string(round),
               bench::fmt(record.mean_trained_accuracy())});
      if (round == 20) at20 = record.mean_trained_accuracy();
      if (round % 20 == 0) {
        std::cout << round << "     " << bench::fmt(record.mean_trained_accuracy()) << "\n";
      }
    }
    early_accuracy.push_back(at20);
  }

  std::cout << "\nEarly accuracy (round 20) by alpha:\n";
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    std::cout << "  alpha=" << alphas[i] << ": " << bench::fmt(early_accuracy[i]) << "\n";
  }
  std::cout << "Shape check: the round-20 accuracy should increase with alpha.\n";
  return 0;
}
