// Figure 7 — the dynamic normalization normalized* (Eq. 3) improves the
// alpha=1 case: accuracy per round for alpha in {0.1, 1, 10, 100} with the
// dynamic normalization, plus the paper's §5.3.1 pureness comparison
// (standard 0.40 -> dynamic 0.51 at alpha=1).
#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

namespace {

// Runs one configuration and returns (accuracy@20, final pureness).
std::pair<double, double> run(double alpha, tipsel::Normalization norm, std::size_t rounds,
                              std::uint64_t seed, CsvWriter* csv) {
  sim::ExperimentPreset preset = sim::fmnist_clustered_preset({seed, false});
  preset.sim.client.alpha = alpha;
  preset.sim.client.normalization = norm;
  sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
  double at20 = 0.0;
  for (std::size_t round = 1; round <= rounds; ++round) {
    const auto& record = simulator.run_round();
    if (round == 20) at20 = record.mean_trained_accuracy();
    if (csv != nullptr) {
      csv->row({bench::fmt(alpha, 1),
                norm == tipsel::Normalization::kDynamic ? "dynamic" : "standard",
                std::to_string(round), bench::fmt(record.mean_trained_accuracy())});
    }
  }
  return {at20, simulator.approval_pureness().pureness};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 7 — dynamic normalization (Eq. 3)",
                      "dynamic normalization improves accuracy and pureness for alpha=1");
  const std::size_t rounds = args.rounds ? args.rounds : 100;

  auto csv = bench::open_csv(args, "fig7_dynamic_norm",
                             {"alpha", "normalization", "round", "accuracy"});

  std::cout << "\nalpha   norm      acc@20  pureness\n";
  for (double alpha : {0.1, 1.0, 10.0, 100.0}) {
    const auto [acc_dyn, pure_dyn] =
        run(alpha, tipsel::Normalization::kDynamic, rounds, args.seed, &csv);
    std::cout << bench::fmt(alpha, 1) << "   dynamic   " << bench::fmt(acc_dyn) << "   "
              << bench::fmt(pure_dyn) << "\n";
  }

  // The paper's headline comparison: pureness at alpha=1, standard vs dynamic.
  const auto [acc_std1, pure_std1] =
      run(1.0, tipsel::Normalization::kStandard, rounds, args.seed, nullptr);
  const auto [acc_dyn1, pure_dyn1] =
      run(1.0, tipsel::Normalization::kDynamic, rounds, args.seed, nullptr);
  std::cout << "\nalpha=1 pureness: standard " << bench::fmt(pure_std1) << " -> dynamic "
            << bench::fmt(pure_dyn1) << "  (paper: 0.40 -> 0.51)\n";
  std::cout << "alpha=1 acc@20:   standard " << bench::fmt(acc_std1) << " -> dynamic "
            << bench::fmt(acc_dyn1) << "\n";
  std::cout << "Shape check: dynamic normalization should not be worse at alpha=1.\n";
  return 0;
}
