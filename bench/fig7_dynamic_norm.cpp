// Figure 7 — the dynamic normalization normalized* (Eq. 3) improves the
// alpha=1 case: accuracy per round for alpha in {0.1, 1, 10, 100} with the
// dynamic normalization, plus the paper's §5.3.1 pureness comparison
// (standard 0.40 -> dynamic 0.51 at alpha=1).
//
// Runs through the scenario engine: the registry's "fmnist-clustered"
// scenario with only (alpha, normalization) varied per run; accuracy comes
// from the runner's series and pureness from its summary.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

namespace {

// Runs one configuration and returns (accuracy@20, final pureness).
std::pair<double, double> run(double alpha, tipsel::Normalization norm, std::size_t rounds,
                              std::uint64_t seed, CsvWriter* csv) {
  scenario::ScenarioSpec spec = scenario::get_scenario("fmnist-clustered");
  spec.seed = seed;
  spec.rounds = rounds;
  spec.client.alpha = alpha;
  spec.client.normalization = norm;
  const scenario::ScenarioResult result = scenario::run_scenario(spec);
  double at20 = 0.0;
  for (const scenario::ScenarioPoint& point : result.series) {
    if (point.round == 20) at20 = point.mean_accuracy;
    if (csv != nullptr) {
      csv->row({bench::fmt(alpha, 1),
                norm == tipsel::Normalization::kDynamic ? "dynamic" : "standard",
                std::to_string(point.round), bench::fmt(point.mean_accuracy)});
    }
  }
  return {at20, result.pureness};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 7 — dynamic normalization (Eq. 3)",
                      "dynamic normalization improves accuracy and pureness for alpha=1");
  const std::size_t rounds = args.rounds ? args.rounds : 100;

  auto csv = bench::open_csv(args, "fig7_dynamic_norm",
                             {"alpha", "normalization", "round", "accuracy"});

  std::cout << "\nalpha   norm      acc@20  pureness\n";
  for (double alpha : {0.1, 1.0, 10.0, 100.0}) {
    const auto [acc_dyn, pure_dyn] =
        run(alpha, tipsel::Normalization::kDynamic, rounds, args.seed, &csv);
    std::cout << bench::fmt(alpha, 1) << "   dynamic   " << bench::fmt(acc_dyn) << "   "
              << bench::fmt(pure_dyn) << "\n";
  }

  // The paper's headline comparison: pureness at alpha=1, standard vs dynamic.
  const auto [acc_std1, pure_std1] =
      run(1.0, tipsel::Normalization::kStandard, rounds, args.seed, nullptr);
  const auto [acc_dyn1, pure_dyn1] =
      run(1.0, tipsel::Normalization::kDynamic, rounds, args.seed, nullptr);
  std::cout << "\nalpha=1 pureness: standard " << bench::fmt(pure_std1) << " -> dynamic "
            << bench::fmt(pure_dyn1) << "  (paper: 0.40 -> 0.51)\n";
  std::cout << "alpha=1 acc@20:   standard " << bench::fmt(acc_std1) << " -> dynamic "
            << bench::fmt(acc_dyn1) << "\n";
  std::cout << "Shape check: dynamic normalization should not be worse at alpha=1.\n";
  return 0;
}
