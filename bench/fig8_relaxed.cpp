// Figure 8 — relaxed FMNIST-clustered (15-20% foreign-cluster data per
// client): accuracy per round for alpha in {0.1, 1, 10, 100}.
//
// Paper shape: the relaxation helps the model generalize faster, improving
// the low-alpha curves; high-alpha still improves accuracy earlier, but the
// gap between alphas narrows compared to the fully clustered dataset.
#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 8 — relaxed clusters (15-20% foreign data)",
                      "alpha effect persists but is weaker than on the fully clustered dataset");
  const std::size_t rounds = args.rounds ? args.rounds : 100;
  const std::vector<double> alphas = {0.1, 1.0, 10.0, 100.0};

  auto csv = bench::open_csv(args, "fig8_relaxed",
                             {"dataset", "alpha", "round", "accuracy"});

  // Run both datasets so the "weaker effect" claim is directly visible.
  std::vector<double> gap_by_dataset;  // acc@20(alpha=100) - acc@20(alpha=0.1)
  for (const bool relaxed : {false, true}) {
    const char* name = relaxed ? "relaxed" : "clustered";
    std::cout << "\n=== dataset: " << name << "\n";
    double acc20_low = 0.0, acc20_high = 0.0;
    for (double alpha : alphas) {
      sim::ExperimentPreset preset = relaxed
                                         ? sim::fmnist_relaxed_preset({args.seed, false})
                                         : sim::fmnist_clustered_preset({args.seed, false});
      preset.sim.client.alpha = alpha;
      sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
      double at20 = 0.0, at100 = 0.0;
      for (std::size_t round = 1; round <= rounds; ++round) {
        const auto& record = simulator.run_round();
        csv.row({name, bench::fmt(alpha, 1), std::to_string(round),
                 bench::fmt(record.mean_trained_accuracy())});
        if (round == 20) at20 = record.mean_trained_accuracy();
        at100 = record.mean_trained_accuracy();
      }
      std::cout << "alpha=" << alpha << "  acc@20=" << bench::fmt(at20)
                << "  acc@final=" << bench::fmt(at100) << "\n";
      if (alpha == alphas.front()) acc20_low = at20;
      if (alpha == alphas.back()) acc20_high = at20;
    }
    gap_by_dataset.push_back(acc20_high - acc20_low);
  }

  std::cout << "\nEarly-accuracy gap (alpha=100 minus alpha=0.1, round 20):\n"
            << "  clustered: " << bench::fmt(gap_by_dataset[0]) << "\n"
            << "  relaxed:   " << bench::fmt(gap_by_dataset[1]) << "\n"
            << "Shape check: the gap should shrink on the relaxed dataset.\n";
  return 0;
}
