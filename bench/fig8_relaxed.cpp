// Figure 8 — relaxed FMNIST-clustered (15-20% foreign-cluster data per
// client): accuracy per round for alpha in {0.1, 1, 10, 100}.
//
// Paper shape: the relaxation helps the model generalize faster, improving
// the low-alpha curves; high-alpha still improves accuracy earlier, but the
// gap between alphas narrows compared to the fully clustered dataset.
//
// Runs through the scenario engine: the registry's "fmnist-clustered" and
// "fmnist-relaxed" scenarios with only alpha varied per run.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Figure 8 — relaxed clusters (15-20% foreign data)",
                      "alpha effect persists but is weaker than on the fully clustered dataset");
  const std::size_t rounds = args.rounds ? args.rounds : 100;
  const std::vector<double> alphas = {0.1, 1.0, 10.0, 100.0};

  auto csv = bench::open_csv(args, "fig8_relaxed",
                             {"dataset", "alpha", "round", "accuracy"});

  // Run both datasets so the "weaker effect" claim is directly visible.
  std::vector<double> gap_by_dataset;  // acc@20(alpha=100) - acc@20(alpha=0.1)
  for (const bool relaxed : {false, true}) {
    const char* name = relaxed ? "relaxed" : "clustered";
    std::cout << "\n=== dataset: " << name << "\n";
    double acc20_low = 0.0, acc20_high = 0.0;
    for (double alpha : alphas) {
      scenario::ScenarioSpec spec =
          scenario::get_scenario(relaxed ? "fmnist-relaxed" : "fmnist-clustered");
      spec.seed = args.seed;
      spec.rounds = rounds;
      spec.client.alpha = alpha;
      const scenario::ScenarioResult result = scenario::run_scenario(spec);
      double at20 = 0.0, at_final = 0.0;
      for (const scenario::ScenarioPoint& point : result.series) {
        csv.row({name, bench::fmt(alpha, 1), std::to_string(point.round),
                 bench::fmt(point.mean_accuracy)});
        if (point.round == 20) at20 = point.mean_accuracy;
        at_final = point.mean_accuracy;
      }
      std::cout << "alpha=" << alpha << "  acc@20=" << bench::fmt(at20)
                << "  acc@final=" << bench::fmt(at_final) << "\n";
      if (alpha == alphas.front()) acc20_low = at20;
      if (alpha == alphas.back()) acc20_high = at20;
    }
    gap_by_dataset.push_back(acc20_high - acc20_low);
  }

  std::cout << "\nEarly-accuracy gap (alpha=100 minus alpha=0.1, round 20):\n"
            << "  clustered: " << bench::fmt(gap_by_dataset[0]) << "\n"
            << "  relaxed:   " << bench::fmt(gap_by_dataset[1]) << "\n"
            << "Shape check: the gap should shrink on the relaxed dataset.\n";
  return 0;
}
