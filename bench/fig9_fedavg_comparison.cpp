// Figure 9 — per-client accuracy distributions: FedAvg vs the Specializing
// DAG on FMNIST-clustered, Poets, and CIFAR-100-like, grouped over 5
// consecutive rounds. FedAvg is evaluated with the central aggregated model;
// the DAG with the locally optimized (published) models.
//
// Paper shape: on FMNIST-clustered the DAG improves faster and with less
// variance across clients (FedAvg cannot specialize); on Poets and CIFAR the
// two reach similar accuracy — the central server can be removed without an
// accuracy penalty.
#include "bench_common.hpp"
#include "fl/fed_server.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

using namespace specdag;

namespace {

struct GroupStats {
  std::size_t round_group;  // starting round of the 5-round window
  Summary summary;
};

std::vector<GroupStats> run_dag(sim::ExperimentPreset preset, std::size_t rounds) {
  sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
  std::vector<GroupStats> groups;
  std::vector<double> window;
  for (std::size_t round = 1; round <= rounds; ++round) {
    const auto& record = simulator.run_round();
    for (const auto& r : record.results) window.push_back(r.trained_eval.accuracy);
    if (round % 5 == 0) {
      groups.push_back({round - 4, summarize(window)});
      window.clear();
    }
  }
  return groups;
}

std::vector<GroupStats> run_fedavg(sim::ExperimentPreset preset, std::size_t rounds,
                                   std::uint64_t seed) {
  fl::FedServerConfig config;
  config.train = preset.sim.client.train;
  fl::FedServer server(preset.factory, config, Rng(seed));
  std::vector<GroupStats> groups;
  std::vector<double> window;
  for (std::size_t round = 1; round <= rounds; ++round) {
    const auto result = server.run_round(preset.dataset, preset.sim.clients_per_round);
    for (const auto& e : result.client_evals) window.push_back(e.accuracy);
    if (round % 5 == 0) {
      groups.push_back({round - 4, summarize(window)});
      window.clear();
    }
  }
  return groups;
}

void print_and_record(const std::string& dataset, const std::string& algorithm,
                      const std::vector<GroupStats>& groups, CsvWriter& csv) {
  std::cout << "\n--- " << dataset << " / " << algorithm
            << " (rounds: q1 / median / q3 over 5-round windows)\n";
  for (const auto& g : groups) {
    csv.row({dataset, algorithm, std::to_string(g.round_group), bench::fmt(g.summary.q1),
             bench::fmt(g.summary.median), bench::fmt(g.summary.q3),
             bench::fmt(g.summary.mean), bench::fmt(g.summary.stddev)});
    if ((g.round_group - 1) % 20 == 0) {
      std::cout << "rounds " << g.round_group << "+: " << bench::fmt(g.summary.q1) << " / "
                << bench::fmt(g.summary.median) << " / " << bench::fmt(g.summary.q3) << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 9 — FedAvg vs Specializing DAG, per-client accuracy distributions",
      "DAG better on FMNIST-clustered; comparable on Poets and CIFAR");

  auto csv = bench::open_csv(args, "fig9_fedavg_comparison",
                             {"dataset", "algorithm", "round_group", "q1", "median", "q3",
                              "mean", "stddev"});

  struct Task {
    std::string name;
    std::function<sim::ExperimentPreset()> make;
    std::size_t rounds;
  };
  const sim::PresetOptions options{args.seed, false};
  const std::vector<Task> tasks = {
      {"fmnist-clustered", [&] { return sim::fmnist_clustered_preset(options); },
       args.rounds ? args.rounds : 100},
      {"poets", [&] { return sim::poets_preset(options); }, args.rounds ? args.rounds : 60},
      {"cifar100-like", [&] { return sim::cifar_preset(options); },
       args.rounds ? args.rounds : 40},
  };

  for (const auto& task : tasks) {
    const auto dag_groups = run_dag(task.make(), task.rounds);
    print_and_record(task.name, "dag", dag_groups, csv);
    const auto fed_groups = run_fedavg(task.make(), task.rounds, args.seed);
    print_and_record(task.name, "fedavg", fed_groups, csv);

    const double dag_final = dag_groups.back().summary.median;
    const double fed_final = fed_groups.back().summary.median;
    std::cout << "final median: dag " << bench::fmt(dag_final) << " vs fedavg "
              << bench::fmt(fed_final) << "\n";
  }
  std::cout << "\nShape check: DAG median >= FedAvg median on fmnist-clustered; the two"
               "\nwithin a few points of each other on poets and cifar.\n";
  return 0;
}
