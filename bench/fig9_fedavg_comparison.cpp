// Figure 9 — per-client accuracy distributions: FedAvg vs the Specializing
// DAG on FMNIST-clustered, Poets, and CIFAR-100-like, grouped over 5
// consecutive rounds. FedAvg is evaluated with the central aggregated model;
// the DAG with the locally optimized (published) models.
//
// Paper shape: on FMNIST-clustered the DAG improves faster and with less
// variance across clients (FedAvg cannot specialize); on Poets and CIFAR the
// two reach similar accuracy — the central server can be removed without an
// accuracy penalty.
//
// Thin driver over the registry's "fig9-fedavg-vs-dag" scenario: the runner
// records the per-client accuracies; this main only varies the dataset and
// the algorithm and summarizes the 5-round windows.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "util/stats.hpp"

using namespace specdag;

namespace {

struct GroupStats {
  std::size_t round_group;  // starting round of the 5-round window
  Summary summary;
};

std::vector<GroupStats> window_groups(const scenario::ScenarioResult& result) {
  std::vector<GroupStats> groups;
  std::vector<double> window;
  for (const scenario::ScenarioPoint& point : result.series) {
    window.insert(window.end(), point.client_accuracies.begin(),
                  point.client_accuracies.end());
    if (point.round % 5 == 0) {
      groups.push_back({point.round - 4, summarize(window)});
      window.clear();
    }
  }
  return groups;
}

void print_and_record(const std::string& dataset, const std::string& algorithm,
                      const std::vector<GroupStats>& groups, CsvWriter& csv) {
  std::cout << "\n--- " << dataset << " / " << algorithm
            << " (rounds: q1 / median / q3 over 5-round windows)\n";
  for (const auto& g : groups) {
    csv.row({dataset, algorithm, std::to_string(g.round_group), bench::fmt(g.summary.q1),
             bench::fmt(g.summary.median), bench::fmt(g.summary.q3),
             bench::fmt(g.summary.mean), bench::fmt(g.summary.stddev)});
    if ((g.round_group - 1) % 20 == 0) {
      std::cout << "rounds " << g.round_group << "+: " << bench::fmt(g.summary.q1) << " / "
                << bench::fmt(g.summary.median) << " / " << bench::fmt(g.summary.q3) << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Figure 9 — FedAvg vs Specializing DAG, per-client accuracy distributions",
      "DAG better on FMNIST-clustered; comparable on Poets and CIFAR");

  auto csv = bench::open_csv(args, "fig9_fedavg_comparison",
                             {"dataset", "algorithm", "round_group", "q1", "median", "q3",
                              "mean", "stddev"});

  struct Task {
    std::string dataset;
    std::size_t rounds;
  };
  const std::vector<Task> tasks = {
      {"fmnist-clustered", args.rounds ? args.rounds : 100},
      {"poets", args.rounds ? args.rounds : 60},
      {"cifar", args.rounds ? args.rounds : 40},
  };

  for (const auto& task : tasks) {
    double dag_final = 0.0, fed_final = 0.0;
    for (const scenario::AlgorithmKind algorithm :
         {scenario::AlgorithmKind::kDag, scenario::AlgorithmKind::kFedAvg}) {
      scenario::ScenarioSpec spec = scenario::get_scenario("fig9-fedavg-vs-dag");
      spec.seed = args.seed;
      spec.rounds = task.rounds;
      spec.dataset = scenario::dataset_preset_from_string(task.dataset);
      spec.algorithm = algorithm;
      // Table 1 hyperparameters per dataset column.
      if (task.dataset == "poets") spec.client.train = {1, 35, 10, 0.8};
      if (task.dataset == "cifar") spec.client.train = {5, 45, 10, 0.01};

      const auto groups = window_groups(scenario::run_scenario(spec));
      print_and_record(task.dataset, scenario::to_string(algorithm), groups, csv);
      (algorithm == scenario::AlgorithmKind::kDag ? dag_final : fed_final) =
          groups.empty() ? 0.0 : groups.back().summary.median;
    }
    std::cout << "final median: dag " << bench::fmt(dag_final) << " vs fedavg "
              << bench::fmt(fed_final) << "\n";
  }
  std::cout << "\nShape check: DAG median >= FedAvg median on fmnist-clustered; the two"
               "\nwithin a few points of each other on poets and cifar.\n";
  return 0;
}
