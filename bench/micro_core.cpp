// Microbenchmarks (google-benchmark) for the hot paths of the system:
// dense/conv kernels, LSTM steps, weight averaging, model evaluation (the
// per-step cost of the biased walk), tip selection, and Louvain.
#include <benchmark/benchmark.h>

#include <memory>

#include "data/synthetic_digits.hpp"
#include "fl/evaluation.hpp"
#include "fl/trainer.hpp"
#include "metrics/client_graph.hpp"
#include "nn/batch_executor.hpp"
#include "metrics/community.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/delta_codec.hpp"
#include "sim/models.hpp"
#include "tensor/ops.hpp"
#include "tipsel/tip_selector.hpp"

namespace {

using namespace specdag;

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = random_tensor({n, n}, rng);
  const Tensor b = random_tensor({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  const Tensor input = random_tensor({8, 1, 16, 16}, rng);
  Conv2dSpec spec{1, 16, 5, 1, 2};
  const Tensor filters = random_tensor({16, 25}, rng);
  const Tensor bias({16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_forward(input, filters, bias, spec));
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_DenseForwardBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Dense layer(256, 128);
  layer.init_params(rng);
  const Tensor input = random_tensor({10, 256}, rng);
  for (auto _ : state) {
    Tensor out = layer.forward(input, true);
    benchmark::DoNotOptimize(layer.backward(out));
  }
}
BENCHMARK(BM_DenseForwardBackward);

void BM_LstmForwardBackward(benchmark::State& state) {
  Rng rng(4);
  nn::LSTM lstm(8, 24);
  lstm.init_params(rng);
  const Tensor input = random_tensor({10, 10, 8}, rng);
  for (auto _ : state) {
    Tensor out = lstm.forward(input, true);
    benchmark::DoNotOptimize(lstm.backward(out));
  }
}
BENCHMARK(BM_LstmForwardBackward);

void BM_AverageWeights(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  nn::WeightVector a(n), b(n);
  for (auto& v : a) v = static_cast<float>(rng.uniform());
  for (auto& v : b) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::average_weights(a, b));
  }
}
BENCHMARK(BM_AverageWeights)->Arg(10'000)->Arg(1'000'000);

// The unit cost of one walk step: evaluating a candidate model on a client's
// local test data.
void BM_WalkStepEvaluation(benchmark::State& state) {
  data::SyntheticDigitsConfig config;
  config.num_clients = 3;
  config.samples_per_client = 100;
  const auto ds = data::make_fmnist_clustered(config);
  auto factory = sim::make_mlp_factory(shape_numel(ds.element_shape), 32, 10);
  nn::Sequential model = factory();
  Rng rng(6);
  model.init_params(rng);
  const nn::WeightVector weights = model.get_weights();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::evaluate_weights_on_test(model, weights, ds.clients[0]));
  }
}
BENCHMARK(BM_WalkStepEvaluation);

// --- fused batch executor -------------------------------------------------

data::FederatedDataset batch_exec_dataset(std::size_t num_clients) {
  data::SyntheticDigitsConfig config;
  config.num_clients = num_clients;
  config.samples_per_client = 30;
  config.image_size = 16;  // matches the scale-2k MLP (256 -> 32 -> 10)
  return data::make_fmnist_clustered(config);
}

// One fused train step (1 epoch x 1 batch of 10, the scale-2k schedule)
// across K lanes, including the SoA import/export of every lane's weights.
void BM_BatchedTrainStep(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto ds = batch_exec_dataset(k);
  auto factory = sim::make_mlp_factory(shape_numel(ds.element_shape), 32, 10);
  nn::BatchExecutor exec(factory);
  std::vector<nn::WeightVector> starts(k);
  for (std::size_t i = 0; i < k; ++i) {
    nn::Sequential model = factory();
    Rng init_rng(100 + i);
    model.init_params(init_rng);
    starts[i] = model.get_weights();
  }
  std::vector<Rng> rngs(k, Rng(9));
  fl::TrainConfig train{1, 1, 10, 0.0005};
  for (auto _ : state) {
    std::vector<fl::BatchTrainLane> lanes(k);
    for (std::size_t l = 0; l < k; ++l) {
      lanes[l].client = &ds.clients[l];
      lanes[l].start = &starts[l];
      lanes[l].rng = &rngs[l];
    }
    fl::train_local_batched(exec, lanes, train);
    benchmark::DoNotOptimize(lanes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_BatchedTrainStep)->Arg(1)->Arg(2)->Arg(4)->Arg(16);

// K candidate models evaluated on one client's test split in a single fused
// pass — the shared input block feeds the multi-RHS matmul.
void BM_BatchedEvaluate(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto ds = batch_exec_dataset(2);
  auto factory = sim::make_mlp_factory(shape_numel(ds.element_shape), 32, 10);
  nn::BatchExecutor exec(factory);
  std::vector<nn::WeightVector> models(k);
  std::vector<const nn::WeightVector*> ptrs(k);
  for (std::size_t m = 0; m < k; ++m) {
    nn::Sequential model = factory();
    Rng init_rng(200 + m);
    model.init_params(init_rng);
    models[m] = model.get_weights();
    ptrs[m] = &models[m];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fl::evaluate_models_batched(exec, ptrs, ds.clients[0]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_BatchedEvaluate)->Arg(1)->Arg(2)->Arg(4)->Arg(16);

// The blocked multi-RHS kernel against K independent matmul_into calls on
// the same operands (the executor's shared-activation forward).
void BM_MatmulMultiRhs(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 30, kk = 256, n = 32;
  Rng rng(11);
  std::vector<float> a(m * kk);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<std::vector<float>> bs(k, std::vector<float>(kk * n));
  std::vector<std::vector<float>> cs(k, std::vector<float>(m * n));
  std::vector<const float*> bptr(k);
  std::vector<float*> cptr(k);
  for (std::size_t l = 0; l < k; ++l) {
    for (auto& v : bs[l]) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    bptr[l] = bs[l].data();
    cptr[l] = cs[l].data();
  }
  for (auto _ : state) {
    matmul_multi_rhs(a.data(), bptr.data(), cptr.data(), k, m, kk, n);
    benchmark::DoNotOptimize(cs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * m * kk * n));
}
BENCHMARK(BM_MatmulMultiRhs)->Arg(1)->Arg(4)->Arg(16);

void BM_MatmulMultiRhsScalarLoop(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 30, kk = 256, n = 32;
  Rng rng(11);
  std::vector<float> a(m * kk);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<std::vector<float>> bs(k, std::vector<float>(kk * n));
  std::vector<std::vector<float>> cs(k, std::vector<float>(m * n));
  for (std::size_t l = 0; l < k; ++l) {
    for (auto& v : bs[l]) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    for (std::size_t l = 0; l < k; ++l) {
      matmul_into(a.data(), bs[l].data(), cs[l].data(), m, kk, n);
    }
    benchmark::DoNotOptimize(cs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * m * kk * n));
}
BENCHMARK(BM_MatmulMultiRhsScalarLoop)->Arg(1)->Arg(4)->Arg(16);

// Full accuracy-biased tip selection on a pre-built DAG of the given size.
void BM_AccuracyTipSelection(benchmark::State& state) {
  const auto dag_size = static_cast<std::size_t>(state.range(0));
  dag::Dag dag(nn::WeightVector{0.5f});
  Rng build_rng(7);
  for (std::size_t i = 1; i < dag_size; ++i) {
    const std::size_t parents_count = std::min<std::size_t>(2, dag.size());
    const auto parent_idx = build_rng.sample_without_replacement(dag.size(), parents_count);
    dag.add_transaction({parent_idx.begin(), parent_idx.end()},
                        std::make_shared<const nn::WeightVector>(
                            nn::WeightVector{static_cast<float>(build_rng.uniform())}),
                        static_cast<int>(i % 10), i);
  }
  tipsel::AccuracyTipSelector selector(
      10.0, tipsel::Normalization::kStandard,
      [](const nn::WeightVector& w) { return static_cast<double>(w[0]); });
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select_tips(dag, 2, rng));
  }
}
BENCHMARK(BM_AccuracyTipSelection)->Arg(100)->Arg(1000);

void BM_Louvain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng build_rng(9);
  metrics::ClientGraph graph(n);
  for (std::size_t e = 0; e < n * 6; ++e) {
    const std::size_t a = build_rng.index(n);
    const std::size_t b = build_rng.index(n);
    if (a != b) graph.add_weight(a, b, 1.0);
  }
  for (auto _ : state) {
    Rng rng(10);
    benchmark::DoNotOptimize(metrics::louvain(graph, rng));
  }
}
BENCHMARK(BM_Louvain)->Arg(30)->Arg(100);

// Builds a random 2-parent DAG of `size` transactions (tiny payloads).
// Dag is neither copyable nor movable, hence the unique_ptr.
std::unique_ptr<dag::Dag> build_random_dag(std::size_t size, std::uint64_t seed) {
  auto dag = std::make_unique<dag::Dag>(nn::WeightVector{0.0f});
  Rng build_rng(seed);
  for (std::size_t i = 1; i < size; ++i) {
    const std::size_t parents_count = std::min<std::size_t>(2, dag->size());
    const auto parent_idx = build_rng.sample_without_replacement(dag->size(), parents_count);
    dag->add_transaction({parent_idx.begin(), parent_idx.end()},
                         std::make_shared<const nn::WeightVector>(nn::WeightVector{0.0f}),
                         static_cast<int>(i % 10), i);
  }
  return dag;
}

// Append cost including the incremental weight-index maintenance (one
// past-cone BFS per append). Each iteration appends a 64-transaction slab
// onto a DAG pre-grown to the argument size.
void BM_DagAppend(benchmark::State& state) {
  const auto dag_size = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSlab = 64;
  std::uint64_t rebuild = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto dag = build_random_dag(dag_size, 13 + rebuild++);
    Rng rng(21);
    state.ResumeTiming();
    for (std::size_t i = 0; i < kSlab; ++i) {
      const auto parent_idx = rng.sample_without_replacement(dag->size(), 2);
      dag->add_transaction({parent_idx.begin(), parent_idx.end()},
                           std::make_shared<const nn::WeightVector>(nn::WeightVector{0.0f}),
                           0, dag_size + i);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSlab));
}
BENCHMARK(BM_DagAppend)->Arg(1000)->Arg(5000);

// Weighted (cumulative-weight biased) tip selection on a large pre-built
// DAG — the Algorithm-1 hot path the incremental index accelerates. The
// acceptance target: >= 10x over the per-walk bit-parallel sweep at 5000+
// transactions (compare BENCH_PR4.json against the previous trajectory
// point).
void BM_SelectTipsLargeDag(benchmark::State& state) {
  const auto dag_size = static_cast<std::size_t>(state.range(0));
  const auto dag = build_random_dag(dag_size, 14);
  tipsel::WeightedTipSelector selector(0.5);
  Rng rng(22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select_tips(*dag, 2, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SelectTipsLargeDag)->Arg(1000)->Arg(5000)->Arg(10000);

// The same workload against the retained bit-parallel sweep oracle: the
// before/after pair BENCH_PR4.json records for the 10x acceptance check.
void BM_CumulativeWeightsSweepReference(benchmark::State& state) {
  const auto dag_size = static_cast<std::size_t>(state.range(0));
  const auto dag = build_random_dag(dag_size, 14);
  std::vector<std::size_t> weights;
  std::vector<std::uint64_t> reach;
  for (auto _ : state) {
    dag->cumulative_weights_reference_into(weights, reach);
    benchmark::DoNotOptimize(weights.data());
  }
}
BENCHMARK(BM_CumulativeWeightsSweepReference)->Arg(1000)->Arg(5000)->Arg(10000);

void BM_CumulativeWeight(benchmark::State& state) {
  const auto dag_size = static_cast<std::size_t>(state.range(0));
  dag::Dag dag(nn::WeightVector{0.0f});
  Rng build_rng(11);
  for (std::size_t i = 1; i < dag_size; ++i) {
    const std::size_t parents_count = std::min<std::size_t>(2, dag.size());
    const auto parent_idx = build_rng.sample_without_replacement(dag.size(), parents_count);
    dag.add_transaction({parent_idx.begin(), parent_idx.end()},
                        std::make_shared<const nn::WeightVector>(nn::WeightVector{0.0f}),
                        0, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.cumulative_weight(dag::kGenesisTx));
  }
}
BENCHMARK(BM_CumulativeWeight)->Arg(1000);

// The whole-DAG table (bit-parallel) vs one BFS per transaction: this is
// the metrics-path workload dag_weight_summary runs per scenario.
void BM_CumulativeWeightsAll(benchmark::State& state) {
  const auto dag_size = static_cast<std::size_t>(state.range(0));
  dag::Dag dag(nn::WeightVector{0.0f});
  Rng build_rng(12);
  for (std::size_t i = 1; i < dag_size; ++i) {
    const std::size_t parents_count = std::min<std::size_t>(2, dag.size());
    const auto parent_idx = build_rng.sample_without_replacement(dag.size(), parents_count);
    dag.add_transaction({parent_idx.begin(), parent_idx.end()},
                        std::make_shared<const nn::WeightVector>(nn::WeightVector{0.0f}),
                        0, i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.cumulative_weights_all());
  }
}
BENCHMARK(BM_CumulativeWeightsAll)->Arg(1000);

// ----------------------------------------------------------- delta codec ---

// One converged-style payload pair: a small local update on a shared base.
void make_codec_payload(std::size_t n, nn::WeightVector& base, nn::WeightVector& values) {
  Rng rng(0xC0DEC);
  base.resize(n);
  values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    base[i] = static_cast<float>(rng.normal(0.0, 0.1));
    // ~30% untouched weights (zero xor words) as converged updates show.
    values[i] = rng.uniform() < 0.3
                    ? base[i]
                    : base[i] + static_cast<float>(rng.normal(0.0, 1e-4));
  }
}

void BM_EncodeDelta(benchmark::State& state) {
  nn::WeightVector base, values;
  make_codec_payload(static_cast<std::size_t>(state.range(0)), base, values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::encode_delta(values.data(), base.data(), values.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncodeDelta)->Arg(100'000);

void BM_EncodeDeltaScalar(benchmark::State& state) {
  nn::WeightVector base, values;
  make_codec_payload(static_cast<std::size_t>(state.range(0)), base, values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store::encode_delta_scalar(values.data(), base.data(), values.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EncodeDeltaScalar)->Arg(100'000);

void BM_DecodeDelta(benchmark::State& state) {
  nn::WeightVector base, values;
  make_codec_payload(static_cast<std::size_t>(state.range(0)), base, values);
  const std::vector<std::uint8_t> encoded =
      store::encode_delta(values.data(), base.data(), values.size());
  nn::WeightVector out(values.size());
  for (auto _ : state) {
    store::decode_delta(encoded.data(), encoded.size(), base.data(), out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodeDelta)->Arg(100'000);

void BM_DecodeDeltaScalar(benchmark::State& state) {
  nn::WeightVector base, values;
  make_codec_payload(static_cast<std::size_t>(state.range(0)), base, values);
  const std::vector<std::uint8_t> encoded =
      store::encode_delta(values.data(), base.data(), values.size());
  nn::WeightVector out(values.size());
  for (auto _ : state) {
    store::decode_delta_scalar(encoded.data(), encoded.size(), base.data(), out.data(),
                               out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DecodeDeltaScalar)->Arg(100'000);

// ------------------------------------------------------------------- obs ---

// One registered-counter increment: the marginal cost of leaving metrics on
// (ISSUE 6 budget: a few ns — one relaxed flag load + one sharded relaxed
// fetch_add).
void BM_CounterIncrement(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Counter& counter = obs::Registry::counter("bench.counter_increment");
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncrement)->Threads(1)->Threads(4);

void BM_CounterIncrementDisabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  obs::Counter& counter = obs::Registry::counter("bench.counter_increment");
  for (auto _ : state) {
    counter.add();
  }
  obs::set_metrics_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncrementDisabled);

void BM_HistogramRecord(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  obs::Histogram& histogram = obs::Registry::histogram("bench.histogram_record");
  std::uint64_t value = 0;
  for (auto _ : state) {
    histogram.record(value++ & 0xFFFF);
  }
  benchmark::DoNotOptimize(histogram.count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord)->Threads(1)->Threads(4);

// Construct+destroy a ScopedSpan with tracing off — the cost every
// instrumented scope pays in a normal (untraced) run.
void BM_ScopedSpanUntraced(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span", {{"i", 1}});
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedSpanUntraced);

// The same scope with an active session: buffer append under the global
// trace mutex (opt-in diagnostic mode, so a lock is acceptable here).
void BM_ScopedSpan(benchmark::State& state) {
  if (state.thread_index() == 0) {
    obs::start_trace("/dev/null");
  }
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span", {{"i", 1}});
    benchmark::DoNotOptimize(&span);
  }
  if (state.thread_index() == 0) {
    obs::stop_trace();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedSpan)->Threads(1)->Threads(4);

// Context::current() through the thread-local — the lookup every
// instrumented call site pays before touching a cell (ISSUE 7 budget: this
// must stay off the hot path's critical dependency chain, ~1 ns).
void BM_ContextLookupCached(benchmark::State& state) {
  obs::Context ctx;
  obs::ContextScope scope(&ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&obs::Context::current());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContextLookupCached);

// Install + restore a ContextScope — the per-task overhead ThreadPool adds
// to propagate the poster's context into its workers.
void BM_ContextSwitch(benchmark::State& state) {
  obs::Context ctx;
  for (auto _ : state) {
    obs::ContextScope scope(&ctx);
    benchmark::DoNotOptimize(&scope);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ContextSwitch);

// Bucket-wise merge of two fully-populated histogram snapshots — the sweep
// aggregator's unit of work (runs once per run per histogram at sweep end).
void BM_HistogramMerge(benchmark::State& state) {
  obs::HistogramSnapshot a;
  obs::HistogramSnapshot b;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    a.buckets[i] = i * 37 + 1;
    b.buckets[i] = i * 11 + 2;
    a.count += a.buckets[i];
    b.count += b.buckets[i];
  }
  a.sum = 123456789;
  b.sum = 987654321;
  for (auto _ : state) {
    obs::HistogramSnapshot merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramMerge);

}  // namespace

BENCHMARK_MAIN();
