// Table 2: approval pureness in the DAG after 100 rounds of training.
//
//   Dataset            #clusters  base pureness  paper pureness
//   FMNIST-clustered   3          0.33           1.0
//   Poets              2          0.5            0.95
//   CIFAR-100          20         0.05           0.51
#include <functional>

#include "bench_common.hpp"
#include "sim/experiment.hpp"

using namespace specdag;

namespace {

struct Row {
  std::string dataset;
  std::size_t clusters;
  double base;
  double measured;
  double paper;
};

Row run(sim::ExperimentPreset preset, std::size_t rounds, double paper_value) {
  const std::size_t clusters = preset.dataset.num_clusters;
  std::vector<std::size_t> cluster_sizes(clusters, 0);
  for (const auto& c : preset.dataset.clients) {
    cluster_sizes[static_cast<std::size_t>(c.true_cluster)]++;
  }
  sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);
  simulator.run_rounds(rounds);
  return {preset.name, clusters, metrics::base_pureness(cluster_sizes),
          simulator.approval_pureness().pureness, paper_value};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 2 — approval pureness after training",
                      "pureness >> base for all datasets; FMNIST ~1.0, Poets ~0.95, "
                      "CIFAR ~0.51 (paper scale)");

  const sim::PresetOptions options{args.seed, false};
  // CIFAR runs at reduced rounds by default to keep the bench suite fast;
  // override with --rounds for a full-length run.
  const std::size_t fmnist_rounds = args.rounds ? args.rounds : 100;
  const std::size_t poets_rounds = args.rounds ? args.rounds : 100;
  const std::size_t cifar_rounds = args.rounds ? args.rounds : 60;

  std::vector<Row> rows;
  rows.push_back(run(sim::fmnist_clustered_preset(options), fmnist_rounds, 1.0));
  rows.push_back(run(sim::poets_preset(options), poets_rounds, 0.95));
  rows.push_back(run(sim::cifar_preset(options), cifar_rounds, 0.51));

  auto csv = bench::open_csv(args, "table2_pureness",
                             {"dataset", "clusters", "base_pureness", "measured_pureness",
                              "paper_pureness"});
  std::cout << "\ndataset                 clusters  base    measured  paper\n";
  for (const auto& row : rows) {
    std::cout << row.dataset << std::string(24 - std::min<std::size_t>(24, row.dataset.size()), ' ')
              << row.clusters << "         " << bench::fmt(row.base, 2) << "    "
              << bench::fmt(row.measured, 2) << "      " << bench::fmt(row.paper, 2) << "\n";
    csv.row({row.dataset, std::to_string(row.clusters), bench::fmt(row.base),
             bench::fmt(row.measured), bench::fmt(row.paper)});
  }
  std::cout << "\nShape check: measured pureness must exceed base pureness for every"
               "\ndataset, with FMNIST-clustered the purest (fully disjoint clusters).\n";
  return 0;
}
