// Table 2: approval pureness in the DAG after 100 rounds of training.
//
//   Dataset            #clusters  base pureness  paper pureness
//   FMNIST-clustered   3          0.33           1.0
//   Poets              2          0.5            0.95
//   CIFAR-100          20         0.05           0.51
//
// Thin driver over the registry's "table2-pureness" scenario: one run per
// dataset preset; pureness and its random-approval base come from the run
// summary.
#include "bench_common.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

using namespace specdag;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Table 2 — approval pureness after training",
                      "pureness >> base for all datasets; FMNIST ~1.0, Poets ~0.95, "
                      "CIFAR ~0.51 (paper scale)");

  struct Row {
    std::string dataset;
    std::size_t rounds;  // CIFAR runs reduced by default to keep the suite fast
    double paper;
  };
  const std::vector<Row> rows = {
      {"fmnist-clustered", args.rounds ? args.rounds : 100, 1.0},
      {"poets", args.rounds ? args.rounds : 100, 0.95},
      {"cifar", args.rounds ? args.rounds : 60, 0.51},
  };

  auto csv = bench::open_csv(args, "table2_pureness",
                             {"dataset", "base_pureness", "measured_pureness",
                              "paper_pureness"});
  std::cout << "\ndataset                 base    measured  paper\n";
  for (const Row& row : rows) {
    scenario::ScenarioSpec spec = scenario::get_scenario("table2-pureness");
    spec.seed = args.seed;
    spec.rounds = row.rounds;
    spec.dataset = scenario::dataset_preset_from_string(row.dataset);
    // Table 1 hyperparameters per dataset column.
    if (row.dataset == "poets") spec.client.train = {1, 35, 10, 0.8};
    if (row.dataset == "cifar") spec.client.train = {5, 45, 10, 0.01};

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    std::cout << row.dataset
              << std::string(24 - std::min<std::size_t>(24, row.dataset.size()), ' ')
              << bench::fmt(result.base_pureness, 2) << "    "
              << bench::fmt(result.pureness, 2) << "      " << bench::fmt(row.paper, 2)
              << "\n";
    csv.row({row.dataset, bench::fmt(result.base_pureness), bench::fmt(result.pureness),
             bench::fmt(row.paper)});
  }
  std::cout << "\nShape check: measured pureness must exceed base pureness for every"
               "\ndataset, with FMNIST-clustered the purest (fully disjoint clusters).\n";
  return 0;
}
