// Asynchronous network example: no rounds, heterogeneous device speeds,
// broadcast latency — the deployment regime the paper motivates. Also
// demonstrates the DAG export: writes the final ledger as Graphviz DOT
// (colored by ground-truth cluster) and JSONL for external analysis.
//
// Usage: async_network [steps] [latency] [dot_path]
#include <cstdlib>
#include <iostream>

#include "dag/export.hpp"
#include "data/synthetic_digits.hpp"
#include "sim/async_simulator.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace specdag;
  const std::size_t steps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const double latency = argc > 2 ? std::strtod(argv[2], nullptr) : 0.3;
  const std::string dot_path = argc > 3 ? argv[3] : "specdag.dot";

  data::SyntheticDigitsConfig data_config;
  data_config.num_clients = 15;
  data_config.samples_per_client = 100;
  data_config.image_size = 10;
  const auto dataset = data::make_fmnist_clustered(data_config);
  auto factory = sim::make_mlp_factory(shape_numel(dataset.element_shape), 24, 10);

  sim::AsyncSimulatorConfig config;
  config.client.train = {1, 10, 10, 0.05};
  config.client.alpha = 10.0;
  config.broadcast_latency = latency;

  // Heterogeneous devices: a third fast, a third normal, a third slow.
  std::vector<sim::AsyncClientProfile> profiles;
  for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
    profiles.push_back({i % 3 == 0 ? 0.5 : i % 3 == 1 ? 1.0 : 2.0});
  }

  sim::AsyncDagSimulator simulator(dataset, factory, config, profiles);
  std::cout << "Running " << steps << " asynchronous client steps (broadcast latency "
            << latency << ")...\n";
  const auto records = simulator.run_steps(steps);

  std::cout << "virtual time elapsed: " << simulator.now() << "\n"
            << "transactions in DAG:  " << simulator.dag().size() << "\n"
            << "current tips:         " << simulator.dag().tips().size() << "\n"
            << "approval pureness:    " << simulator.approval_pureness().pureness
            << "  (random base would be 0.33)\n";

  double late_acc = 0.0;
  const std::size_t tail = records.size() / 4;
  for (std::size_t i = records.size() - tail; i < records.size(); ++i) {
    late_acc += records[i].result.trained_eval.accuracy;
  }
  std::cout << "late-phase accuracy:  " << late_acc / static_cast<double>(tail) << "\n";

  dag::DotOptions options;
  options.client_clusters = simulator.true_clusters();
  dag::save_dot(dot_path, simulator.dag(), options);
  dag::save_jsonl(dot_path + ".jsonl", simulator.dag());
  std::cout << "\nWrote " << dot_path << " (render with `dot -Tsvg`) and " << dot_path
            << ".jsonl.\nNodes are colored by ground-truth cluster: the colored lineages\n"
               "that emerge are the paper's implicit specialization, here without any\n"
               "round synchronization at all.\n";
  return 0;
}
