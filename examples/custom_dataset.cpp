// Bring-your-own-data example: plugging a custom dataset and model into the
// public API. This is the path a downstream adopter takes — none of the
// built-in generators or presets are used.
//
// Scenario: hospitals collaboratively train a classifier over 3-lead sensor
// windows. Two groups of hospitals use different sensor vendors whose
// signals are calibrated differently (a natural non-IID split), and nobody
// may share raw data. Each hospital becomes one DAG client.
//
// Usage: custom_dataset [rounds]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/specializing_dag.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"

namespace {

using namespace specdag;

constexpr std::size_t kWindow = 24;   // samples per sensor window
constexpr std::size_t kClasses = 4;   // event types to classify

// Synthesizes one hospital's shard: class = dominant frequency of the
// window; vendor changes gain and offset (the non-IID axis).
data::ClientData make_hospital_shard(int id, int vendor, std::size_t samples, Rng rng) {
  data::ClientData shard;
  shard.client_id = id;
  shard.true_cluster = vendor;  // only used by evaluation metrics
  shard.element_shape = {kWindow};
  const double gain = vendor == 0 ? 1.0 : 1.8;
  const double offset = vendor == 0 ? 0.0 : 0.6;
  for (std::size_t s = 0; s < samples; ++s) {
    const int label = static_cast<int>(rng.index(kClasses));
    const double freq = 1.0 + label;  // class-dependent dominant frequency
    for (std::size_t t = 0; t < kWindow; ++t) {
      const double clean = std::sin(2.0 * 3.14159265 * freq * t / kWindow);
      shard.train_x.push_back(
          static_cast<float>(gain * clean + offset + rng.normal(0.0, 0.3)));
    }
    shard.train_y.push_back(label);
  }
  // The walk needs local test data: hold out 10% (paper's 90:10 split).
  data::train_test_split(shard, 0.1, rng);
  return shard;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 25;

  // 1. Each hospital builds its private shard (in reality: loads it).
  Rng root(2024);
  std::vector<data::ClientData> hospitals;
  for (int id = 0; id < 8; ++id) {
    hospitals.push_back(make_hospital_shard(id, id % 2, 160, root.fork(id)));
  }

  // 2. A model factory — any Sequential works; here a small MLP.
  nn::ModelFactory factory = [] {
    nn::Sequential model;
    model.add<nn::Dense>(kWindow, 32);
    model.add<nn::ReLU>();
    model.add<nn::Dense>(32, kClasses);
    return model;
  };

  // 3. Network configuration: training regime and specialization strength.
  fl::DagClientConfig config;
  config.train = {/*local_epochs=*/1, /*local_batches=*/12, /*batch_size=*/12,
                  /*learning_rate=*/0.05};
  config.alpha = 10.0;  // raise to specialize harder, lower to generalize
  core::SpecializingDag net(factory, config, /*seed=*/1);

  std::vector<int> handles;
  for (const auto& hospital : hospitals) handles.push_back(net.register_client(&hospital));

  // 4. Train. In a deployment each client steps on its own schedule; the
  //    round loop here just makes the demo deterministic.
  nn::Sequential probe = factory();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (int h : handles) net.client_step(h, round);
  }

  // 5. Every hospital pulls its personalized consensus model for inference.
  std::cout << "hospital  vendor  consensus_accuracy\n";
  for (std::size_t i = 0; i < hospitals.size(); ++i) {
    const auto weights = net.consensus_weights(handles[i]);
    const auto eval = fl::evaluate_weights_on_test(probe, weights, hospitals[i]);
    std::cout << i << "         " << hospitals[i].true_cluster << "       " << eval.accuracy
              << "\n";
  }
  std::cout << "\nVendor groups specialized implicitly: hospitals ended up pulling\n"
               "consensus models dominated by updates from hospitals with the same\n"
               "sensor calibration. No coordinator, no cluster labels, no raw data\n"
               "exchange -- only model weights travelled through the DAG.\n";
  return 0;
}
