// Poisoning-robustness demo (paper §4.4 / §5.3.4).
//
// Trains a healthy network, then flips the labels 3 <-> 8 for a fraction of
// clients (the attacker forged their sensing hardware) and continues
// training. Prints, per round, how many class-3/8 test samples benign
// clients mispredict as the respective other class, and how many poisoned
// transactions their consensus references approve.
//
// Usage: poisoning_demo [clean_rounds] [attack_rounds] [p]
#include <cstdlib>
#include <iostream>

#include "fl/evaluation.hpp"
#include "metrics/dag_metrics.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace specdag;
  const std::size_t clean_rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
  const std::size_t attack_rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;
  const double p = argc > 3 ? std::strtod(argv[3], nullptr) : 0.3;

  sim::ExperimentPreset preset = sim::fmnist_by_author_preset({});
  nn::ModelFactory factory = preset.factory;
  sim::DagSimulator simulator(std::move(preset.dataset), factory, preset.sim);

  std::cout << "Phase 1: " << clean_rounds << " clean training rounds...\n";
  simulator.run_rounds(clean_rounds);

  const auto poisoned_ids = simulator.apply_poisoning(p, 3, 8);
  std::cout << "Phase 2: flipped labels 3 <-> 8 for " << poisoned_ids.size()
            << " of " << simulator.dataset().clients.size() << " clients (p = " << p
            << "); continuing training.\n\n";
  std::cout << "round  benign_flip_rate  approved_poisoned_txs\n";

  nn::Sequential probe = factory();
  for (std::size_t round = 0; round < attack_rounds; ++round) {
    simulator.run_round();
    if ((round + 1) % 5 != 0) continue;
    double flip_sum = 0.0, poison_sum = 0.0;
    std::size_t benign = 0;
    for (std::size_t i = 0; i < simulator.dataset().clients.size(); ++i) {
      const auto& client = simulator.dataset().clients[i];
      if (client.poisoned) continue;
      const dag::TxId reference =
          simulator.network().consensus_reference(static_cast<int>(i));
      flip_sum += fl::flip_rate(probe, *simulator.dag().weights(reference), client, 3, 8);
      poison_sum +=
          static_cast<double>(metrics::approved_poisoned_count(simulator.dag(), reference));
      ++benign;
    }
    std::cout << clean_rounds + round + 1 << "     "
              << flip_sum / static_cast<double>(benign) << "             "
              << poison_sum / static_cast<double>(benign) << "\n";
  }

  std::cout << "\nThe accuracy-biased walk limits the attack: poisoned models score\n"
               "poorly on benign clients' local test data, so benign walks route\n"
               "around them even when poisoned transactions sit in their past cone.\n"
               "Compare with SelectorKind::kRandom (see bench/fig12_14_poisoning).\n";
  return 0;
}
