// Quickstart: run a complete Specializing-DAG experiment in a few lines via
// the scenario engine.
//
// A scenario spec bundles dataset, model, simulator, and hyperparameters;
// the registry ships ready-made specs for the paper's experiments and the
// network-dynamics workloads (churn, stragglers, partition). Run any of
// them — or tweak the spec programmatically, as main() does with the round
// count — and get back a per-round series plus final DAG metrics.
//
// The equivalent command line is `specdag run fmnist-clustered`; see
// examples/specialization_demo.cpp for the underlying client/DAG API.
//
// Usage: quickstart [scenario] [rounds]
#include <cstdlib>
#include <iostream>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) {
  using namespace specdag;

  const std::string name = argc > 1 ? argv[1] : "fmnist-clustered";
  scenario::ScenarioSpec spec = scenario::get_scenario(name);
  if (argc > 2) spec.rounds = std::strtoul(argv[2], nullptr, 10);
  // Small, fast variant of the scenario's dataset for the demo; drop this
  // block to run at the preset's full size. (Poets/CIFAR have structural
  // client counts and run as-is.)
  if (spec.dataset != scenario::DatasetPreset::kPoets &&
      spec.dataset != scenario::DatasetPreset::kCifar) {
    spec.num_clients = 9;
    if (spec.dataset != scenario::DatasetPreset::kFedproxSynthetic) {
      spec.samples_per_client = 60;
    }
  }
  // The final consensus-model evaluation is the metric a participant cares
  // about: the accuracy of the personalized model their biased walk finds.
  spec.evaluate_consensus = true;

  std::cout << "scenario: " << spec.name << " — " << spec.description << "\n";
  std::cout << "round  mean_accuracy  dag_size  active\n";

  const scenario::ScenarioResult result = scenario::run_scenario(spec);
  for (const scenario::ScenarioPoint& point : result.series) {
    std::cout << point.round << "      " << point.mean_accuracy << "      " << point.dag_size
              << "      " << point.active_clients << (point.partitioned ? "  [partitioned]" : "")
              << "\n";
  }

  std::cout << "\nfinal: accuracy=" << result.final_accuracy
            << "  consensus_accuracy=" << result.consensus_accuracy
            << "  pureness=" << result.pureness << " (random baseline " << result.base_pureness
            << ")\n  modularity=" << result.modularity << "  communities=" << result.communities
            << "  dag_size=" << result.dag_size << "\n";
  std::cout << "\nEach client converged to a consensus model specialized for its cluster --\n"
               "try `quickstart churn` or `quickstart partition` for the dynamic workloads.\n";
  return 0;
}
