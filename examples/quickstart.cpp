// Quickstart: the smallest complete Specializing-DAG program.
//
// Builds a synthetic clustered federated dataset, creates a DAG network,
// lets every client take training steps (walk -> average -> train ->
// publish-if-better), and prints how the accuracy of each client's
// *personalized consensus model* evolves.
//
// Usage: quickstart [rounds]
#include <cstdlib>
#include <iostream>

#include "core/specializing_dag.hpp"
#include "data/synthetic_digits.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace specdag;
  const std::size_t rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;

  // 1. A small clustered dataset: 9 clients in 3 clusters over digit groups
  //    {0-3}, {4-6}, {7-9}. In a real deployment each client would hold its
  //    own private data; here we synthesize all shards for the demo.
  data::SyntheticDigitsConfig data_config;
  data_config.num_clients = 9;
  data_config.samples_per_client = 60;
  const data::FederatedDataset dataset = data::make_fmnist_clustered(data_config);

  // 2. The model every participant trains: a compact classifier from the
  //    paper's FEMNIST model family.
  nn::ModelFactory factory =
      sim::make_mlp_factory(shape_numel(dataset.element_shape), 32, dataset.num_classes);

  // 3. The DAG network: accuracy-biased tip selection with alpha = 10 (the
  //    paper's sweet spot for clustered data).
  fl::DagClientConfig config;
  config.alpha = 10.0;
  config.train = {/*local_epochs=*/1, /*local_batches=*/10, /*batch_size=*/10,
                  /*learning_rate=*/0.05};
  config.start_depth_min = 2;
  config.start_depth_max = 6;
  core::SpecializingDag net(factory, config, /*seed=*/7);

  std::vector<int> handles;
  for (const auto& client : dataset.clients) {
    handles.push_back(net.register_client(&client));
  }

  // 4. Train: every client steps once per round.
  std::cout << "round  mean_consensus_accuracy  dag_size\n";
  nn::Sequential probe = factory();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (int h : handles) net.client_step(h, round);

    double acc_sum = 0.0;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const nn::WeightVector weights = net.consensus_weights(handles[i]);
      acc_sum +=
          fl::evaluate_weights_on_test(probe, weights, dataset.clients[i]).accuracy;
    }
    std::cout << round << "      " << acc_sum / static_cast<double>(handles.size()) << "      "
              << net.dag().size() << "\n";
  }

  std::cout << "\nEach client converged to a consensus model specialized for its"
               " cluster --\nsee examples/specialization_demo for the emerging"
               " community structure.\n";
  return 0;
}
