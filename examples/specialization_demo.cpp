// Specialization demo: watch the implicit clustering emerge.
//
// Runs the FMNIST-clustered experiment and prints, every few rounds, the
// DAG's approval pureness, the modularity of the derived client graph, the
// communities found by Louvain, and how they line up with the ground-truth
// clusters — the paper's §4.3 metrics live, on one screen.
//
// Usage: specialization_demo [rounds] [alpha]
#include <cstdlib>
#include <iostream>
#include <map>

#include "metrics/community.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace specdag;
  const std::size_t rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 10.0;

  sim::ExperimentPreset preset = sim::fmnist_clustered_preset({});
  preset.sim.client.alpha = alpha;
  const std::vector<int> true_clusters = [&] {
    std::vector<int> tc;
    for (const auto& c : preset.dataset.clients) tc.push_back(c.true_cluster);
    return tc;
  }();
  sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, preset.sim);

  std::cout << "Specializing DAG on FMNIST-clustered (alpha = " << alpha << ")\n"
            << "3 ground-truth clusters over digit groups {0-3}, {4-6}, {7-9}\n\n"
            << "round  accuracy  pureness  modularity  communities  misclass\n";

  for (std::size_t round = 1; round <= rounds; ++round) {
    const auto& record = simulator.run_round();
    if (round % 10 != 0) continue;
    const auto pureness = simulator.approval_pureness();
    const auto louvain = simulator.louvain_communities();
    const double misclass =
        metrics::misclassification_fraction(louvain.partition, true_clusters);
    std::cout << round << "     " << record.mean_trained_accuracy() << "      "
              << pureness.pureness << "     " << louvain.modularity << "      "
              << louvain.num_communities << "            " << misclass << "\n";
  }

  // Final community table: inferred community vs ground-truth cluster.
  const auto louvain = simulator.louvain_communities();
  std::map<int, std::map<int, int>> table;  // community -> true cluster -> count
  for (std::size_t i = 0; i < louvain.partition.size(); ++i) {
    table[louvain.partition[i]][true_clusters[i]]++;
  }
  std::cout << "\nInferred communities vs ground-truth clusters:\n";
  for (const auto& [community, hist] : table) {
    std::cout << "  community " << community << ": ";
    for (const auto& [cluster, count] : hist) {
      std::cout << count << " client(s) of cluster " << cluster << "  ";
    }
    std::cout << "\n";
  }
  std::cout << "\nWith alpha around 10, each community should map 1:1 onto a\n"
               "ground-truth cluster — specialization emerged implicitly from\n"
               "the accuracy-biased tip selection alone.\n";
  return 0;
}
