#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (version 0.0.4) file.

Checks the grammar rules a scrape would enforce, plus the invariants of the
specdag exporter (src/obs/prom.cpp):

  * every line is a comment (# HELP / # TYPE) or a sample
    `name[{labels}] value [timestamp]`;
  * metric and label names match the exposition charset;
  * every sample belongs to a family announced by a preceding # TYPE line,
    and each family is announced exactly once;
  * counter samples end in _total and carry non-negative integer values;
  * histogram families expose cumulative non-decreasing _bucket series with
    a final le="+Inf" bucket equal to _count, plus _sum and _count.

Exit code 0 = clean; 1 = violations (printed one per line).

Usage: check_prom.py file.prom [file2.prom ...]
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(r'^(?P<name>[^=]+)="(?P<value>(?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    if text in ("+Inf", "-Inf", "Nan", "NaN"):
        return float(text.replace("Nan", "nan").replace("NaN", "nan"))
    return float(text)


def base_family(name, families):
    """The announced family a sample name belongs to (histogram samples use
    the family name plus a _bucket/_sum/_count suffix)."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def check_file(path):
    errors = []

    def err(lineno, message):
        errors.append(f"{path}:{lineno}: {message}")

    families = {}  # name -> type
    # histogram family -> {"buckets": [(le, value)], "sum": v, "count": v}
    histograms = {}
    counters = {}  # sample name -> value

    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in TYPES:
                        err(lineno, f"malformed TYPE line: {line!r}")
                        continue
                    name = parts[2]
                    if not METRIC_NAME.match(name):
                        err(lineno, f"bad metric name in TYPE: {name!r}")
                    if name in families:
                        err(lineno, f"duplicate TYPE for {name}")
                    families[name] = parts[3]
                    if parts[3] == "histogram":
                        histograms[name] = {"buckets": [], "sum": None, "count": None}
            # other comments are legal and ignored
            continue

        match = SAMPLE.match(line)
        if not match:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        labels = {}
        if match.group("labels") is not None:
            for pair in filter(None, match.group("labels").split(",")):
                pair_match = LABEL_PAIR.match(pair)
                if not pair_match:
                    err(lineno, f"malformed label pair {pair!r}")
                    continue
                label = pair_match.group("name")
                if not LABEL_NAME.match(label):
                    err(lineno, f"bad label name {label!r}")
                labels[label] = pair_match.group("value")
        try:
            value = parse_value(match.group("value"))
        except ValueError:
            err(lineno, f"unparseable value {match.group('value')!r}")
            continue

        family = base_family(name, families)
        if family is None:
            err(lineno, f"sample {name} has no preceding # TYPE line")
            continue
        kind = families[family]

        if kind == "counter":
            if not name.endswith("_total"):
                err(lineno, f"counter sample {name} should end in _total")
            if value < 0 or value != int(value):
                err(lineno, f"counter {name} has non-counter value {value}")
            counters[name] = value
        elif kind == "histogram":
            hist = histograms[family]
            if name == family + "_bucket":
                if "le" not in labels:
                    err(lineno, f"histogram bucket of {family} missing le label")
                else:
                    hist["buckets"].append((lineno, labels["le"], value))
            elif name == family + "_sum":
                hist["sum"] = (lineno, value)
            elif name == family + "_count":
                hist["count"] = (lineno, value)
            else:
                err(lineno, f"unexpected histogram sample {name}")

    for family, hist in histograms.items():
        if not hist["buckets"]:
            errors.append(f"{path}: histogram {family} has no buckets")
            continue
        previous = -1.0
        previous_le = None
        for lineno, le, value in hist["buckets"]:
            le_value = parse_value(le) if le != "+Inf" else float("inf")
            if previous_le is not None and le_value <= previous_le:
                err(lineno, f"{family} bucket le={le} not increasing")
            previous_le = le_value
            if value < previous:
                err(lineno, f"{family} bucket le={le} not cumulative "
                            f"({value} < {previous})")
            previous = value
        last_le = hist["buckets"][-1][1]
        if last_le != "+Inf":
            errors.append(f"{path}: histogram {family} last bucket is le={last_le}, "
                          "not +Inf")
        if hist["sum"] is None:
            errors.append(f"{path}: histogram {family} missing _sum")
        if hist["count"] is None:
            errors.append(f"{path}: histogram {family} missing _count")
        elif hist["buckets"][-1][2] != hist["count"][1]:
            errors.append(f"{path}: histogram {family} +Inf bucket "
                          f"{hist['buckets'][-1][2]} != _count {hist['count'][1]}")

    return errors, len(families)


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in sys.argv[1:]:
        errors, num_families = check_file(path)
        if errors:
            failed = True
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK ({num_families} metric families)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
