#!/usr/bin/env python3
"""Crash-injection smoke test for checkpoint/resume.

SIGKILLs a checkpointed scale-2k run mid-flight at a random round, resumes it
from the last surviving checkpoint, and asserts the resumed run reproduces the
uninterrupted run exactly: the JSONL series byte-identical (modulo the
wall-clock mean_walk_seconds field, which is zeroed on both sides), and the
final accuracy / DAG size / store delta counts equal — at every requested
thread count. Also asserts the snapshot.writes / snapshot.bytes obs counters
are present in summary.obs, and that checkpointing every round costs at most
5% wall time (plus a small constant cushion) over the same run without
checkpoints — both sides timed as the median of several repetitions, because
single-shot wall time on a shared machine is too noisy to gate a 5% bound.

Usage:
  python3 scripts/crash_resume_smoke.py --binary build/specdag \
      [--clients 200] [--rounds 6] [--threads 1,4] [--seed 7]
"""

import argparse
import json
import os
import random
import re
import shutil
import signal
import statistics
import subprocess
import sys
import tempfile
import time

WALK_SECONDS = re.compile(r'"mean_walk_seconds":[^,}]*')


def normalize(path):
    """JSONL with the wall-clock walk timing zeroed — the only field that
    legitimately differs between two executions of the same schedule."""
    with open(path) as f:
        return WALK_SECONDS.sub('"mean_walk_seconds":0', f.read())


def run_cmd(cmd, **kwargs):
    result = subprocess.run(cmd, capture_output=True, text=True, **kwargs)
    if result.returncode != 0:
        sys.exit(f"FAIL: {' '.join(cmd)}\nexit {result.returncode}\n{result.stderr[-2000:]}")
    return result


def base_cmd(args, threads):
    return [
        args.binary, "run", args.scenario,
        "--clients", str(args.clients),
        "--rounds", str(args.rounds),
        "--seed", str(args.seed),
        "--threads", str(threads),
        "--quiet",
    ]


def summary_of(stdout):
    return json.loads(stdout)["summary"]


def wait_for_checkpoint(ckpt_dir, proc, timeout=600.0):
    """Blocks until the first checkpoint file lands (or the process exits)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.isdir(ckpt_dir) and any(
                name.endswith(".ckpt") for name in os.listdir(ckpt_dir)):
            return True
        if proc.poll() is not None:
            return False
        time.sleep(0.05)
    return False


def latest_checkpoint(ckpt_dir, rounds):
    """The newest surviving checkpoint with work left to do (a resume from
    the final-round checkpoint would write no further checkpoints, which
    would defeat the snapshot.writes assertion below)."""
    names = sorted(n for n in os.listdir(ckpt_dir) if n.endswith(".ckpt"))
    mid = [n for n in names if int(n[len("checkpoint-"):-len(".ckpt")]) < rounds]
    if not mid:
        sys.exit(f"FAIL: no mid-run checkpoint survived in {ckpt_dir} ({names})")
    return os.path.join(ckpt_dir, mid[-1])


def check_threads(args, work, threads, reference_jsonl, reference_summary):
    print(f"--- threads {threads} ---")
    ckpt_dir = os.path.join(work, f"ckpt-t{threads}")
    crash_jsonl = os.path.join(work, f"crash-t{threads}.jsonl")
    resumed_jsonl = os.path.join(work, f"resumed-t{threads}.jsonl")

    # Crash run: SIGKILL after the first checkpoint plus a random delay.
    cmd = base_cmd(args, threads) + [
        "--checkpoint-dir", ckpt_dir, "--checkpoint-every", "1",
        "--jsonl", crash_jsonl,
    ]
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    if not wait_for_checkpoint(ckpt_dir, proc):
        sys.exit("FAIL: run exited before writing any checkpoint")
    time.sleep(random.uniform(0.0, args.kill_window))
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        print("killed mid-flight")
    else:
        print("run finished before the kill fired; resuming from a mid-run checkpoint anyway")

    # Resume from the last surviving mid-run checkpoint and compare.
    resume = run_cmd([
        args.binary, "run", "--resume", latest_checkpoint(ckpt_dir, args.rounds),
        "--threads", str(threads), "--jsonl", resumed_jsonl, "--quiet",
    ])
    if normalize(resumed_jsonl) != normalize(reference_jsonl):
        sys.exit(f"FAIL: resumed JSONL differs from the uninterrupted run "
                 f"({resumed_jsonl} vs {reference_jsonl})")
    summary = summary_of(resume.stdout)
    for key in ("final_accuracy", "dag_size"):
        if summary[key] != reference_summary[key]:
            sys.exit(f"FAIL: resumed {key} {summary[key]} != {reference_summary[key]}")
    for key in ("anchors", "deltas", "delta_ratio"):
        if summary["store"][key] != reference_summary["store"][key]:
            sys.exit(f"FAIL: resumed store.{key} {summary['store'][key]} "
                     f"!= {reference_summary['store'][key]}")
    counters = summary.get("obs", {}).get("counters", {})
    for counter in ("snapshot.writes", "snapshot.bytes"):
        if counters.get(counter, 0) <= 0:
            sys.exit(f"FAIL: {counter} missing from the resumed run's summary.obs")
    print(f"resume OK: JSONL bit-identical, final_accuracy {summary['final_accuracy']}, "
          f"snapshot.writes {counters['snapshot.writes']}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--binary", default="build/specdag")
    parser.add_argument("--scenario", default="scale-2k")
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--threads", default="1,4")
    parser.add_argument("--kill-window", type=float, default=2.0,
                        help="max random delay (s) after the first checkpoint before SIGKILL")
    parser.add_argument("--overhead-factor", type=float, default=1.05)
    parser.add_argument("--overhead-cushion", type=float, default=0.5,
                        help="constant seconds added to the overhead bound (scheduler noise)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions per variant (the median is compared)")
    args = parser.parse_args()
    random.seed(args.seed)

    work = tempfile.mkdtemp(prefix="specdag-crash-smoke-")
    try:
        # Baseline: no checkpoints, for the overhead bound. Median of several
        # reps — single-shot wall time on a shared CI box is far too noisy to
        # gate a 5% bound on (the first run after a build also pays one-time
        # cold-cache costs that have nothing to do with checkpointing).
        plain_times = []
        for _ in range(args.reps):
            t0 = time.monotonic()
            run_cmd(base_cmd(args, 0))
            plain_times.append(time.monotonic() - t0)
        plain_seconds = statistics.median(plain_times)

        # Reference: the uninterrupted checkpointed run every thread-count
        # variant is compared against (results are thread-count invariant).
        ref_jsonl = os.path.join(work, "reference.jsonl")
        ref_ckpts = os.path.join(work, "ckpt-reference")
        checkpointed_times = []
        reference = None
        for _ in range(args.reps):
            shutil.rmtree(ref_ckpts, ignore_errors=True)
            t0 = time.monotonic()
            reference = run_cmd(base_cmd(args, 0) + [
                "--checkpoint-dir", ref_ckpts, "--checkpoint-every", "1",
                "--jsonl", ref_jsonl,
            ])
            checkpointed_times.append(time.monotonic() - t0)
        checkpointed_seconds = statistics.median(checkpointed_times)
        reference_summary = summary_of(reference.stdout)
        counters = reference_summary.get("obs", {}).get("counters", {})
        for counter in ("snapshot.writes", "snapshot.bytes"):
            if counters.get(counter, 0) <= 0:
                sys.exit(f"FAIL: {counter} missing from summary.obs")
        if counters["snapshot.writes"] != args.rounds:
            sys.exit(f"FAIL: expected {args.rounds} checkpoint writes, "
                     f"got {counters['snapshot.writes']}")

        bound = plain_seconds * args.overhead_factor + args.overhead_cushion
        print(f"wall (median of {args.reps}): plain {plain_seconds:.2f}s "
              f"{[round(t, 2) for t in plain_times]}, "
              f"checkpointed {checkpointed_seconds:.2f}s "
              f"{[round(t, 2) for t in checkpointed_times]} (bound {bound:.2f}s)")
        if checkpointed_seconds > bound:
            sys.exit(f"FAIL: checkpointing every round costs too much "
                     f"({checkpointed_seconds:.2f}s > {bound:.2f}s)")

        for threads in (int(t) for t in args.threads.split(",")):
            check_threads(args, work, threads, ref_jsonl, reference_summary)
        print("PASS: crash/resume smoke")
    finally:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    main()
