// specdag — the scenario-engine command-line front end.
//
//   specdag list                     show the built-in scenario registry
//   specdag show <name>              print a built-in spec as JSON
//   specdag run <name|spec.json>     run one scenario
//   specdag sweep <grid.json>        run a parameter grid in parallel
//
// `run` options:
//   --rounds N     override the spec's round count / async horizon
//   --seed N       override the spec's seed
//   --series       include the per-round series in the JSON output
//   --csv PATH     also write the series as CSV
//   --quiet        suppress the progress lines
// `sweep` options:
//   --out PATH     override the grid's JSONL output path
//   --threads N    override the grid's worker count
//   --dry-run      print the expanded grid without running it
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"

namespace {

using namespace specdag;

int usage(std::ostream& out, int code) {
  out << "usage: specdag <command> [options]\n"
         "\n"
         "commands:\n"
         "  list                    show the built-in scenario registry\n"
         "  show <name>             print a built-in spec as JSON\n"
         "  run <name|spec.json>    run one scenario (--rounds N --seed N\n"
         "                          --series --csv PATH --quiet)\n"
         "  sweep <grid.json>       run a parameter grid (--out PATH\n"
         "                          --threads N --dry-run)\n";
  return code;
}

int cmd_list() {
  std::cout << "built-in scenarios:\n";
  for (const scenario::ScenarioSpec& spec : scenario::builtin_scenarios()) {
    std::string tags = scenario::to_string(spec.simulator);
    if (spec.dynamics.churn.enabled()) tags += ", churn";
    if (spec.dynamics.stragglers.enabled()) tags += ", stragglers";
    if (spec.dynamics.partition.enabled()) tags += ", partition";
    if (spec.visibility_delay_rounds > 0) tags += ", delayed-visibility";
    const std::size_t pad = spec.name.size() < 18 ? 18 - spec.name.size() : 1;
    std::cout << "  " << spec.name << std::string(pad, ' ') << "[" << tags << "] "
              << spec.description << "\n";
  }
  std::cout << "\nrun one with: specdag run <name>  (or pass a JSON spec file)\n";
  return 0;
}

int cmd_show(const std::string& name) {
  std::cout << scenario::spec_to_json(scenario::get_scenario(name)).dump(2) << "\n";
  return 0;
}

scenario::ScenarioSpec resolve_spec(const std::string& name_or_path) {
  if (const scenario::ScenarioSpec* builtin = scenario::find_scenario(name_or_path)) {
    return *builtin;
  }
  if (!std::filesystem::exists(name_or_path)) {
    // get_scenario throws with the list of valid names.
    return scenario::get_scenario(name_or_path);
  }
  return scenario::spec_from_json(scenario::Json::parse_file(name_or_path));
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "run: missing scenario name or spec file\n";
    return 2;
  }
  scenario::ScenarioSpec spec = resolve_spec(args[0]);
  bool include_series = false;
  bool quiet = false;
  std::string csv_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "run: missing value for " << flag << "\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (flag == "--rounds") {
      spec.rounds = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--seed") {
      spec.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--series") {
      include_series = true;
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "run: unknown flag " << flag << "\n";
      return 2;
    }
  }
  spec.validate();

  if (!quiet) {
    std::cerr << "running \"" << spec.name << "\" (" << scenario::to_string(spec.simulator)
              << ", " << spec.rounds << " rounds, seed " << spec.seed << ")...\n";
  }
  const scenario::ScenarioResult result = scenario::run_scenario(spec);
  if (!csv_path.empty()) {
    const std::filesystem::path path(csv_path);
    if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
    scenario::write_series_csv(result, csv_path);
    if (!quiet) std::cerr << "series written to " << csv_path << "\n";
  }
  std::cout << scenario::result_to_json(result, include_series).dump(2) << "\n";
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "sweep: missing grid file\n";
    return 2;
  }
  scenario::SweepSpec sweep = scenario::sweep_from_json(scenario::Json::parse_file(args[0]));
  bool dry_run = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "sweep: missing value for " << flag << "\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (flag == "--out") {
      sweep.out_path = next();
    } else if (flag == "--threads") {
      sweep.threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--dry-run") {
      dry_run = true;
    } else {
      std::cerr << "sweep: unknown flag " << flag << "\n";
      return 2;
    }
  }

  if (dry_run) {
    for (const auto& [params, seed] : scenario::expand_grid(sweep)) {
      std::cout << "params=" << params.dump() << " seed=" << seed << "\n";
    }
    return 0;
  }

  std::cerr << "sweep: " << sweep.num_runs() << " runs -> " << sweep.out_path << "\n";
  const std::vector<scenario::SweepRun> runs = scenario::run_sweep(sweep, &std::cerr);
  std::cerr << "sweep complete: " << runs.size() << " runs written to " << sweep.out_path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "list") return cmd_list();
    if (command == "show") {
      if (args.empty()) {
        std::cerr << "show: missing scenario name\n";
        return 2;
      }
      return cmd_show(args[0]);
    }
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "--help" || command == "-h" || command == "help") {
      return usage(std::cout, 0);
    }
    std::cerr << "unknown command \"" << command << "\"\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& error) {
    std::cerr << "specdag: " << error.what() << "\n";
    return 1;
  }
}
