// specdag — the scenario-engine command-line front end.
//
//   specdag list                     show the built-in scenario registry
//   specdag show <name>              print a built-in spec as JSON
//   specdag run <name|spec.json>     run one scenario
//   specdag run --resume <ckpt>      continue a checkpointed run
//   specdag replay <ckpt> --rounds A..B   re-execute a round window
//   specdag export <name|spec.json>  run a scenario and export its DAG
//   specdag sweep <grid.json>        run a parameter grid in parallel
//
// `run` options:
//   --rounds N     override the spec's round count / async horizon
//   --seed N       override the spec's seed
//   --clients N    override the spec's client count (resizable presets)
//   --threads N    prepare-phase workers (0 = hardware, 1 = serial);
//                  results are bit-identical across values
//   --delta on|off override the payload store's delta encoding
//   --sync-encode  encode deltas inline on the commit path instead of the
//                  background pipeline (results are bit-identical; this is
//                  the attribution/debug switch for store.async_encode)
//   --no-batch-exec  disable the fused multi-client executor (train.batch=0)
//                  and train/evaluate every client through the scalar
//                  per-model path (results are bit-identical; this is the
//                  perf-comparison oracle switch)
//   --algorithm A  override the algorithm (dag|fedavg|fedprox|gossip)
//   --attack SPEC  replace the spec's adversary schedule: none,
//                  random_weights[=RATE], label_flip[=FRACTION]. Each
//                  attack starts mid-run (at half the rounds); repeat the
//                  flag to combine kinds
//   --trace PATH   write a Chrome trace-event / Perfetto-compatible trace
//                  of the run (open it in ui.perfetto.dev)
//   --obs on|off   toggle the metrics registry (summary.obs); on by default
//   --metrics-out PATH  export the run's metric totals as Prometheus text
//                  exposition (scrape-ready .prom file)
//   --checkpoint-dir D    write checkpoints under D (enables checkpointing
//                  together with --checkpoint-every)
//   --checkpoint-every N  checkpoint every N completed rounds/units
//   --checkpoint-keep N   keep only the N newest checkpoints (0 = all)
//   --series       include the per-round series in the JSON output
//   --csv PATH     also write the series as CSV
//   --jsonl PATH   stream the series as JSONL (one line per round)
//   --quiet        suppress the progress lines (log level -> warn)
// `run --resume <ckpt>` continues from a checkpoint file; the spec comes
//   from the checkpoint, so only --threads (bit-identical by construction),
//   --series, --csv, --jsonl, and --quiet are accepted.
// `replay <ckpt> --rounds A..B` re-executes rounds A..B (1-based, inclusive)
//   deterministically from a checkpoint covering rounds < A and streams the
//   window as JSONL (stdout, or --jsonl PATH); --threads/--quiet as above.
// `export` options: --rounds/--seed/--clients/--delta/--quiet as above, plus
//   --dot PATH     write the final DAG as Graphviz DOT
//   --jsonl PATH   write the final DAG as a JSONL transaction log
//   (without --dot/--jsonl both default to exports/<name>.{dot,jsonl})
// `sweep` options:
//   --out PATH     override the grid's JSONL output path
//   --threads N    override the grid's worker count
//   --trace-dir D  per-run Perfetto traces: <D>/run-<idx>.trace.json
//   --metrics-out PATH  export the merged sweep aggregate as Prometheus text
//   --dry-run      print the expanded grid without running it
//   --resume       reuse finished runs recorded in <out>.partial from an
//                  interrupted sweep and execute only the rest
//
// Global: --log-level debug|info|warn|error|off (any command; the
// SPECDAG_LOG_LEVEL env var sets the same thing, the flag wins).
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"
#include "util/logging.hpp"

namespace {

using namespace specdag;

int usage(std::ostream& out, int code) {
  out << "usage: specdag <command> [options]\n"
         "\n"
         "commands:\n"
         "  list                    show the built-in scenario registry\n"
         "  show <name>             print a built-in spec as JSON\n"
         "  run <name|spec.json>    run one scenario (--rounds N --seed N\n"
         "                          --clients N --threads N --delta on|off\n"
         "                          --sync-encode --no-batch-exec\n"
         "                          --algorithm dag|fedavg|fedprox|gossip\n"
         "                          --attack none|random_weights[=RATE]|\n"
         "                          label_flip[=FRACTION]\n"
         "                          --trace PATH --obs on|off\n"
         "                          --metrics-out PATH\n"
         "                          --checkpoint-dir DIR\n"
         "                          --checkpoint-every N\n"
         "                          --checkpoint-keep N --series\n"
         "                          --csv PATH --jsonl PATH --quiet)\n"
         "  run --resume <ckpt>     continue a checkpointed run (--threads N\n"
         "                          --series --csv PATH --jsonl PATH --quiet)\n"
         "  replay <ckpt> --rounds A..B\n"
         "                          re-execute rounds A..B from a checkpoint\n"
         "                          (--jsonl PATH --threads N --quiet)\n"
         "  export <name|spec.json> run a scenario and export its DAG\n"
         "                          (--dot PATH --jsonl PATH --rounds N\n"
         "                          --seed N --clients N --delta on|off\n"
         "                          --sync-encode --no-batch-exec --quiet)\n"
         "  sweep <grid.json>       run a parameter grid (--out PATH\n"
         "                          --threads N --trace-dir DIR\n"
         "                          --metrics-out PATH --dry-run --resume)\n"
         "\n"
         "global options:\n"
         "  --log-level LEVEL       debug|info|warn|error|off (default info;\n"
         "                          SPECDAG_LOG_LEVEL env var also accepted,\n"
         "                          the flag wins)\n";
  return code;
}

int cmd_list() {
  std::cout << "built-in scenarios:\n";
  for (const scenario::ScenarioSpec& spec : scenario::builtin_scenarios()) {
    std::string tags = scenario::to_string(spec.simulator);
    if (spec.algorithm != scenario::AlgorithmKind::kDag) {
      tags += ", " + scenario::to_string(spec.algorithm);
    }
    if (spec.dynamics.churn.enabled()) tags += ", churn";
    if (spec.dynamics.stragglers.enabled()) tags += ", stragglers";
    if (spec.dynamics.partition.enabled()) tags += ", partition";
    if (spec.visibility_delay_rounds > 0) tags += ", delayed-visibility";
    if (spec.attacks.random_weights.enabled()) tags += ", random-weights";
    if (spec.attacks.label_flip.enabled()) tags += ", label-flip";
    const std::size_t pad = spec.name.size() < 26 ? 26 - spec.name.size() : 1;
    std::cout << "  " << spec.name << std::string(pad, ' ') << "[" << tags << "] "
              << spec.description << "\n";
  }
  std::cout << "\nrun one with: specdag run <name>  (or pass a JSON spec file)\n";
  return 0;
}

int cmd_show(const std::string& name) {
  std::cout << scenario::spec_to_json(scenario::get_scenario(name)).dump(2) << "\n";
  return 0;
}

scenario::ScenarioSpec resolve_spec(const std::string& name_or_path) {
  if (const scenario::ScenarioSpec* builtin = scenario::find_scenario(name_or_path)) {
    return *builtin;
  }
  if (!std::filesystem::exists(name_or_path)) {
    // get_scenario throws with the list of valid names.
    return scenario::get_scenario(name_or_path);
  }
  return scenario::spec_from_json(scenario::Json::parse_file(name_or_path));
}

// Applies the collected --attack overrides. Deferred until every flag is
// parsed so the mid-run default start (half the — possibly overridden —
// rounds) does not depend on flag order. The overrides REPLACE the spec's
// adversary schedule: the first flag resets the attacks block, then each
// flag enables its kind with a mid-run start ("none" contributes nothing,
// so it disables unless followed by another kind).
void apply_attack_overrides(const std::vector<std::string>& values,
                            scenario::ScenarioSpec& spec) {
  if (values.empty()) return;
  spec.attacks = scenario::AttackSpec{};
  for (const std::string& value : values) {
    std::string kind = value;
    double amount = -1.0;
    if (const std::size_t eq = value.find('='); eq != std::string::npos) {
      kind = value.substr(0, eq);
      const char* amount_text = value.c_str() + eq + 1;
      char* end = nullptr;
      amount = std::strtod(amount_text, &end);
      if (end == amount_text || *end != '\0' || amount < 0.0) {
        std::cerr << "--attack: \"" << amount_text << "\" is not a valid rate/fraction\n";
        std::exit(2);
      }
    }
    if (kind == "none") {
      spec.attacks = scenario::AttackSpec{};
    } else if (kind == "random_weights") {
      spec.attacks.random_weights.rate = amount >= 0.0 ? amount : 1.0;
      spec.attacks.random_weights.start_round = spec.rounds / 2;
    } else if (kind == "label_flip") {
      spec.attacks.label_flip.fraction = amount >= 0.0 ? amount : 0.2;
      spec.attacks.label_flip.start_round = spec.rounds / 2;
      if (spec.attacks.metrics_every == 0) spec.attacks.metrics_every = 1;
    } else {
      std::cerr << "--attack expects none, random_weights[=RATE], or label_flip[=FRACTION]\n";
      std::exit(2);
    }
  }
}

// Spec overrides shared by `run` and `export`: --rounds, --seed, --clients,
// --threads, --delta, --sync-encode, --no-batch-exec, --algorithm, --attack,
// --trace, --obs, --metrics-out.
// Returns true when `flag` was consumed;
// `next` yields the flag's value (exiting with usage error when missing).
// --attack values are only collected here; the caller applies them after
// the whole command line is parsed.
bool apply_spec_override(const std::string& flag,
                         const std::function<const std::string&()>& next,
                         scenario::ScenarioSpec& spec,
                         std::vector<std::string>& attack_overrides) {
  if (flag == "--rounds") {
    spec.rounds = std::strtoull(next().c_str(), nullptr, 10);
  } else if (flag == "--seed") {
    spec.seed = std::strtoull(next().c_str(), nullptr, 10);
  } else if (flag == "--clients") {
    spec.num_clients = std::strtoull(next().c_str(), nullptr, 10);
  } else if (flag == "--threads") {
    spec.threads = std::strtoull(next().c_str(), nullptr, 10);
  } else if (flag == "--algorithm") {
    spec.algorithm = scenario::algorithm_from_string(next());
  } else if (flag == "--attack") {
    attack_overrides.push_back(next());
  } else if (flag == "--delta") {
    const std::string& value = next();
    if (value == "on" || value == "true" || value == "1") {
      spec.store.delta = true;
    } else if (value == "off" || value == "false" || value == "0") {
      spec.store.delta = false;
    } else {
      std::cerr << "--delta expects on|off\n";
      std::exit(2);
    }
  } else if (flag == "--sync-encode") {
    spec.store.async_encode = false;
  } else if (flag == "--no-batch-exec") {
    spec.client.train.batch = 0;
  } else if (flag == "--trace") {
    spec.obs.trace = next();
  } else if (flag == "--metrics-out") {
    spec.obs.metrics_out = next();
  } else if (flag == "--checkpoint-dir") {
    spec.checkpoint.dir = next();
    if (spec.checkpoint.every_n_rounds == 0) spec.checkpoint.every_n_rounds = 1;
  } else if (flag == "--checkpoint-every") {
    spec.checkpoint.every_n_rounds = std::strtoull(next().c_str(), nullptr, 10);
  } else if (flag == "--checkpoint-keep") {
    spec.checkpoint.keep_last = std::strtoull(next().c_str(), nullptr, 10);
  } else if (flag == "--obs") {
    const std::string& value = next();
    if (value == "on" || value == "true" || value == "1") {
      spec.obs.metrics = true;
    } else if (value == "off" || value == "false" || value == "0") {
      spec.obs.metrics = false;
    } else {
      std::cerr << "--obs expects on|off\n";
      std::exit(2);
    }
  } else {
    return false;
  }
  return true;
}

// Builds the standard missing-value guard for one option-parsing loop.
std::function<const std::string&()> value_getter(const std::vector<std::string>& args,
                                                 std::size_t& i, const char* command) {
  return [&args, &i, command]() -> const std::string& {
    if (i + 1 >= args.size()) {
      std::cerr << command << ": missing value for " << args[i] << "\n";
      std::exit(2);
    }
    return args[++i];
  };
}

// Shared tail of run / run --resume: side outputs + summary JSON on stdout.
int emit_run_result(const scenario::ScenarioResult& result, bool include_series,
                    const std::string& csv_path, const std::string& jsonl_path) {
  const auto ensure_parent = [](const std::string& path_str) {
    const std::filesystem::path path(path_str);
    if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  };
  if (!csv_path.empty()) {
    ensure_parent(csv_path);
    scenario::write_series_csv(result, csv_path);
    SPECDAG_LOG(Info) << "series written to " << csv_path;
  }
  if (!jsonl_path.empty()) {
    ensure_parent(jsonl_path);
    scenario::write_series_jsonl(result, jsonl_path);
    SPECDAG_LOG(Info) << "series written to " << jsonl_path;
  }
  std::cout << scenario::result_to_json(result, include_series).dump(2) << "\n";
  return 0;
}

// `run --resume <ckpt>`: everything semantic comes from the spec embedded in
// the checkpoint, so only output flags and --threads are accepted.
int cmd_run_resume(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::cerr << "run: --resume needs a checkpoint file\n";
    return 2;
  }
  const std::string checkpoint = args[1];
  scenario::ResumeOverrides overrides;
  bool include_series = false;
  std::string csv_path;
  std::string jsonl_path;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = value_getter(args, i, "run");
    if (flag == "--threads") {
      overrides.has_threads = true;
      overrides.threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--series") {
      include_series = true;
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--jsonl") {
      jsonl_path = next();
    } else if (flag == "--quiet") {
      set_log_level(LogLevel::kWarn);
    } else {
      std::cerr << "run: flag " << flag
                << " is not allowed with --resume (the checkpoint fixes the spec)\n";
      return 2;
    }
  }
  SPECDAG_LOG(Info) << "resuming from " << checkpoint << "...";
  const scenario::ScenarioResult result = scenario::resume_scenario(checkpoint, overrides);
  return emit_run_result(result, include_series, csv_path, jsonl_path);
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "run: missing scenario name or spec file\n";
    return 2;
  }
  if (args[0] == "--resume") return cmd_run_resume(args);
  scenario::ScenarioSpec spec = resolve_spec(args[0]);
  bool include_series = false;
  std::string csv_path;
  std::string jsonl_path;
  std::vector<std::string> attack_overrides;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = value_getter(args, i, "run");
    if (apply_spec_override(flag, next, spec, attack_overrides)) {
    } else if (flag == "--series") {
      include_series = true;
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--jsonl") {
      jsonl_path = next();
    } else if (flag == "--quiet") {
      set_log_level(LogLevel::kWarn);
    } else {
      std::cerr << "run: unknown flag " << flag << "\n";
      return 2;
    }
  }
  apply_attack_overrides(attack_overrides, spec);
  spec.validate();

  SPECDAG_LOG(Info) << "running \"" << spec.name << "\" ("
                    << scenario::to_string(spec.simulator) << ", "
                    << scenario::to_string(spec.algorithm) << ", " << spec.rounds
                    << " rounds, seed " << spec.seed << ")...";
  const scenario::ScenarioResult result = scenario::run_scenario(spec);
  return emit_run_result(result, include_series, csv_path, jsonl_path);
}

// `replay <ckpt> --rounds A..B`: re-execute a round window deterministically
// and stream it as JSONL (stdout by default).
int cmd_replay(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "replay: missing checkpoint file\n";
    return 2;
  }
  const std::string checkpoint = args[0];
  scenario::ResumeOverrides overrides;
  std::string rounds_window;
  std::string jsonl_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = value_getter(args, i, "replay");
    if (flag == "--rounds") {
      rounds_window = next();
    } else if (flag == "--threads") {
      overrides.has_threads = true;
      overrides.threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--jsonl") {
      jsonl_path = next();
    } else if (flag == "--quiet") {
      set_log_level(LogLevel::kWarn);
    } else {
      std::cerr << "replay: unknown flag " << flag << "\n";
      return 2;
    }
  }
  const std::size_t dots = rounds_window.find("..");
  if (rounds_window.empty() || dots == std::string::npos) {
    std::cerr << "replay: --rounds A..B is required (1-based, inclusive)\n";
    return 2;
  }
  const std::size_t first = std::strtoull(rounds_window.c_str(), nullptr, 10);
  const std::size_t last = std::strtoull(rounds_window.c_str() + dots + 2, nullptr, 10);
  SPECDAG_LOG(Info) << "replaying rounds " << first << ".." << last << " from " << checkpoint
                    << "...";
  const scenario::ScenarioResult result =
      scenario::replay_scenario(checkpoint, first, last, overrides);
  if (jsonl_path.empty()) {
    scenario::write_series_jsonl(result, std::cout);
  } else {
    const std::filesystem::path path(jsonl_path);
    if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
    scenario::write_series_jsonl(result, jsonl_path);
    SPECDAG_LOG(Info) << "window written to " << jsonl_path;
  }
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "export: missing scenario name or spec file\n";
    return 2;
  }
  scenario::ScenarioSpec spec = resolve_spec(args[0]);
  scenario::RunOptions options;
  std::vector<std::string> attack_overrides;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = value_getter(args, i, "export");
    if (apply_spec_override(flag, next, spec, attack_overrides)) {
    } else if (flag == "--dot") {
      options.export_dot = next();
    } else if (flag == "--jsonl") {
      options.export_jsonl = next();
    } else if (flag == "--quiet") {
      set_log_level(LogLevel::kWarn);
    } else {
      std::cerr << "export: unknown flag " << flag << "\n";
      return 2;
    }
  }
  apply_attack_overrides(attack_overrides, spec);
  spec.validate();
  if (options.export_dot.empty() && options.export_jsonl.empty()) {
    options.export_dot = "exports/" + spec.name + ".dot";
    options.export_jsonl = "exports/" + spec.name + ".jsonl";
  }
  for (const std::string& path : {options.export_dot, options.export_jsonl}) {
    if (path.empty()) continue;
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
  }

  SPECDAG_LOG(Info) << "running \"" << spec.name << "\" ("
                    << scenario::to_string(spec.simulator) << ", " << spec.rounds
                    << " rounds, seed " << spec.seed << ") for export...";
  const scenario::ScenarioResult result = scenario::run_scenario(spec, options);
  if (!options.export_dot.empty()) {
    SPECDAG_LOG(Info) << "DAG written to " << options.export_dot;
  }
  if (!options.export_jsonl.empty()) {
    SPECDAG_LOG(Info) << "transaction log written to " << options.export_jsonl;
  }
  std::cout << scenario::result_to_json(result, false).dump(2) << "\n";
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "sweep: missing grid file\n";
    return 2;
  }
  scenario::SweepSpec sweep = scenario::sweep_from_json(scenario::Json::parse_file(args[0]));
  bool dry_run = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "sweep: missing value for " << flag << "\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (flag == "--out") {
      sweep.out_path = next();
    } else if (flag == "--threads") {
      sweep.threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--trace-dir") {
      sweep.trace_dir = next();
    } else if (flag == "--metrics-out") {
      sweep.metrics_out = next();
    } else if (flag == "--dry-run") {
      dry_run = true;
    } else if (flag == "--resume") {
      sweep.resume = true;
    } else {
      std::cerr << "sweep: unknown flag " << flag << "\n";
      return 2;
    }
  }

  if (dry_run) {
    for (const auto& [params, seed] : scenario::expand_grid(sweep)) {
      std::cout << "params=" << params.dump() << " seed=" << seed << "\n";
    }
    return 0;
  }

  SPECDAG_LOG(Info) << "sweep: " << sweep.num_runs() << " runs -> " << sweep.out_path;
  const std::vector<scenario::SweepRun> runs = scenario::run_sweep(sweep, &std::cerr);
  SPECDAG_LOG(Info) << "sweep complete: " << runs.size() << " runs written to "
                    << sweep.out_path;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Level precedence: --log-level flag > SPECDAG_LOG_LEVEL env > info. The
  // CLI default is info (progress lines on) even though the library default
  // is warn; --quiet in run/export drops back to warn.
  set_log_level(LogLevel::kInfo);
  init_log_level_from_env();
  std::vector<std::string> raw(argv + 1, argv + argc);
  for (std::size_t i = 0; i < raw.size();) {
    if (raw[i] == "--log-level") {
      if (i + 1 >= raw.size()) {
        std::cerr << "specdag: missing value for --log-level\n";
        return 2;
      }
      try {
        set_log_level(log_level_from_string(raw[i + 1]));
      } catch (const std::invalid_argument& error) {
        std::cerr << "specdag: " << error.what() << "\n";
        return 2;
      }
      raw.erase(raw.begin() + static_cast<std::ptrdiff_t>(i),
                raw.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    } else {
      ++i;
    }
  }
  if (raw.empty()) return usage(std::cerr, 2);
  const std::string command = raw[0];
  std::vector<std::string> args(raw.begin() + 1, raw.end());
  try {
    if (command == "list") return cmd_list();
    if (command == "show") {
      if (args.empty()) {
        std::cerr << "show: missing scenario name\n";
        return 2;
      }
      return cmd_show(args[0]);
    }
    if (command == "run") return cmd_run(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "export") return cmd_export(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "--help" || command == "-h" || command == "help") {
      return usage(std::cout, 0);
    }
    std::cerr << "unknown command \"" << command << "\"\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& error) {
    std::cerr << "specdag: " << error.what() << "\n";
    return 1;
  }
}
