#include "core/specializing_dag.hpp"

#include <stdexcept>

#include "store/eval_cache_view.hpp"

namespace specdag::core {
namespace {

nn::WeightVector make_genesis_weights(const nn::ModelFactory& factory, std::uint64_t seed) {
  nn::Sequential model = factory();
  Rng rng = Rng(seed).fork(0x6E6E);
  model.init_params(rng);
  return model.get_weights();
}

}  // namespace

SpecializingDag::SpecializingDag(nn::ModelFactory factory, fl::DagClientConfig default_config,
                                 std::uint64_t seed, store::StoreConfig store_config)
    : factory_(std::move(factory)),
      default_config_(default_config),
      root_rng_(seed),
      dag_(make_genesis_weights(factory_, seed), store_config),
      eval_cache_(std::make_shared<store::ShardedEvalCache>(store_config.eval_cache_shards)) {}

int SpecializingDag::register_client(const data::ClientData* client_data) {
  return register_client(client_data, default_config_);
}

int SpecializingDag::register_client(const data::ClientData* client_data,
                                     const fl::DagClientConfig& config) {
  const int handle = static_cast<int>(clients_.size());
  Rng client_rng = root_rng_.fork(0xC0DE0000ULL + static_cast<std::uint64_t>(handle));
  auto cache_view = std::make_shared<store::ClientEvalCacheView>(
      eval_cache_, client_data != nullptr ? client_data->client_id : handle);
  clients_.push_back(std::make_unique<fl::DagClient>(client_data, factory_, config, client_rng,
                                                     std::move(cache_view)));
  return handle;
}

fl::DagClient& SpecializingDag::client(int handle) {
  if (handle < 0 || static_cast<std::size_t>(handle) >= clients_.size()) {
    throw std::out_of_range("SpecializingDag: unknown client handle");
  }
  return *clients_[static_cast<std::size_t>(handle)];
}

fl::DagRoundResult SpecializingDag::client_step(int handle, std::size_t round) {
  return client(handle).run_round(dag_, round);
}

fl::DagRoundResult SpecializingDag::prepare(int handle) { return client(handle).prepare_round(dag_); }

dag::TxId SpecializingDag::commit(int handle, const fl::DagRoundResult& result,
                                  std::size_t round) {
  return client(handle).commit_round(dag_, result, round);
}

dag::TxId SpecializingDag::consensus_reference(int handle) {
  return client(handle).consensus_reference(dag_);
}

nn::WeightVector SpecializingDag::consensus_weights(int handle) {
  return *dag_.weights(consensus_reference(handle));
}

void SpecializingDag::invalidate_client_cache(int handle) {
  client(handle).invalidate_cache();
}

void SpecializingDag::set_visibility_mask(int handle, tipsel::VisibilityMask mask) {
  client(handle).set_visibility_mask(std::move(mask));
}

}  // namespace specdag::core
