#include "core/specializing_dag.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/eval_cache_view.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace specdag::core {
namespace {

nn::WeightVector make_genesis_weights(const nn::ModelFactory& factory, std::uint64_t seed) {
  nn::Sequential model = factory();
  Rng rng = Rng(seed).fork(0x6E6E);
  model.init_params(rng);
  return model.get_weights();
}

// A step can join a fused group only if its client trains exactly like the
// network default (fused lanes share one epoch/batch schedule and lr).
bool same_train_config(const fl::TrainConfig& a, const fl::TrainConfig& b) {
  return a.local_epochs == b.local_epochs && a.local_batches == b.local_batches &&
         a.batch_size == b.batch_size && a.learning_rate == b.learning_rate &&
         a.freeze_prefix_params == b.freeze_prefix_params;
}

}  // namespace

SpecializingDag::SpecializingDag(nn::ModelFactory factory, fl::DagClientConfig default_config,
                                 std::uint64_t seed, store::StoreConfig store_config)
    : factory_(std::move(factory)),
      default_config_(default_config),
      root_rng_(seed),
      dag_(make_genesis_weights(factory_, seed), store_config),
      eval_cache_(std::make_shared<store::ShardedEvalCache>(store_config.eval_cache_shards)),
      arch_supported_(nn::BatchExecutor::architecture_supported(factory_)) {}

int SpecializingDag::register_client(const data::ClientData* client_data) {
  return register_client(client_data, default_config_);
}

int SpecializingDag::register_client(const data::ClientData* client_data,
                                     const fl::DagClientConfig& config) {
  const int handle = static_cast<int>(clients_.size());
  Rng client_rng = root_rng_.fork(0xC0DE0000ULL + static_cast<std::uint64_t>(handle));
  auto cache_view = std::make_shared<store::ClientEvalCacheView>(
      eval_cache_, client_data != nullptr ? client_data->client_id : handle);
  clients_.push_back(std::make_unique<fl::DagClient>(client_data, factory_, config, client_rng,
                                                     std::move(cache_view)));
  return handle;
}

fl::DagClient& SpecializingDag::client(int handle) {
  if (handle < 0 || static_cast<std::size_t>(handle) >= clients_.size()) {
    throw std::out_of_range("SpecializingDag: unknown client handle");
  }
  return *clients_[static_cast<std::size_t>(handle)];
}

fl::DagRoundResult SpecializingDag::client_step(int handle, std::size_t round) {
  return client(handle).run_round(dag_, round);
}

fl::DagRoundResult SpecializingDag::prepare(int handle) { return client(handle).prepare_round(dag_); }

dag::TxId SpecializingDag::commit(int handle, const fl::DagRoundResult& result,
                                  std::size_t round) {
  return client(handle).commit_round(dag_, result, round);
}

bool SpecializingDag::batch_exec_enabled() const {
  return arch_supported_ && default_config_.train.batch > 0;
}

std::unique_ptr<nn::BatchExecutor> SpecializingDag::acquire_executor() {
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    if (!exec_pool_.empty()) {
      std::unique_ptr<nn::BatchExecutor> exec = std::move(exec_pool_.back());
      exec_pool_.pop_back();
      return exec;
    }
  }
  return std::make_unique<nn::BatchExecutor>(factory_);
}

void SpecializingDag::release_executor(std::unique_ptr<nn::BatchExecutor> exec) {
  std::lock_guard<std::mutex> lock(exec_mutex_);
  exec_pool_.push_back(std::move(exec));
}

void SpecializingDag::prepare_batch(const std::vector<std::vector<int>>& chains,
                                    std::vector<std::vector<fl::DagRoundResult>>& results,
                                    ThreadPool* pool) {
  results.assign(chains.size(), {});
  for (std::size_t i = 0; i < chains.size(); ++i) results[i].resize(chains[i].size());

  // Per-step context surviving phase A for the fused finish.
  struct StepCtx {
    nn::WeightVector averaged;
    dag::WeightsPtr reference_weights;
    Rng train_rng{0};
    bool fused = false;
  };
  std::vector<std::vector<StepCtx>> ctxs(chains.size());
  for (std::size_t i = 0; i < chains.size(); ++i) ctxs[i].resize(chains[i].size());

  const bool fuse = batch_exec_enabled();

  // Phase A — walks. Chains are independent (distinct or sequential client
  // state); steps within a chain run in event order, exactly like the scalar
  // path. Steps that cannot fuse (deviating train config, or fusing
  // disabled) complete their whole round here instead.
  const auto walk_chain = [&](std::size_t i) {
    for (std::size_t j = 0; j < chains[i].size(); ++j) {
      fl::DagClient& c = client(chains[i][j]);
      if (fuse && same_train_config(c.config().train, default_config_.train)) {
        fl::WalkPhase phase = c.prepare_walks(dag_);
        results[i][j] = std::move(phase.result);
        StepCtx& ctx = ctxs[i][j];
        ctx.averaged = std::move(phase.averaged);
        ctx.reference_weights = std::move(phase.reference_weights);
        ctx.train_rng = phase.train_rng;
        ctx.fused = true;
      } else {
        obs::ScopedSpan span(
            "prepare", {{"client", static_cast<std::uint64_t>(c.client().client_id)}});
        results[i][j] = c.prepare_round(dag_);
      }
    }
  };
  if (pool != nullptr && chains.size() > 1) {
    pool->parallel_for(chains.size(), walk_chain);
  } else {
    for (std::size_t i = 0; i < chains.size(); ++i) walk_chain(i);
  }

  // Fused steps in deterministic chain-major order — the grouping depends
  // only on the chain layout, never on thread scheduling.
  std::vector<std::pair<std::size_t, std::size_t>> fused;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    for (std::size_t j = 0; j < chains[i].size(); ++j) {
      if (ctxs[i][j].fused) fused.emplace_back(i, j);
    }
  }
  if (fused.empty()) return;

  static obs::Counter& batches_counter = obs::Registry::counter("train.batches");
  static obs::Counter& lanes_counter = obs::Registry::counter("train.fused_lanes");
  static obs::Counter& eval_models_counter = obs::Registry::counter("eval.batched_models");

  // Phases B/C — fused train + eval in groups of at most train.batch lanes.
  // Groups pipeline across pool workers: one group evaluates while the next
  // trains. Wall time of a group is attributed evenly to its lanes so the
  // perf buckets still sum to the measured total.
  const std::size_t max_lanes = std::max<std::size_t>(1, default_config_.train.batch);
  const std::size_t num_groups = (fused.size() + max_lanes - 1) / max_lanes;
  const auto run_group = [&](std::size_t g) {
    const std::size_t begin = g * max_lanes;
    const std::size_t end = std::min(begin + max_lanes, fused.size());
    const std::size_t nlanes = end - begin;
    std::unique_ptr<nn::BatchExecutor> exec = acquire_executor();
    std::vector<fl::BatchTrainLane> lanes(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l) {
      const auto [i, j] = fused[begin + l];
      lanes[l].client = &client(chains[i][j]).client();
      lanes[l].start = &ctxs[i][j].averaged;
      lanes[l].rng = &ctxs[i][j].train_rng;
    }
    Timer train_timer;
    {
      obs::ScopedSpan span("exec.train", {{"lanes", static_cast<std::uint64_t>(nlanes)}});
      fl::train_local_batched(*exec, lanes, default_config_.train);
    }
    const double train_each = train_timer.elapsed_seconds() / static_cast<double>(nlanes);
    batches_counter.add();
    lanes_counter.add(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l) {
      const auto [i, j] = fused[begin + l];
      fl::DagRoundResult& r = results[i][j];
      r.train_loss = lanes[l].train_loss;
      r.train_seconds = train_each;
      r.trained_weights =
          std::make_shared<const nn::WeightVector>(std::move(lanes[l].trained));
      // The executor copied the start weights in; the vector is free to ride
      // along as the commit's delta-encode base, like the scalar path's.
      r.averaged_base =
          std::make_shared<const nn::WeightVector>(std::move(ctxs[i][j].averaged));
    }
    for (std::size_t l = 0; l < nlanes; ++l) {
      const auto [i, j] = fused[begin + l];
      fl::DagRoundResult& r = results[i][j];
      Timer eval_timer;
      {
        obs::ScopedSpan span(
            "exec.eval",
            {{"client", static_cast<std::uint64_t>(lanes[l].client->client_id)}});
        const std::vector<const nn::WeightVector*> models = {
            r.trained_weights.get(), ctxs[i][j].reference_weights.get()};
        const std::vector<fl::EvalResult> evals =
            fl::evaluate_models_batched(*exec, models, *lanes[l].client);
        r.trained_eval = evals[0];
        r.reference_eval = evals[1];
        eval_models_counter.add(models.size());
      }
      r.eval_seconds = eval_timer.elapsed_seconds();
    }
    release_executor(std::move(exec));
  };
  if (pool != nullptr && num_groups > 1) {
    pool->parallel_for(num_groups, run_group);
  } else {
    for (std::size_t g = 0; g < num_groups; ++g) run_group(g);
  }
}

dag::TxId SpecializingDag::consensus_reference(int handle) {
  return client(handle).consensus_reference(dag_);
}

nn::WeightVector SpecializingDag::consensus_weights(int handle) {
  return *dag_.weights(consensus_reference(handle));
}

void SpecializingDag::invalidate_client_cache(int handle) {
  client(handle).invalidate_cache();
}

void SpecializingDag::set_visibility_mask(int handle, tipsel::VisibilityMask mask) {
  client(handle).set_visibility_mask(std::move(mask));
}

}  // namespace specdag::core
