// Public facade of the library: a Specializing DAG network.
//
// This is the API a downstream user programs against:
//
//   auto net = specdag::SpecializingDag(factory, config, seed);
//   int me = net.register_client(&my_data);
//   auto result = net.client_step(me, round);   // walk, average, train, publish
//   auto weights = net.consensus_weights(me);   // my personalized consensus model
//
// Internally it owns the transaction DAG (genesis = the initial model) and
// one fl::DagClient per registered participant. The round-based simulator
// (sim::DagSimulator) and the examples are both thin layers over this class.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "dag/dag.hpp"
#include "fl/dag_client.hpp"
#include "nn/batch_executor.hpp"
#include "store/eval_cache.hpp"

namespace specdag {
class ThreadPool;
}

namespace specdag::core {

class SpecializingDag {
 public:
  // The genesis transaction holds freshly initialized weights drawn from
  // `factory` with a deterministic RNG derived from `seed`. `store_config`
  // configures the payload store (delta encoding, LRU) and the shard count
  // of the network-wide evaluation cache.
  SpecializingDag(nn::ModelFactory factory, fl::DagClientConfig default_config,
                  std::uint64_t seed, store::StoreConfig store_config = {});

  // Registers a participant. The pointed-to data must outlive this object.
  // Returns the client handle. Pass a config to override the default (e.g.
  // a malicious client using the random tip selector).
  int register_client(const data::ClientData* client_data);
  int register_client(const data::ClientData* client_data, const fl::DagClientConfig& config);

  std::size_t num_clients() const { return clients_.size(); }

  // One full step for a client: biased walks, averaging, local training,
  // publish-if-better. Thread-safe across distinct handles.
  fl::DagRoundResult client_step(int handle, std::size_t round);

  // Split-phase API for simulators that model transaction visibility:
  // all prepares of a round may run concurrently; commits are serialized.
  fl::DagRoundResult prepare(int handle);
  dag::TxId commit(int handle, const fl::DagRoundResult& result, std::size_t round);

  // True when fused multi-client execution applies: the default train config
  // enables it (train.batch > 0) and the model architecture is supported by
  // nn::BatchExecutor. Clients whose train config deviates from the default
  // fall back to the scalar path individually inside prepare_batch.
  bool batch_exec_enabled() const;

  // Batched counterpart of prepare() over per-client step chains: chains[i]
  // is a sequence of client handles whose steps run in order against the
  // current DAG snapshot (the same handle may repeat within a chain — an
  // async step batch). Walk phases run per chain (parallel across chains on
  // `pool` when given); the train/eval finish is fused across chains into
  // SoA groups of at most `train.batch` lanes, each group pipelining
  // train -> eval on a pool worker. results[i][j] receives chains[i][j]'s
  // round result, bit-identical to calling prepare() in chain order.
  void prepare_batch(const std::vector<std::vector<int>>& chains,
                     std::vector<std::vector<fl::DagRoundResult>>& results, ThreadPool* pool);

  // The client's personalized consensus model: the tip its biased walk
  // converges to.
  dag::TxId consensus_reference(int handle);
  nn::WeightVector consensus_weights(int handle);

  // Must be called for a client whose local data changed (e.g. poisoning).
  void invalidate_client_cache(int handle);

  // Per-client walk visibility (see fl::DagClient::set_visibility_mask).
  void set_visibility_mask(int handle, tipsel::VisibilityMask mask);

  const dag::Dag& dag() const { return dag_; }
  dag::Dag& dag() { return dag_; }
  fl::DagClient& client(int handle);

  // The sharded evaluation cache shared by every registered client.
  const std::shared_ptr<store::ShardedEvalCache>& eval_cache() const { return eval_cache_; }

 private:
  // Reusable fused executors (SoA buffers are expensive to regrow): group
  // tasks check one out for the duration of a train+eval pass.
  std::unique_ptr<nn::BatchExecutor> acquire_executor();
  void release_executor(std::unique_ptr<nn::BatchExecutor> exec);

  nn::ModelFactory factory_;
  fl::DagClientConfig default_config_;
  Rng root_rng_;
  dag::Dag dag_;
  std::shared_ptr<store::ShardedEvalCache> eval_cache_;
  std::vector<std::unique_ptr<fl::DagClient>> clients_;
  bool arch_supported_ = false;
  std::mutex exec_mutex_;
  std::vector<std::unique_ptr<nn::BatchExecutor>> exec_pool_;
};

}  // namespace specdag::core
