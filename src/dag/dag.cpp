#include "dag/dag.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <stdexcept>

namespace specdag::dag {

Dag::Dag(nn::WeightVector initial_weights, store::StoreConfig store_config)
    : store_(store_config) {
  Transaction genesis;
  genesis.id = kGenesisTx;
  genesis.payload =
      store_.put(std::make_shared<const nn::WeightVector>(std::move(initial_weights)), {});
  genesis.publisher = -1;
  genesis.round = 0;
  transactions_.push_back(std::move(genesis));
  tips_.insert(kGenesisTx);
  cum_weights_.push_back(1);
}

const Transaction& Dag::tx_locked(TxId id) const {
  if (id >= transactions_.size()) {
    throw std::out_of_range("Dag: unknown transaction id " + std::to_string(id));
  }
  return transactions_[id];
}

TxId Dag::add_transaction(std::vector<TxId> parents, WeightsPtr weights, int publisher,
                          std::size_t round, bool poisoned_publisher,
                          WeightsPtr encode_base) {
  if (parents.empty()) throw std::invalid_argument("Dag::add_transaction: no parents");
  if (!weights) throw std::invalid_argument("Dag::add_transaction: null weights");
  std::vector<TxId> sorted = parents;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Dag::add_transaction: duplicate parents");
  }

  std::unique_lock lock(mutex_);
  for (TxId p : parents) {
    if (p >= transactions_.size()) {
      throw std::invalid_argument("Dag::add_transaction: unknown parent " + std::to_string(p));
    }
  }
  // Intern the payload, delta-encoded against the average of the parents'
  // payloads — the exact base the publisher trained from.
  std::vector<store::PayloadId> bases;
  bases.reserve(parents.size());
  for (TxId p : parents) bases.push_back(transactions_[p].payload);
  const TxId id = transactions_.size();
  Transaction tx;
  tx.id = id;
  tx.parents = parents;
  tx.payload = store_.put(std::move(weights), bases, std::move(encode_base));
  tx.publisher = publisher;
  tx.round = round;
  tx.poisoned_publisher = poisoned_publisher;
  transactions_.push_back(std::move(tx));
  for (TxId p : parents) {
    children_[p].push_back(id);
    tips_.erase(p);
  }
  tips_.insert(id);

  // Incremental weight maintenance: the new transaction is the one and only
  // new descendant of every transaction in its past cone, so each ancestor's
  // cumulative weight grows by exactly one. Parents always have smaller ids
  // than their children, so one descending-id sweep from the highest parent
  // marks the exact cone a BFS would (every in-cone node is marked by an
  // in-cone child before the sweep reaches it) with sequential access
  // instead of frontier pointer-chasing — the cone is nearly the whole DAG
  // once the graph is dense, so the constant factor dominates.
  cum_weights_.push_back(1);
  cone_seen_.assign(transactions_.size(), 0);
  if (!parents.empty()) {
    TxId max_parent = 0;
    for (TxId p : parents) {
      cone_seen_[p] = 1;
      max_parent = std::max(max_parent, p);
    }
    for (TxId cur = max_parent + 1; cur-- > 0;) {
      if (!cone_seen_[cur]) continue;
      ++cum_weights_[cur];
      for (TxId p : transactions_[cur].parents) cone_seen_[p] = 1;
    }
  }
  ++version_;
  return id;
}

std::size_t Dag::size() const {
  std::shared_lock lock(mutex_);
  return transactions_.size();
}

std::uint64_t Dag::version() const {
  std::shared_lock lock(mutex_);
  return version_;
}

Transaction Dag::transaction(TxId id) const {
  std::shared_lock lock(mutex_);
  return tx_locked(id);
}

WeightsPtr Dag::weights(TxId id) const {
  store::PayloadId payload;
  {
    std::shared_lock lock(mutex_);
    payload = tx_locked(id).payload;
  }
  // Materialize outside the DAG lock — the store synchronizes itself.
  return store_.get(payload);
}

store::ContentHash Dag::payload_hash(TxId id) const {
  store::PayloadId payload;
  {
    std::shared_lock lock(mutex_);
    payload = tx_locked(id).payload;
  }
  return store_.hash_of(payload);
}

std::vector<TxId> Dag::parents(TxId id) const {
  std::shared_lock lock(mutex_);
  return tx_locked(id).parents;
}

std::vector<TxId> Dag::children(TxId id) const {
  std::shared_lock lock(mutex_);
  tx_locked(id);  // bounds check
  auto it = children_.find(id);
  return it == children_.end() ? std::vector<TxId>{} : it->second;
}

void Dag::children_into(TxId id, std::vector<TxId>& out) const {
  std::shared_lock lock(mutex_);
  tx_locked(id);  // bounds check
  out.clear();
  auto it = children_.find(id);
  if (it != children_.end()) out.assign(it->second.begin(), it->second.end());
}

int Dag::publisher(TxId id) const {
  std::shared_lock lock(mutex_);
  return tx_locked(id).publisher;
}

std::size_t Dag::round(TxId id) const {
  std::shared_lock lock(mutex_);
  return tx_locked(id).round;
}

bool Dag::is_tip(TxId id) const {
  std::shared_lock lock(mutex_);
  tx_locked(id);
  return tips_.count(id) > 0;
}

std::vector<TxId> Dag::tips() const {
  std::shared_lock lock(mutex_);
  return {tips_.begin(), tips_.end()};
}

std::size_t Dag::cumulative_weight(TxId id) const {
  std::shared_lock lock(mutex_);
  tx_locked(id);
  std::unordered_set<TxId> visited{id};
  std::deque<TxId> frontier{id};
  while (!frontier.empty()) {
    const TxId cur = frontier.front();
    frontier.pop_front();
    auto it = children_.find(cur);
    if (it == children_.end()) continue;
    for (TxId child : it->second) {
      if (visited.insert(child).second) frontier.push_back(child);
    }
  }
  return visited.size();
}

std::vector<std::size_t> Dag::cumulative_weights_all() const {
  std::shared_lock lock(mutex_);
  return cum_weights_;
}

std::uint64_t Dag::cumulative_weights_snapshot(std::vector<std::size_t>& weights) const {
  std::shared_lock lock(mutex_);
  weights.assign(cum_weights_.begin(), cum_weights_.end());
  return version_;
}

std::vector<std::size_t> Dag::cumulative_weights_reference() const {
  std::vector<std::size_t> weights;
  std::vector<std::uint64_t> reach;
  cumulative_weights_reference_into(weights, reach);
  return weights;
}

void Dag::cumulative_weights_reference_into(std::vector<std::size_t>& weights,
                                            std::vector<std::uint64_t>& reach) const {
  std::shared_lock lock(mutex_);
  const std::size_t n = transactions_.size();
  // weights[x] = 1 + |future cone of x|. Future cones are counted exactly
  // with a bit-parallel sweep: each pass tracks, per transaction, which of a
  // chunk of 64 candidate descendants can reach it. Parents always have
  // smaller ids than their children (the DAG is append-only), so a single
  // reverse-insertion-order pass sees every child before its parents.
  weights.assign(n, 1);
  reach.resize(n);
  for (std::size_t chunk = 0; chunk < n; chunk += 64) {
    std::fill(reach.begin(), reach.end(), 0);
    const std::size_t chunk_end = std::min(chunk + 64, n);
    for (std::size_t id = n; id-- > 0;) {
      std::uint64_t mask = reach[id];
      if (id >= chunk && id < chunk_end) mask |= std::uint64_t{1} << (id - chunk);
      if (mask == 0) continue;
      reach[id] = mask;
      for (TxId p : transactions_[id].parents) reach[p] |= mask;
    }
    for (std::size_t id = 0; id < n; ++id) {
      // Descendants only: drop the transaction's own bit before counting.
      std::uint64_t mask = reach[id];
      if (id >= chunk && id < chunk_end) mask &= ~(std::uint64_t{1} << (id - chunk));
      weights[id] += static_cast<std::size_t>(std::popcount(mask));
    }
  }
}

std::vector<std::size_t> Dag::cumulative_weights_all(const std::vector<char>& visible) const {
  std::vector<std::size_t> weights;
  std::vector<std::uint64_t> reach;
  cumulative_weights_all_into(visible, weights, reach);
  return weights;
}

void Dag::cumulative_weights_all_into(const std::vector<char>& visible,
                                      std::vector<std::size_t>& weights,
                                      std::vector<std::uint64_t>& reach) const {
  std::shared_lock lock(mutex_);
  const std::size_t n = transactions_.size();
  const auto is_visible = [&](std::size_t id) { return id < visible.size() && visible[id]; };
  // Same bit-parallel sweep as the reference variant, but reach masks only
  // flow through visible transactions: a descendant counts towards an
  // ancestor only when a chain of visible transactions connects them —
  // exactly the masked walker's BFS view.
  weights.assign(n, 0);
  reach.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    if (is_visible(id)) weights[id] = 1;
  }
  for (std::size_t chunk = 0; chunk < n; chunk += 64) {
    std::fill(reach.begin(), reach.end(), 0);
    const std::size_t chunk_end = std::min(chunk + 64, n);
    for (std::size_t id = n; id-- > 0;) {
      if (!is_visible(id)) {
        reach[id] = 0;  // paths through an invisible transaction are broken
        continue;
      }
      std::uint64_t mask = reach[id];
      if (id >= chunk && id < chunk_end) mask |= std::uint64_t{1} << (id - chunk);
      if (mask == 0) continue;
      reach[id] = mask;
      for (TxId p : transactions_[id].parents) reach[p] |= mask;
    }
    for (std::size_t id = 0; id < n; ++id) {
      if (!is_visible(id)) continue;
      std::uint64_t mask = reach[id];
      if (id >= chunk && id < chunk_end) mask &= ~(std::uint64_t{1} << (id - chunk));
      weights[id] += static_cast<std::size_t>(std::popcount(mask));
    }
  }
}

std::vector<TxId> Dag::past_cone(TxId id) const {
  std::shared_lock lock(mutex_);
  tx_locked(id);
  std::unordered_set<TxId> visited;
  std::deque<TxId> frontier{id};
  std::vector<TxId> cone;
  while (!frontier.empty()) {
    const TxId cur = frontier.front();
    frontier.pop_front();
    for (TxId p : transactions_[cur].parents) {
      if (visited.insert(p).second) {
        cone.push_back(p);
        frontier.push_back(p);
      }
    }
  }
  return cone;
}

std::unordered_map<TxId, std::size_t> Dag::depths_from_tips() const {
  std::shared_lock lock(mutex_);
  std::unordered_map<TxId, std::size_t> depth;
  std::deque<TxId> frontier;
  for (TxId tip : tips_) {
    depth[tip] = 0;
    frontier.push_back(tip);
  }
  // BFS along parent edges assigns each node its minimum distance to a tip.
  while (!frontier.empty()) {
    const TxId cur = frontier.front();
    frontier.pop_front();
    const std::size_t d = depth[cur];
    for (TxId p : transactions_[cur].parents) {
      auto it = depth.find(p);
      if (it == depth.end() || it->second > d + 1) {
        depth[p] = d + 1;
        frontier.push_back(p);
      }
    }
  }
  return depth;
}

void Dag::refresh_walk_index_locked() const {
  if (walk_index_version_ == version_) return;
  const std::size_t n = transactions_.size();
  constexpr std::size_t kUnset = ~std::size_t{0};
  depth_index_.assign(n, kUnset);
  depth_frontier_.clear();
  for (TxId tip : tips_) {
    depth_index_[tip] = 0;
    depth_frontier_.push_back(tip);
  }
  // Plain BFS along parent edges: every transaction is an ancestor of some
  // tip (or a tip itself), so the whole id range gets its minimum distance
  // to the tip set — the same values depths_from_tips() computes.
  for (std::size_t head = 0; head < depth_frontier_.size(); ++head) {
    const TxId cur = depth_frontier_[head];
    const std::size_t d = depth_index_[cur];
    for (TxId p : transactions_[cur].parents) {
      if (depth_index_[p] == kUnset || depth_index_[p] > d + 1) {
        depth_index_[p] = d + 1;
        depth_frontier_.push_back(p);
      }
    }
  }
  start_candidates_.clear();
  walk_index_version_ = version_;
}

TxId Dag::sample_walk_start(Rng& rng, std::size_t min_depth, std::size_t max_depth) const {
  if (min_depth > max_depth) {
    throw std::invalid_argument("Dag::sample_walk_start: min_depth > max_depth");
  }
  std::shared_lock lock(mutex_);
  std::lock_guard index_lock(walk_index_mutex_);
  refresh_walk_index_locked();
  const std::vector<TxId>* candidates = nullptr;
  for (const auto& [window, ids] : start_candidates_) {
    if (window.first == min_depth && window.second == max_depth) {
      candidates = &ids;
      break;
    }
  }
  if (candidates == nullptr) {
    // Ascending id scan yields the candidates already sorted — identical to
    // the historical collect-then-sort over depths_from_tips().
    std::vector<TxId> ids;
    for (TxId id = 0; id < depth_index_.size(); ++id) {
      if (depth_index_[id] >= min_depth && depth_index_[id] <= max_depth) ids.push_back(id);
    }
    start_candidates_.emplace_back(std::make_pair(min_depth, max_depth), std::move(ids));
    candidates = &start_candidates_.back().second;
  }
  if (candidates->empty()) return kGenesisTx;
  return (*candidates)[rng.index(candidates->size())];
}

std::vector<TxId> Dag::all_ids() const {
  std::shared_lock lock(mutex_);
  std::vector<TxId> ids(transactions_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  return ids;
}

}  // namespace specdag::dag
