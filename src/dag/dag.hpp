// Append-only DAG of model-weight transactions (paper §4.1).
//
// The DAG starts from a genesis transaction holding the initial model
// weights. New transactions approve >= 1 previous transactions (2 in the
// paper). The structure maintains a children index (approvals in reverse,
// the direction the random walk travels), the current tip set, and helpers
// for depth-based walk starts and past-cone queries used by the evaluation.
//
// Weight index: cumulative weights are maintained *incrementally* — each
// append adds exactly one new descendant (the appended transaction) to
// every transaction in its past cone, so add_transaction bumps those
// entries by one and the full table is always current. A monotonically
// increasing version() counter (one tick per append) lets consumers reuse
// a snapshot across walks until the DAG actually changes. The historical
// bit-parallel sweep is retained as the masked-visibility path (per-client
// partition views cannot be maintained incrementally) and as the reference
// oracle for tests.
//
// Thread safety: reads and writes are internally synchronized with a
// shared_mutex; the simulator trains the active clients of a round in
// parallel while they walk the same DAG.
#pragma once

#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "dag/transaction.hpp"
#include "util/rng.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::dag {

class Dag {
 public:
  // Creates the DAG with a genesis transaction carrying `initial_weights`.
  // `store_config` controls the payload store (delta encoding, LRU size).
  explicit Dag(nn::WeightVector initial_weights, store::StoreConfig store_config = {});

  Dag(const Dag&) = delete;
  Dag& operator=(const Dag&) = delete;

  // Appends a transaction approving `parents` (must exist, non-empty,
  // duplicates rejected). Returns the new id. `encode_base`, when the
  // publisher still holds its training start point (the average of the
  // parents' payloads), is forwarded to the store as the delta-encode base
  // so the encoder skips re-materializing the parents.
  TxId add_transaction(std::vector<TxId> parents, WeightsPtr weights, int publisher,
                       std::size_t round, bool poisoned_publisher = false,
                       WeightsPtr encode_base = nullptr);

  std::size_t size() const;

  // Structure version: starts at 0 (genesis only) and increments by one per
  // append. Consumers key cached views (weight snapshots, depth indices) on
  // this counter.
  std::uint64_t version() const;

  // Copy of the transaction record. Throws on unknown id.
  Transaction transaction(TxId id) const;

  // Payload access without copying the record; materializes delta-encoded
  // payloads through the store's LRU. The returned vector is bit-identical
  // to the one passed to add_transaction.
  WeightsPtr weights(TxId id) const;

  // Content hash of the transaction's payload (the evaluation-cache key).
  store::ContentHash payload_hash(TxId id) const;

  // The payload store backing this DAG (memory statistics, configuration).
  const store::ModelStore& store() const { return store_; }

  std::vector<TxId> parents(TxId id) const;
  std::vector<TxId> children(TxId id) const;
  // Copies the children of `id` into `out` (cleared first) without
  // allocating a fresh vector — the walk-loop accessor.
  void children_into(TxId id, std::vector<TxId>& out) const;
  bool is_tip(TxId id) const;

  // Lightweight metadata accessors (no record copy) — used by per-client
  // visibility masks on the walk hot path.
  int publisher(TxId id) const;
  std::size_t round(TxId id) const;

  // Current tips (transactions without approvals), unordered.
  std::vector<TxId> tips() const;

  // Number of transactions that directly or indirectly approve `id`,
  // plus one for the transaction itself — the classic cumulative weight
  // ("weight of transaction", Figure 3). Exact (BFS over the future cone,
  // independent of the incremental index — kept as a per-id oracle).
  std::size_t cumulative_weight(TxId id) const;

  // Cumulative weight of *every* transaction, indexed by id — a copy of the
  // incrementally maintained index (O(n) copy, no recomputation).
  std::vector<std::size_t> cumulative_weights_all() const;

  // Scratch-buffer variant: copies the index into `weights` (resized as
  // needed) and returns the version the snapshot corresponds to, atomically
  // under one lock. Callers reuse the snapshot until version() moves.
  std::uint64_t cumulative_weights_snapshot(std::vector<std::size_t>& weights) const;

  // Reference implementation: recomputes the full table with bit-parallel
  // reverse-insertion-order sweeps (64 descendant candidates per sweep,
  // O((n + edges) * n / 64)). This was the pre-index hot path; it is kept
  // as the oracle the incremental index is tested against. `reach_scratch`
  // holds the sweep's bit masks and is reusable across calls.
  std::vector<std::size_t> cumulative_weights_reference() const;
  void cumulative_weights_reference_into(std::vector<std::size_t>& weights,
                                         std::vector<std::uint64_t>& reach_scratch) const;

  // Masked variant for the per-walk batching of the tip selectors: only
  // transactions with `visible[id] != 0` count, and reachability must pass
  // exclusively through visible transactions (matching a masked walker's
  // BFS view). Ids at or beyond visible.size() are treated as invisible;
  // invisible ids get weight 0. Masks are per-client and change round to
  // round, so this stays a bit-parallel sweep (no incremental index).
  std::vector<std::size_t> cumulative_weights_all(const std::vector<char>& visible) const;
  void cumulative_weights_all_into(const std::vector<char>& visible,
                                   std::vector<std::size_t>& weights,
                                   std::vector<std::uint64_t>& reach_scratch) const;

  // All ids in the past cone of `id` (ancestors via approvals), excluding
  // `id` itself. Used to count approved poisoned transactions (Figure 13).
  std::vector<TxId> past_cone(TxId id) const;

  // Depth of every transaction measured from the tip set: tips have depth 0
  // and depth(x) = 1 + min over children. Genesis-only DAG: genesis depth 0.
  std::unordered_map<TxId, std::size_t> depths_from_tips() const;

  // Samples a walk-start transaction uniformly among those at depth in
  // [min_depth, max_depth] from the tips (paper §5.3.5 / Popov: 15-25).
  // Falls back to genesis when the DAG is shallower than min_depth.
  // Backed by a version-checked depth index: the depth BFS and the sorted
  // candidate list are rebuilt at most once per append instead of once per
  // walk, so concurrent per-walk calls cost O(1) on an unchanged DAG.
  TxId sample_walk_start(Rng& rng, std::size_t min_depth, std::size_t max_depth) const;

  // All transaction ids in insertion order (genesis first).
  std::vector<TxId> all_ids() const;

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  const Transaction& tx_locked(TxId id) const;
  // Rebuilds depth_index_ / start candidates when stale. Caller must hold
  // mutex_ (shared suffices) and walk_index_mutex_.
  void refresh_walk_index_locked() const;

  store::ModelStore store_;  // owns every payload (internally synchronized)
  mutable std::shared_mutex mutex_;
  std::vector<Transaction> transactions_;  // id == index
  std::unordered_map<TxId, std::vector<TxId>> children_;
  std::unordered_set<TxId> tips_;

  // --- incremental weight index (guarded by mutex_) -----------------------
  std::uint64_t version_ = 0;
  std::vector<std::size_t> cum_weights_;  // exact, unmasked, id-indexed
  std::vector<char> cone_seen_;  // scratch for the append-time cone sweep

  // --- walk-start depth index ---------------------------------------------
  // Lazily rebuilt caches; guarded by walk_index_mutex_ *in addition to* a
  // shared hold of mutex_ (rebuilds read transactions_/tips_). The critical
  // section is O(1) between appends.
  mutable std::mutex walk_index_mutex_;
  mutable std::uint64_t walk_index_version_ = ~std::uint64_t{0};
  mutable std::vector<std::size_t> depth_index_;  // id -> depth from tips
  mutable std::vector<TxId> depth_frontier_;      // rebuild scratch
  // Sorted candidate ids per (min_depth, max_depth) window, valid at
  // walk_index_version_. A handful of distinct windows exist per run.
  mutable std::vector<std::pair<std::pair<std::size_t, std::size_t>, std::vector<TxId>>>
      start_candidates_;
};

}  // namespace specdag::dag
