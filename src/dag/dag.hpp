// Append-only DAG of model-weight transactions (paper §4.1).
//
// The DAG starts from a genesis transaction holding the initial model
// weights. New transactions approve >= 1 previous transactions (2 in the
// paper). The structure maintains a children index (approvals in reverse,
// the direction the random walk travels), the current tip set, and helpers
// for depth-based walk starts and past-cone queries used by the evaluation.
//
// Thread safety: reads and writes are internally synchronized with a
// shared_mutex; the simulator trains the active clients of a round in
// parallel while they walk the same DAG.
#pragma once

#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "dag/transaction.hpp"
#include "util/rng.hpp"

namespace specdag::dag {

class Dag {
 public:
  // Creates the DAG with a genesis transaction carrying `initial_weights`.
  // `store_config` controls the payload store (delta encoding, LRU size).
  explicit Dag(nn::WeightVector initial_weights, store::StoreConfig store_config = {});

  Dag(const Dag&) = delete;
  Dag& operator=(const Dag&) = delete;

  // Appends a transaction approving `parents` (must exist, non-empty,
  // duplicates rejected). Returns the new id.
  TxId add_transaction(std::vector<TxId> parents, WeightsPtr weights, int publisher,
                       std::size_t round, bool poisoned_publisher = false);

  std::size_t size() const;

  // Copy of the transaction record. Throws on unknown id.
  Transaction transaction(TxId id) const;

  // Payload access without copying the record; materializes delta-encoded
  // payloads through the store's LRU. The returned vector is bit-identical
  // to the one passed to add_transaction.
  WeightsPtr weights(TxId id) const;

  // Content hash of the transaction's payload (the evaluation-cache key).
  store::ContentHash payload_hash(TxId id) const;

  // The payload store backing this DAG (memory statistics, configuration).
  const store::ModelStore& store() const { return store_; }

  std::vector<TxId> parents(TxId id) const;
  std::vector<TxId> children(TxId id) const;
  bool is_tip(TxId id) const;

  // Lightweight metadata accessors (no record copy) — used by per-client
  // visibility masks on the walk hot path.
  int publisher(TxId id) const;
  std::size_t round(TxId id) const;

  // Current tips (transactions without approvals), unordered.
  std::vector<TxId> tips() const;

  // Number of transactions that directly or indirectly approve `id`,
  // plus one for the transaction itself — the classic cumulative weight
  // ("weight of transaction", Figure 3). Exact (BFS over the future cone).
  std::size_t cumulative_weight(TxId id) const;

  // Cumulative weight of *every* transaction, indexed by id. Exact: counts
  // the future cone of each transaction with bit-parallel reverse-insertion-
  // order sweeps (64 descendant candidates per sweep), so the whole table
  // costs O((n + edges) * n / 64) instead of the n BFS traversals
  // (O(n * (n + edges))) that per-id cumulative_weight() calls would need.
  // Use this on metrics paths that need many weights at once.
  std::vector<std::size_t> cumulative_weights_all() const;

  // Masked variant for the per-walk batching of the tip selectors: only
  // transactions with `visible[id] != 0` count, and reachability must pass
  // exclusively through visible transactions (matching a masked walker's
  // BFS view). Ids at or beyond visible.size() are treated as invisible;
  // invisible ids get weight 0.
  std::vector<std::size_t> cumulative_weights_all(const std::vector<char>& visible) const;

  // Scratch-buffer variants for callers that batch one sweep per walk (the
  // Weighted/Hybrid tip selectors): `weights` receives the result and
  // `reach_scratch` holds the sweep's bit masks, both resized as needed and
  // reusable across calls — no per-walk allocations once they reach the
  // DAG's high-water size. First step toward incremental cumulative-weight
  // maintenance on append.
  void cumulative_weights_all_into(std::vector<std::size_t>& weights,
                                   std::vector<std::uint64_t>& reach_scratch) const;
  void cumulative_weights_all_into(const std::vector<char>& visible,
                                   std::vector<std::size_t>& weights,
                                   std::vector<std::uint64_t>& reach_scratch) const;

  // All ids in the past cone of `id` (ancestors via approvals), excluding
  // `id` itself. Used to count approved poisoned transactions (Figure 13).
  std::vector<TxId> past_cone(TxId id) const;

  // Depth of every transaction measured from the tip set: tips have depth 0
  // and depth(x) = 1 + min over children. Genesis-only DAG: genesis depth 0.
  std::unordered_map<TxId, std::size_t> depths_from_tips() const;

  // Samples a walk-start transaction uniformly among those at depth in
  // [min_depth, max_depth] from the tips (paper §5.3.5 / Popov: 15-25).
  // Falls back to genesis when the DAG is shallower than min_depth.
  TxId sample_walk_start(Rng& rng, std::size_t min_depth, std::size_t max_depth) const;

  // All transaction ids in insertion order (genesis first).
  std::vector<TxId> all_ids() const;

 private:
  const Transaction& tx_locked(TxId id) const;

  store::ModelStore store_;  // owns every payload (internally synchronized)
  mutable std::shared_mutex mutex_;
  std::vector<Transaction> transactions_;  // id == index
  std::unordered_map<TxId, std::vector<TxId>> children_;
  std::unordered_set<TxId> tips_;
};

}  // namespace specdag::dag
