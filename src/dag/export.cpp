#include "dag/export.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace specdag::dag {
namespace {

// Distinguishable fill colors for up to 10 clusters; wraps after that.
const char* cluster_color(int cluster) {
  static const char* kColors[] = {"#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
                                  "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd"};
  if (cluster < 0) return "#ffffff";
  return kColors[static_cast<std::size_t>(cluster) % 10];
}

}  // namespace

void write_dot(std::ostream& out, const Dag& dag, const DotOptions& options) {
  out << "digraph specdag {\n  rankdir=RL;\n  node [style=filled];\n";
  for (TxId id : dag.all_ids()) {
    const Transaction tx = dag.transaction(id);
    out << "  t" << id << " [label=\"";
    if (tx.is_genesis()) {
      out << "genesis";
    } else {
      out << "c" << tx.publisher;
      if (options.include_round_labels) out << "\\nr" << tx.round;
    }
    out << "\"";
    int cluster = -1;
    if (!tx.is_genesis() && !options.client_clusters.empty()) {
      const auto publisher = static_cast<std::size_t>(tx.publisher);
      if (publisher >= options.client_clusters.size()) {
        throw std::invalid_argument("write_dot: publisher outside client_clusters");
      }
      cluster = options.client_clusters[publisher];
    }
    out << ", fillcolor=\"" << cluster_color(cluster) << "\"";
    if (options.highlight_poisoned && tx.poisoned_publisher) out << ", shape=octagon";
    out << "];\n";
  }
  for (TxId id : dag.all_ids()) {
    for (TxId parent : dag.parents(id)) {
      out << "  t" << id << " -> t" << parent << ";\n";
    }
  }
  out << "}\n";
  if (!out) throw std::runtime_error("write_dot: stream failure");
}

void save_dot(const std::string& path, const Dag& dag, const DotOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_dot: cannot open " + path);
  write_dot(out, dag, options);
}

void write_jsonl(std::ostream& out, const Dag& dag) {
  for (TxId id : dag.all_ids()) {
    const Transaction tx = dag.transaction(id);
    out << "{\"id\":" << id << ",\"parents\":[";
    for (std::size_t i = 0; i < tx.parents.size(); ++i) {
      if (i > 0) out << ",";
      out << tx.parents[i];
    }
    out << "],\"publisher\":" << tx.publisher << ",\"round\":" << tx.round
        << ",\"poisoned\":" << (tx.poisoned_publisher ? "true" : "false") << "}\n";
  }
  if (!out) throw std::runtime_error("write_jsonl: stream failure");
}

void save_jsonl(const std::string& path, const Dag& dag) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_jsonl: cannot open " + path);
  write_jsonl(out, dag);
}

}  // namespace specdag::dag
