// DAG export for analysis and visualization: Graphviz DOT (with clients
// colored by cluster) and JSON-lines transaction logs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dag/dag.hpp"

namespace specdag::dag {

struct DotOptions {
  // Optional ground-truth cluster per client id; nodes are colored by it.
  std::vector<int> client_clusters;
  // Mark transactions from poisoned publishers with a distinct shape.
  bool highlight_poisoned = true;
  // Omit weight payload sizes (keeps files small).
  bool include_round_labels = true;
};

// Writes the DAG in Graphviz DOT format (edges point from approving to
// approved transaction, i.e. backwards in time like the paper's figures).
void write_dot(std::ostream& out, const Dag& dag, const DotOptions& options = {});
void save_dot(const std::string& path, const Dag& dag, const DotOptions& options = {});

// One JSON object per line: {"id":..,"parents":[..],"publisher":..,
// "round":..,"poisoned":..}. Payload weights are intentionally excluded.
void write_jsonl(std::ostream& out, const Dag& dag);
void save_jsonl(const std::string& path, const Dag& dag);

}  // namespace specdag::dag
