// Transactions of the model DAG.
//
// Each node of the DAG ("transaction" in ledger terms, paper §1) carries a
// model payload plus the approvals (edges) to the transactions whose
// averaged weights it was trained from. Payloads live in the DAG's
// store::ModelStore — transactions hold content-addressed handles, and
// readers receive shared immutable vectors: averaging and walking never
// copy weights.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "nn/model.hpp"
#include "store/model_store.hpp"

namespace specdag::dag {

using TxId = std::uint64_t;
inline constexpr TxId kInvalidTx = std::numeric_limits<TxId>::max();
inline constexpr TxId kGenesisTx = 0;

using WeightsPtr = std::shared_ptr<const nn::WeightVector>;

struct Transaction {
  TxId id = kInvalidTx;
  std::vector<TxId> parents;  // approved transactions (empty only for genesis)
  store::PayloadId payload = store::kInvalidPayload;  // handle into the model store
  int publisher = -1;         // client id; -1 for genesis
  std::size_t round = 0;      // simulation round of publication
  // Evaluation-only bookkeeping: whether the publisher trained on poisoned
  // data. Never used by the consensus algorithms themselves.
  bool poisoned_publisher = false;

  bool is_genesis() const { return id == kGenesisTx; }
};

}  // namespace specdag::dag
