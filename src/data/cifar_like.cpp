#include "data/cifar_like.hpp"

#include <algorithm>
#include <stdexcept>

namespace specdag::data {
namespace {

void check_config(const CifarLikeConfig& config) {
  if (config.image_size < 4) throw std::invalid_argument("CifarLike: image too small");
  if (config.num_superclasses == 0 || config.subclasses_per_super == 0) {
    throw std::invalid_argument("CifarLike: zero classes");
  }
  if (config.num_clients == 0) throw std::invalid_argument("CifarLike: zero clients");
  if (config.samples_per_client < 2) {
    throw std::invalid_argument("CifarLike: need >= 2 samples per client");
  }
  if (config.pool_per_subclass == 0) throw std::invalid_argument("CifarLike: empty pools");
  if (config.root_concentration <= 0.0 || config.sub_concentration <= 0.0) {
    throw std::invalid_argument("CifarLike: non-positive concentration");
  }
  const std::size_t total_pool = config.num_fine_classes() * config.pool_per_subclass;
  if (config.num_clients * config.samples_per_client > total_pool) {
    throw std::invalid_argument(
        "CifarLike: demand exceeds pool; raise pool_per_subclass");
  }
}

// A smoothed random RGB image of `size` x `size`.
std::vector<float> random_smooth_image(std::size_t size, Rng& rng) {
  const std::size_t channels = 3;
  std::vector<float> img(channels * size * size);
  for (auto& v : img) v = static_cast<float>(rng.uniform());
  // One smoothing pass per channel (4-neighbour average).
  std::vector<float> tmp(img.size());
  for (std::size_t c = 0; c < channels; ++c) {
    const std::size_t base = c * size * size;
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        float sum = img[base + y * size + x];
        int count = 1;
        if (y > 0) { sum += img[base + (y - 1) * size + x]; ++count; }
        if (y + 1 < size) { sum += img[base + (y + 1) * size + x]; ++count; }
        if (x > 0) { sum += img[base + y * size + x - 1]; ++count; }
        if (x + 1 < size) { sum += img[base + y * size + x + 1]; ++count; }
        tmp[base + y * size + x] = sum / static_cast<float>(count);
      }
    }
  }
  return tmp;
}

}  // namespace

std::size_t superclass_of(const CifarLikeConfig& config, int fine_label) {
  if (fine_label < 0 || static_cast<std::size_t>(fine_label) >= config.num_fine_classes()) {
    throw std::invalid_argument("superclass_of: fine label out of range");
  }
  return static_cast<std::size_t>(fine_label) / config.subclasses_per_super;
}

FederatedDataset make_cifar_like(const CifarLikeConfig& config) {
  check_config(config);
  Rng root(config.seed);
  Rng proto_rng = root.fork(0xC1FA);

  // Prototypes: superclass base images, plus subclass deltas blended in.
  const std::size_t elem = 3 * config.image_size * config.image_size;
  std::vector<std::vector<float>> fine_prototypes(config.num_fine_classes());
  for (std::size_t sup = 0; sup < config.num_superclasses; ++sup) {
    const std::vector<float> base = random_smooth_image(config.image_size, proto_rng);
    for (std::size_t sub = 0; sub < config.subclasses_per_super; ++sub) {
      const std::vector<float> delta = random_smooth_image(config.image_size, proto_rng);
      std::vector<float> proto(elem);
      // 80% superclass identity, 20% subclass detail: keeps intra-super
      // similarity clearly higher than inter-super similarity so superclass
      // structure is visible to the accuracy-biased walk.
      for (std::size_t i = 0; i < elem; ++i) proto[i] = 0.8f * base[i] + 0.2f * delta[i];
      fine_prototypes[sup * config.subclasses_per_super + sub] = std::move(proto);
    }
  }

  // Per-subclass sample pools (drawn without replacement during allocation).
  Rng pool_rng = root.fork(0x9001);
  std::vector<std::vector<std::vector<float>>> pools(config.num_fine_classes());
  for (std::size_t f = 0; f < config.num_fine_classes(); ++f) {
    pools[f].reserve(config.pool_per_subclass);
    for (std::size_t s = 0; s < config.pool_per_subclass; ++s) {
      std::vector<float> img = fine_prototypes[f];
      for (auto& v : img) {
        v = std::clamp(v + static_cast<float>(pool_rng.normal(0.0, config.noise_stddev)),
                       0.0f, 1.0f);
      }
      pools[f].push_back(std::move(img));
    }
  }
  std::vector<std::size_t> pool_remaining(config.num_fine_classes(), config.pool_per_subclass);

  FederatedDataset ds;
  ds.name = "cifar100-like";
  ds.num_classes = config.num_fine_classes();
  ds.num_clusters = config.num_superclasses;
  ds.element_shape = {3, config.image_size, config.image_size};

  for (std::size_t i = 0; i < config.num_clients; ++i) {
    Rng rng = root.fork(0xCF000000ULL + i);
    ClientData client;
    client.client_id = static_cast<int>(i);
    client.element_shape = ds.element_shape;

    // PAM: one multinomial path root -> superclass -> subclass per example.
    std::vector<double> super_probs = rng.dirichlet(config.num_superclasses,
                                                    config.root_concentration);
    std::vector<std::vector<double>> sub_probs(config.num_superclasses);
    for (auto& sp : sub_probs) {
      sp = rng.dirichlet(config.subclasses_per_super, config.sub_concentration);
    }

    std::vector<std::size_t> super_counts(config.num_superclasses, 0);
    for (std::size_t s = 0; s < config.samples_per_client; ++s) {
      // Draw until we hit a subclass with pool samples left. Exhausted
      // subclasses get their probability zeroed (draw without replacement).
      std::size_t fine = 0;
      for (;;) {
        const std::size_t sup = rng.weighted_index(super_probs);
        const std::size_t sub = rng.weighted_index(sub_probs[sup]);
        fine = sup * config.subclasses_per_super + sub;
        if (pool_remaining[fine] > 0) break;
        sub_probs[sup][sub] = 0.0;
        bool super_empty = std::all_of(sub_probs[sup].begin(), sub_probs[sup].end(),
                                       [](double p) { return p == 0.0; });
        if (super_empty) super_probs[sup] = 0.0;
      }
      const std::size_t pick = rng.index(pool_remaining[fine]);
      const auto& img = pools[fine][pick];
      client.train_x.insert(client.train_x.end(), img.begin(), img.end());
      client.train_y.push_back(static_cast<int>(fine));
      // Swap-remove from the pool.
      std::swap(pools[fine][pick], pools[fine][pool_remaining[fine] - 1]);
      --pool_remaining[fine];
      ++super_counts[fine / config.subclasses_per_super];
    }

    // Paper: a client's cluster is the most common superclass in its data,
    // ties broken randomly.
    const std::size_t max_count = *std::max_element(super_counts.begin(), super_counts.end());
    std::vector<std::size_t> argmaxes;
    for (std::size_t sup = 0; sup < config.num_superclasses; ++sup) {
      if (super_counts[sup] == max_count) argmaxes.push_back(sup);
    }
    client.true_cluster = static_cast<int>(argmaxes[rng.index(argmaxes.size())]);

    train_test_split(client, config.test_fraction, rng);
    ds.clients.push_back(std::move(client));
  }
  ds.validate();
  return ds;
}

}  // namespace specdag::data
