// Synthetic stand-in for CIFAR-100 with superclass structure (paper §5.1.3).
//
// 20 superclasses x 5 subclasses = 100 fine labels. Each subclass prototype
// is its superclass prototype plus a subclass-specific offset, so fine
// classes within a superclass are more similar to each other than across
// superclasses — the property the paper's clustering experiment depends on.
//
// Client allocation follows the Pachinko Allocation Method (PAM) as used by
// TensorFlow Federated: per client, draw a Dirichlet over superclasses and a
// Dirichlet over the subclasses of each superclass, then sample examples
// without replacement from per-subclass pools, walking the root→super→sub
// DAG for each draw. Clients therefore own data from several superclasses,
// and their "true" cluster is defined (as in the paper) as the most common
// superclass in their local data, with ties broken randomly.
#pragma once

#include "data/dataset.hpp"

namespace specdag::data {

struct CifarLikeConfig {
  std::size_t image_size = 10;         // square RGB images (paper: 32x32)
  std::size_t num_superclasses = 20;
  std::size_t subclasses_per_super = 5;
  std::size_t num_clients = 94;        // paper: 94 clients
  std::size_t samples_per_client = 100;
  std::size_t pool_per_subclass = 160;  // examples generated per fine class
  double root_concentration = 0.05;     // Dirichlet over superclasses
  double sub_concentration = 10.0;      // Dirichlet over subclasses within a super
  double noise_stddev = 0.08;
  double test_fraction = 0.15;
  std::uint64_t seed = 42;

  std::size_t num_fine_classes() const { return num_superclasses * subclasses_per_super; }
};

// superclass id of a fine label.
std::size_t superclass_of(const CifarLikeConfig& config, int fine_label);

FederatedDataset make_cifar_like(const CifarLikeConfig& config);

}  // namespace specdag::data
