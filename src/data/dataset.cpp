#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace specdag::data {

void ClientData::validate() const {
  const std::size_t elem = element_numel();
  if (elem == 0) throw std::invalid_argument("ClientData: empty element shape");
  if (train_x.size() != train_y.size() * elem) {
    throw std::invalid_argument("ClientData: train_x/train_y size mismatch");
  }
  if (test_x.size() != test_y.size() * elem) {
    throw std::invalid_argument("ClientData: test_x/test_y size mismatch");
  }
}

void FederatedDataset::validate() const {
  if (num_classes == 0) throw std::invalid_argument("FederatedDataset: zero classes");
  if (clients.empty()) throw std::invalid_argument("FederatedDataset: no clients");
  for (const auto& c : clients) {
    c.validate();
    if (c.element_shape != element_shape) {
      throw std::invalid_argument("FederatedDataset: inconsistent element shapes");
    }
    for (int y : c.train_y) {
      if (y < 0 || static_cast<std::size_t>(y) >= num_classes) {
        throw std::invalid_argument("FederatedDataset: train label out of range");
      }
    }
    for (int y : c.test_y) {
      if (y < 0 || static_cast<std::size_t>(y) >= num_classes) {
        throw std::invalid_argument("FederatedDataset: test label out of range");
      }
    }
  }
}

Batch gather_batch(const std::vector<float>& x, const std::vector<int>& y,
                   const Shape& element_shape, const std::vector<std::size_t>& indices) {
  if (indices.empty()) throw std::invalid_argument("gather_batch: empty index set");
  const std::size_t elem = shape_numel(element_shape);
  Shape batch_shape;
  batch_shape.push_back(indices.size());
  batch_shape.insert(batch_shape.end(), element_shape.begin(), element_shape.end());
  Batch batch{Tensor(batch_shape), {}};
  batch.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t idx = indices[i];
    if (idx >= y.size()) throw std::out_of_range("gather_batch: index out of range");
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(idx * elem),
              x.begin() + static_cast<std::ptrdiff_t>((idx + 1) * elem),
              batch.inputs.raw() + i * elem);
    batch.labels.push_back(y[idx]);
  }
  return batch;
}

std::vector<Batch> sample_batches(const std::vector<float>& x, const std::vector<int>& y,
                                  const Shape& element_shape, std::size_t batch_size,
                                  std::size_t num_batches, Rng& rng) {
  if (y.empty()) throw std::invalid_argument("sample_batches: empty dataset");
  if (batch_size == 0) throw std::invalid_argument("sample_batches: zero batch size");
  std::vector<Batch> batches;
  batches.reserve(num_batches);
  for (std::size_t b = 0; b < num_batches; ++b) {
    std::vector<std::size_t> indices;
    if (batch_size <= y.size()) {
      indices = rng.sample_without_replacement(y.size(), batch_size);
    } else {
      // Tiny client: sample with replacement to keep the batch size fixed.
      indices.resize(batch_size);
      for (auto& idx : indices) idx = rng.index(y.size());
    }
    batches.push_back(gather_batch(x, y, element_shape, indices));
  }
  return batches;
}

Batch full_batch(const std::vector<float>& x, const std::vector<int>& y,
                 const Shape& element_shape) {
  std::vector<std::size_t> indices(y.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  return gather_batch(x, y, element_shape, indices);
}

void train_test_split(ClientData& client, double test_fraction, Rng& rng) {
  if (test_fraction < 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction outside [0, 1)");
  }
  client.validate();
  const std::size_t n = client.num_train();
  if (n == 0 || test_fraction == 0.0) return;
  std::size_t n_test = static_cast<std::size_t>(static_cast<double>(n) * test_fraction);
  if (n_test == 0) n_test = 1;
  if (n_test >= n) n_test = n - 1;

  const std::size_t elem = client.element_numel();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::vector<float> new_train_x, new_test_x;
  std::vector<int> new_train_y, new_test_y;
  new_train_x.reserve((n - n_test) * elem);
  new_test_x.reserve(n_test * elem);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = order[i];
    auto first = client.train_x.begin() + static_cast<std::ptrdiff_t>(idx * elem);
    auto last = first + static_cast<std::ptrdiff_t>(elem);
    if (i < n_test) {
      new_test_x.insert(new_test_x.end(), first, last);
      new_test_y.push_back(client.train_y[idx]);
    } else {
      new_train_x.insert(new_train_x.end(), first, last);
      new_train_y.push_back(client.train_y[idx]);
    }
  }
  client.train_x = std::move(new_train_x);
  client.train_y = std::move(new_train_y);
  // Appends to any pre-existing test data.
  client.test_x.insert(client.test_x.end(), new_test_x.begin(), new_test_x.end());
  client.test_y.insert(client.test_y.end(), new_test_y.begin(), new_test_y.end());
}

}  // namespace specdag::data
