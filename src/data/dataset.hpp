// Dataset containers shared by all experiments.
//
// A FederatedDataset is a set of per-client shards. Each client holds a
// train and a test partition (the paper uses a 90:10 split everywhere; both
// partitions are required because the accuracy-biased random walk evaluates
// foreign models on local *test* data). Features are stored flat; the
// element_shape describes one example (e.g. {1, 16, 16} for images, {seq}
// for token sequences), and batches are materialized on demand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace specdag::data {

struct ClientData {
  int client_id = -1;
  // Ground-truth cluster label used only by evaluation metrics
  // (misclassification fraction); the learning algorithms never see it.
  int true_cluster = -1;
  // True if this client's labels were poisoned (evaluation bookkeeping).
  bool poisoned = false;

  Shape element_shape;

  std::vector<float> train_x;  // num_train() * element_numel() values
  std::vector<int> train_y;
  std::vector<float> test_x;
  std::vector<int> test_y;

  std::size_t element_numel() const { return shape_numel(element_shape); }
  std::size_t num_train() const { return train_y.size(); }
  std::size_t num_test() const { return test_y.size(); }

  // Throws if internal sizes are inconsistent.
  void validate() const;
};

struct FederatedDataset {
  std::string name;
  std::size_t num_classes = 0;
  std::size_t num_clusters = 0;
  Shape element_shape;
  std::vector<ClientData> clients;

  void validate() const;
};

// A materialized minibatch: inputs [batch, element_shape...] + labels.
struct Batch {
  Tensor inputs;
  std::vector<int> labels;
};

// Builds a batch from explicit example indices into (x, y).
Batch gather_batch(const std::vector<float>& x, const std::vector<int>& y,
                   const Shape& element_shape, const std::vector<std::size_t>& indices);

// Samples `num_batches` batches of `batch_size` examples with replacement at
// the batch level (examples within a batch are distinct when possible). The
// paper fixes the number of local batches per round (Table 1), independent
// of the client's dataset size — this helper implements exactly that.
std::vector<Batch> sample_batches(const std::vector<float>& x, const std::vector<int>& y,
                                  const Shape& element_shape, std::size_t batch_size,
                                  std::size_t num_batches, Rng& rng);

// The whole test partition as a single batch (used by evaluation).
Batch full_batch(const std::vector<float>& x, const std::vector<int>& y,
                 const Shape& element_shape);

// Moves `fraction` of the examples (rounded down, at least 1 when the source
// is non-empty and fraction > 0) from train into test. Used when generators
// produce only a train stream. Split is deterministic given `rng`.
void train_test_split(ClientData& client, double test_fraction, Rng& rng);

}  // namespace specdag::data
