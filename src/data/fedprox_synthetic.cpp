#include "data/fedprox_synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace specdag::data {
namespace {

void check_config(const FedProxSyntheticConfig& config) {
  if (config.alpha < 0.0 || config.beta < 0.0) {
    throw std::invalid_argument("FedProxSynthetic: negative alpha/beta");
  }
  if (config.dimension == 0 || config.num_classes < 2) {
    throw std::invalid_argument("FedProxSynthetic: bad dimensions");
  }
  if (config.num_clients == 0) throw std::invalid_argument("FedProxSynthetic: zero clients");
  if (config.min_samples < 2 || config.max_samples < config.min_samples) {
    throw std::invalid_argument("FedProxSynthetic: bad sample bounds");
  }
}

}  // namespace

FederatedDataset make_fedprox_synthetic(const FedProxSyntheticConfig& config) {
  check_config(config);
  FederatedDataset ds;
  ds.name = "fedprox-synthetic";
  ds.num_classes = config.num_classes;
  ds.num_clusters = 1;  // heterogeneity is continuous, not clustered
  ds.element_shape = {config.dimension};

  // Sigma = diag(j^-1.2), shared across clients.
  std::vector<double> sigma(config.dimension);
  for (std::size_t j = 0; j < config.dimension; ++j) {
    sigma[j] = std::pow(static_cast<double>(j + 1), -1.2);
  }

  Rng root(config.seed);
  for (std::size_t k = 0; k < config.num_clients; ++k) {
    Rng rng = root.fork(0xF7000000ULL + k);
    ClientData client;
    client.client_id = static_cast<int>(k);
    client.true_cluster = 0;
    client.element_shape = ds.element_shape;

    const double u_k = rng.normal(0.0, std::sqrt(std::max(config.alpha, 1e-12)));
    const double b_shift = rng.normal(0.0, std::sqrt(std::max(config.beta, 1e-12)));

    std::vector<double> v(config.dimension);
    for (auto& vj : v) vj = rng.normal(b_shift, 1.0);

    // Client-local ground-truth model.
    std::vector<double> w(config.dimension * config.num_classes);
    std::vector<double> b(config.num_classes);
    for (auto& wi : w) wi = rng.normal(u_k, 1.0);
    for (auto& bi : b) bi = rng.normal(u_k, 1.0);

    // Lognormal sample count, clamped to the configured range.
    const double raw = std::exp(rng.normal(std::log(static_cast<double>(config.min_samples) * 2),
                                           config.lognormal_sigma));
    const std::size_t n = std::clamp(static_cast<std::size_t>(raw), config.min_samples,
                                     config.max_samples);

    for (std::size_t s = 0; s < n; ++s) {
      std::vector<double> x(config.dimension);
      for (std::size_t j = 0; j < config.dimension; ++j) {
        x[j] = rng.normal(v[j], std::sqrt(sigma[j]));
      }
      // y = argmax over classes of w_c . x + b_c.
      int best_class = 0;
      double best_score = -1e300;
      for (std::size_t c = 0; c < config.num_classes; ++c) {
        double score = b[c];
        for (std::size_t j = 0; j < config.dimension; ++j) {
          score += w[j * config.num_classes + c] * x[j];
        }
        if (score > best_score) {
          best_score = score;
          best_class = static_cast<int>(c);
        }
      }
      for (double xj : x) client.train_x.push_back(static_cast<float>(xj));
      client.train_y.push_back(best_class);
    }
    train_test_split(client, config.test_fraction, rng);
    ds.clients.push_back(std::move(client));
  }
  ds.validate();
  return ds;
}

}  // namespace specdag::data
