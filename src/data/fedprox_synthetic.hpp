// The synthetic(alpha, beta) dataset from the FedProx paper (Li et al.,
// "Federated Optimization in Heterogeneous Networks"), used by the paper's
// Figures 10/11 comparison with alpha = beta = 0.5.
//
// Per client k:
//   u_k ~ N(0, alpha)            controls model dissimilarity across clients
//   B_k ~ N(0, beta)             controls feature dissimilarity across clients
//   v_k[j] ~ N(B_k, 1)           per-dimension feature means
//   x ~ N(v_k, Sigma)            Sigma = diag(j^-1.2)
//   W_k ~ N(u_k, 1), b_k ~ N(u_k, 1)
//   y = argmax(softmax(W_k x + b_k))
// Sample counts per client follow a (clamped) lognormal, as in FedProx.
#pragma once

#include "data/dataset.hpp"

namespace specdag::data {

struct FedProxSyntheticConfig {
  double alpha = 0.5;
  double beta = 0.5;
  std::size_t dimension = 60;
  std::size_t num_classes = 10;
  std::size_t num_clients = 30;
  std::size_t min_samples = 30;
  std::size_t max_samples = 120;
  double lognormal_sigma = 1.0;
  double test_fraction = 0.1;
  std::uint64_t seed = 42;
};

FederatedDataset make_fedprox_synthetic(const FedProxSyntheticConfig& config);

}  // namespace specdag::data
