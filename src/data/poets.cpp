#include "data/poets.hpp"

#include <stdexcept>

namespace specdag::data {
namespace {

void check_config(const PoetsConfig& config) {
  if (config.vocab_size < 2) throw std::invalid_argument("Poets: vocab too small");
  if (config.seq_len == 0) throw std::invalid_argument("Poets: zero sequence length");
  if (config.num_clients < 2) throw std::invalid_argument("Poets: need >= 2 clients");
  if (config.samples_per_client < 2) {
    throw std::invalid_argument("Poets: need >= 2 samples per client");
  }
  if (config.transition_concentration <= 0.0) {
    throw std::invalid_argument("Poets: non-positive concentration");
  }
}

}  // namespace

std::vector<std::vector<double>> make_language_model(const PoetsConfig& config, int language) {
  check_config(config);
  if (language < 0) throw std::invalid_argument("make_language_model: negative language id");
  Rng rng = Rng(config.seed).fork(0x1A6000ULL + static_cast<std::uint64_t>(language));
  std::vector<std::vector<double>> transitions;
  transitions.reserve(config.vocab_size);
  for (std::size_t c = 0; c < config.vocab_size; ++c) {
    transitions.push_back(rng.dirichlet(config.vocab_size, config.transition_concentration));
  }
  return transitions;
}

FederatedDataset make_poets(const PoetsConfig& config) {
  check_config(config);
  const std::vector<std::vector<std::vector<double>>> languages = {
      make_language_model(config, 0), make_language_model(config, 1)};

  FederatedDataset ds;
  ds.name = "poets";
  ds.num_classes = config.vocab_size;  // next-char prediction over the alphabet
  ds.num_clusters = 2;
  ds.element_shape = {config.seq_len};

  Rng root(config.seed);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    Rng rng = root.fork(0x90E70000ULL + i);
    ClientData client;
    client.client_id = static_cast<int>(i);
    client.true_cluster = static_cast<int>(i % 2);
    client.element_shape = ds.element_shape;
    const auto& chain = languages[static_cast<std::size_t>(client.true_cluster)];

    // Generate one long character stream per client, then slide a window
    // over it — mirrors how LEAF windows the Shakespeare lines.
    const std::size_t stream_len = config.samples_per_client + config.seq_len;
    std::vector<int> stream;
    stream.reserve(stream_len);
    stream.push_back(static_cast<int>(rng.index(config.vocab_size)));
    while (stream.size() < stream_len) {
      const auto& row = chain[static_cast<std::size_t>(stream.back())];
      stream.push_back(static_cast<int>(rng.weighted_index(row)));
    }

    for (std::size_t s = 0; s < config.samples_per_client; ++s) {
      for (std::size_t t = 0; t < config.seq_len; ++t) {
        client.train_x.push_back(static_cast<float>(stream[s + t]));
      }
      client.train_y.push_back(stream[s + config.seq_len]);
    }
    train_test_split(client, config.test_fraction, rng);
    ds.clients.push_back(std::move(client));
  }
  ds.validate();
  return ds;
}

}  // namespace specdag::data
