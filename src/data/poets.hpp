// Synthetic stand-in for the paper's Poets dataset (Shakespeare + Goethe,
// §5.1.2): next-character prediction over two client populations whose text
// statistics differ.
//
// We model each "language" as an order-1 Markov chain over a shared
// character alphabet. The two chains are drawn from Dirichlet priors with
// different seeds, so their bigram statistics differ the way English and
// German do, while the alphabet (and hence the model) is shared. Each
// example is a window of `seq_len` token ids whose target is the following
// character — exactly the LEAF Shakespeare task shape.
#pragma once

#include "data/dataset.hpp"

namespace specdag::data {

struct PoetsConfig {
  std::size_t vocab_size = 24;       // shared alphabet
  std::size_t seq_len = 10;          // paper: 80; reduced default for CPU benches
  std::size_t num_clients = 20;      // split evenly across the two languages
  std::size_t samples_per_client = 150;
  double transition_concentration = 0.1;  // low = peaky, learnable bigrams
  double test_fraction = 0.1;
  std::uint64_t seed = 42;
};

// Row-stochastic transition matrix for one language (vocab x vocab).
std::vector<std::vector<double>> make_language_model(const PoetsConfig& config,
                                                     int language);

// Two clusters: language 0 ("English-like") and language 1 ("German-like").
FederatedDataset make_poets(const PoetsConfig& config);

}  // namespace specdag::data
