#include "data/poisoning.hpp"

#include <stdexcept>

namespace specdag::data {
namespace {

std::size_t flip_in(std::vector<int>& labels, int class_a, int class_b) {
  std::size_t changed = 0;
  for (auto& y : labels) {
    if (y == class_a) {
      y = class_b;
      ++changed;
    } else if (y == class_b) {
      y = class_a;
      ++changed;
    }
  }
  return changed;
}

}  // namespace

std::size_t flip_labels(ClientData& client, int class_a, int class_b) {
  if (class_a == class_b) throw std::invalid_argument("flip_labels: identical classes");
  std::size_t changed = flip_in(client.train_y, class_a, class_b);
  changed += flip_in(client.test_y, class_a, class_b);
  client.poisoned = true;
  return changed;
}

std::vector<int> poison_fraction(FederatedDataset& dataset, double p, int class_a, int class_b,
                                 Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("poison_fraction: p outside [0,1]");
  const std::size_t num_poisoned =
      static_cast<std::size_t>(p * static_cast<double>(dataset.clients.size()));
  std::vector<int> ids;
  if (num_poisoned == 0) return ids;
  const auto chosen = rng.sample_without_replacement(dataset.clients.size(), num_poisoned);
  ids.reserve(chosen.size());
  for (std::size_t idx : chosen) {
    flip_labels(dataset.clients[idx], class_a, class_b);
    ids.push_back(dataset.clients[idx].client_id);
  }
  return ids;
}

std::vector<int> revert_poisoning(FederatedDataset& dataset, int class_a, int class_b) {
  std::vector<int> reverted;
  for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
    auto& client = dataset.clients[i];
    if (!client.poisoned) continue;
    flip_labels(client, class_a, class_b);
    client.poisoned = false;
    reverted.push_back(static_cast<int>(i));
  }
  return reverted;
}

}  // namespace specdag::data
