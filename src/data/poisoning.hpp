// Flipped-label poisoning (paper §4.4, §5.3.4): an attacker manipulates the
// dataset of a subset of clients by exchanging two class labels in both the
// train and test partitions. Poisoned clients are unaware: they train and
// evaluate against the forged labels, so their tip selection is steered by
// poisoned accuracy — exactly the threat model of Schmid et al. adopted by
// the paper.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace specdag::data {

// The RNG fork tag every poisoning site derives its victim set from. Shared
// so a DAG run and a baseline run of the same seed poison the same clients.
inline constexpr std::uint64_t kPoisonForkTag = 0x9015;

// Swaps labels `class_a` <-> `class_b` in train and test data of `client`
// and marks it poisoned. Returns the number of labels changed.
std::size_t flip_labels(ClientData& client, int class_a, int class_b);

// Poisons floor(p * num_clients) clients, chosen deterministically via `rng`.
// Returns the ids of the poisoned clients.
std::vector<int> poison_fraction(FederatedDataset& dataset, double p, int class_a, int class_b,
                                 Rng& rng);

// Reverts an earlier flip: restores the original labels of every client
// marked poisoned (the swap is its own inverse) and clears the flags.
// Returns the indices of the reverted clients so callers can invalidate
// their caches.
std::vector<int> revert_poisoning(FederatedDataset& dataset, int class_a, int class_b);

}  // namespace specdag::data
