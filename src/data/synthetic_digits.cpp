#include "data/synthetic_digits.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace specdag::data {

const std::vector<std::vector<int>> kFmnistClusterClasses = {
    {0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}};

namespace {

// Box blur with a 3x3 window, repeated to smooth random noise into blob-like
// prototypes that survive small shifts (so translation jitter keeps samples
// recognizable, like handwriting).
void box_blur(std::vector<float>& img, std::size_t size, int passes) {
  std::vector<float> tmp(img.size());
  for (int p = 0; p < passes; ++p) {
    for (std::size_t y = 0; y < size; ++y) {
      for (std::size_t x = 0; x < size; ++x) {
        float sum = 0.0f;
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const std::ptrdiff_t ny = static_cast<std::ptrdiff_t>(y) + dy;
            const std::ptrdiff_t nx = static_cast<std::ptrdiff_t>(x) + dx;
            if (ny < 0 || nx < 0 || ny >= static_cast<std::ptrdiff_t>(size) ||
                nx >= static_cast<std::ptrdiff_t>(size)) {
              continue;
            }
            sum += img[static_cast<std::size_t>(ny) * size + static_cast<std::size_t>(nx)];
            ++count;
          }
        }
        tmp[y * size + x] = sum / static_cast<float>(count);
      }
    }
    img.swap(tmp);
  }
}

void normalize_unit(std::vector<float>& img) {
  const auto [mn, mx] = std::minmax_element(img.begin(), img.end());
  const float range = *mx - *mn;
  if (range <= 0.0f) return;
  for (auto& v : img) v = (v - *mn) / range;
}

// Renders one sample: prototype shifted by (dy, dx) plus pixel noise.
std::vector<float> render_sample(const std::vector<float>& prototype, std::size_t size,
                                 int dy, int dx, double noise_stddev, Rng& rng) {
  std::vector<float> img(size * size, 0.0f);
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) - dy;
      const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) - dx;
      float v = 0.0f;
      if (sy >= 0 && sx >= 0 && sy < static_cast<std::ptrdiff_t>(size) &&
          sx < static_cast<std::ptrdiff_t>(size)) {
        v = prototype[static_cast<std::size_t>(sy) * size + static_cast<std::size_t>(sx)];
      }
      img[y * size + x] =
          std::clamp(v + static_cast<float>(rng.normal(0.0, noise_stddev)), 0.0f, 1.0f);
    }
  }
  return img;
}

int cluster_of_class(int cls) {
  for (std::size_t c = 0; c < kFmnistClusterClasses.size(); ++c) {
    const auto& group = kFmnistClusterClasses[c];
    if (std::find(group.begin(), group.end(), cls) != group.end()) return static_cast<int>(c);
  }
  throw std::invalid_argument("cluster_of_class: class outside 0-9");
}

void append_sample(ClientData& client, const std::vector<std::vector<float>>& prototypes,
                   int cls, const SyntheticDigitsConfig& config, Rng& rng) {
  const int shift_range = static_cast<int>(config.max_shift);
  const int dy = static_cast<int>(rng.uniform_int(-shift_range, shift_range));
  const int dx = static_cast<int>(rng.uniform_int(-shift_range, shift_range));
  std::vector<float> img = render_sample(prototypes[static_cast<std::size_t>(cls)],
                                         config.image_size, dy, dx, config.noise_stddev, rng);
  client.train_x.insert(client.train_x.end(), img.begin(), img.end());
  client.train_y.push_back(cls);
}

void check_config(const SyntheticDigitsConfig& config) {
  if (config.image_size < 4) throw std::invalid_argument("SyntheticDigits: image too small");
  if (config.num_classes == 0) throw std::invalid_argument("SyntheticDigits: zero classes");
  if (config.num_clients == 0) throw std::invalid_argument("SyntheticDigits: zero clients");
  if (config.samples_per_client < 2) {
    throw std::invalid_argument("SyntheticDigits: need at least 2 samples per client");
  }
  if (config.relax_min < 0.0 || config.relax_max > 0.9 || config.relax_min > config.relax_max) {
    throw std::invalid_argument("SyntheticDigits: bad relaxation range");
  }
}

}  // namespace

std::vector<std::vector<float>> make_digit_prototypes(const SyntheticDigitsConfig& config) {
  check_config(config);
  Rng rng = Rng(config.seed).fork(0xD161);
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(config.num_classes);
  for (std::size_t cls = 0; cls < config.num_classes; ++cls) {
    std::vector<float> img(config.image_size * config.image_size);
    for (auto& v : img) v = static_cast<float>(rng.uniform());
    box_blur(img, config.image_size, 2);
    normalize_unit(img);
    prototypes.push_back(std::move(img));
  }
  return prototypes;
}

FederatedDataset make_fmnist_clustered(const SyntheticDigitsConfig& config) {
  check_config(config);
  if (config.num_classes != 10) {
    throw std::invalid_argument("make_fmnist_clustered: requires 10 classes");
  }
  const auto prototypes = make_digit_prototypes(config);
  FederatedDataset ds;
  ds.name = config.relax_max > 0.0 ? "fmnist-clustered-relaxed" : "fmnist-clustered";
  ds.num_classes = config.num_classes;
  ds.num_clusters = kFmnistClusterClasses.size();
  ds.element_shape = {1, config.image_size, config.image_size};

  Rng root(config.seed);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    Rng rng = root.fork(0xC11E0000ULL + i);
    ClientData client;
    client.client_id = static_cast<int>(i);
    client.true_cluster = static_cast<int>(i % ds.num_clusters);
    client.element_shape = ds.element_shape;
    const auto& own_classes = kFmnistClusterClasses[static_cast<std::size_t>(client.true_cluster)];

    const double relax_fraction = config.relax_max > 0.0
                                      ? rng.uniform(config.relax_min, config.relax_max)
                                      : 0.0;
    for (std::size_t s = 0; s < config.samples_per_client; ++s) {
      int cls;
      if (relax_fraction > 0.0 && rng.bernoulli(relax_fraction)) {
        // Foreign sample: uniform over classes outside the own cluster.
        do {
          cls = static_cast<int>(rng.index(config.num_classes));
        } while (cluster_of_class(cls) == client.true_cluster);
      } else {
        cls = own_classes[rng.index(own_classes.size())];
      }
      append_sample(client, prototypes, cls, config, rng);
    }
    train_test_split(client, config.test_fraction, rng);
    ds.clients.push_back(std::move(client));
  }
  ds.validate();
  return ds;
}

FederatedDataset make_fmnist_by_author(const SyntheticDigitsConfig& config,
                                       double class_concentration) {
  check_config(config);
  if (class_concentration <= 0.0) {
    throw std::invalid_argument("make_fmnist_by_author: non-positive concentration");
  }
  const auto prototypes = make_digit_prototypes(config);
  FederatedDataset ds;
  ds.name = "fmnist-by-author";
  ds.num_classes = config.num_classes;
  ds.num_clusters = 1;  // no synthetic cluster structure
  ds.element_shape = {1, config.image_size, config.image_size};

  Rng root(config.seed);
  for (std::size_t i = 0; i < config.num_clients; ++i) {
    Rng rng = root.fork(0xA0700000ULL + i);
    ClientData client;
    client.client_id = static_cast<int>(i);
    client.true_cluster = 0;
    client.element_shape = ds.element_shape;
    const std::vector<double> class_probs = rng.dirichlet(config.num_classes,
                                                          class_concentration);
    for (std::size_t s = 0; s < config.samples_per_client; ++s) {
      const int cls = static_cast<int>(rng.weighted_index(class_probs));
      append_sample(client, prototypes, cls, config, rng);
    }
    train_test_split(client, config.test_fraction, rng);
    ds.clients.push_back(std::move(client));
  }
  ds.validate();
  return ds;
}

}  // namespace specdag::data
