// Synthetic stand-in for the FEMNIST handwriting dataset (see DESIGN.md §2).
//
// Each class is a smoothed random prototype image; samples are the prototype
// plus per-sample jitter (Gaussian pixel noise and a small random shift).
// The generator supports the paper's three FMNIST variants:
//   * FMNIST-clustered: clients are synthetically clustered by class groups
//     {0,1,2,3}, {4,5,6}, {7,8,9} (paper §5.1.1).
//   * relaxed FMNIST-clustered: each cluster additionally contains 15–20%
//     samples from foreign clusters (paper §5.3.1, Figure 8).
//   * FMNIST by author: every client draws from all classes with a
//     per-client Dirichlet class distribution, emulating the original
//     author-level split (used by the poisoning and scalability experiments).
#pragma once

#include "data/dataset.hpp"

namespace specdag::data {

struct SyntheticDigitsConfig {
  std::size_t image_size = 16;       // square, single channel
  std::size_t num_classes = 10;
  std::size_t num_clients = 30;
  std::size_t samples_per_client = 60;
  double noise_stddev = 0.25;
  std::size_t max_shift = 2;         // random translation in pixels
  double test_fraction = 0.1;        // paper: 90:10 split
  // Relaxation: fraction of each client's samples drawn from foreign
  // clusters, uniform in [relax_min, relax_max]. Zero disables relaxation.
  double relax_min = 0.0;
  double relax_max = 0.0;
  std::uint64_t seed = 42;
};

// Class prototypes for the generator — exposed for tests (separability) and
// for rendering examples.
std::vector<std::vector<float>> make_digit_prototypes(const SyntheticDigitsConfig& config);

// The paper's synthetic clustering into {0,1,2,3}, {4,5,6}, {7,8,9}.
extern const std::vector<std::vector<int>> kFmnistClusterClasses;

// FMNIST-clustered (relaxed when relax_max > 0). Clients are assigned to the
// three clusters round-robin so each cluster holds num_clients/3 clients.
FederatedDataset make_fmnist_clustered(const SyntheticDigitsConfig& config);

// FMNIST "by author": no cluster structure; per-client Dirichlet class mix
// with concentration `class_concentration` (lower = more skewed).
FederatedDataset make_fmnist_by_author(const SyntheticDigitsConfig& config,
                                       double class_concentration = 5.0);

}  // namespace specdag::data
