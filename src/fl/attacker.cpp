#include "fl/attacker.hpp"

#include <stdexcept>

namespace specdag::fl {

RandomWeightAttacker::RandomWeightAttacker(int publisher_id, std::size_t model_size,
                                           RandomWeightAttackerConfig config, Rng rng)
    : publisher_id_(publisher_id), model_size_(model_size), config_(config), rng_(rng) {
  if (model_size == 0) throw std::invalid_argument("RandomWeightAttacker: zero model size");
  if (config.transactions_per_round == 0) {
    throw std::invalid_argument("RandomWeightAttacker: zero rate");
  }
  if (config.num_parents == 0) {
    throw std::invalid_argument("RandomWeightAttacker: zero parents");
  }
  selector_.set_walk_start(tipsel::WalkStart::kGenesis);
}

std::vector<dag::TxId> RandomWeightAttacker::attack(dag::Dag& dag, std::size_t round) {
  std::vector<dag::TxId> published;
  for (std::size_t t = 0; t < config_.transactions_per_round; ++t) {
    const std::vector<dag::TxId> parents =
        selector_.select_tips(dag, config_.num_parents, rng_);
    nn::WeightVector weights(model_size_);
    for (auto& w : weights) {
      w = static_cast<float>(rng_.normal(0.0, config_.weight_stddev));
    }
    published.push_back(dag.add_transaction(
        parents, std::make_shared<const nn::WeightVector>(std::move(weights)),
        publisher_id_, round, /*poisoned_publisher=*/true));
  }
  return published;
}

}  // namespace specdag::fl
