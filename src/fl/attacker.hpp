// The paper's first §4.4 threat model: an attacker that submits transactions
// with random model weights to waste peers' compute and, at high rates,
// take over the consensus.
//
// A rational attacker of this kind "would likely not use the accuracy-aware
// tip selection" (paper §4.4) — targeting its own poisoned subgraph would
// limit the blast radius — so the attacker approves tips via the uniformly
// random walk.
//
// Attack payloads publish through Dag::add_transaction and are therefore
// interned in the DAG's ModelStore like every honest payload: payload_hash
// is defined for each junk transaction (so the sharded evaluation cache
// covers them), replayed junk dedups, and noise that does not delta-compress
// falls back to a raw anchor. tests/test_attacks.cpp pins this down.
#pragma once

#include "dag/dag.hpp"
#include "tipsel/tip_selector.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::fl {

struct RandomWeightAttackerConfig {
  // Transactions injected per attack step.
  std::size_t transactions_per_round = 1;
  // Random weights are drawn from N(0, stddev), matching typical init scale
  // so they are not trivially filtered by magnitude.
  double weight_stddev = 0.1;
  std::size_t num_parents = 2;
};

class RandomWeightAttacker {
 public:
  // `publisher_id` identifies the attacker's transactions; use an id outside
  // the honest client range so evaluation metrics can separate them.
  RandomWeightAttacker(int publisher_id, std::size_t model_size,
                       RandomWeightAttackerConfig config, Rng rng);

  // Publishes the configured number of random-weight transactions,
  // approving tips chosen by a uniformly random walk. Returns the new ids.
  std::vector<dag::TxId> attack(dag::Dag& dag, std::size_t round);

  int publisher_id() const { return publisher_id_; }

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  int publisher_id_;
  std::size_t model_size_;
  RandomWeightAttackerConfig config_;
  Rng rng_;
  tipsel::RandomTipSelector selector_;
};

}  // namespace specdag::fl
