#include "fl/dag_client.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace specdag::fl {

DagClient::DagClient(const data::ClientData* client, nn::ModelFactory factory,
                     DagClientConfig config, Rng rng,
                     std::shared_ptr<tipsel::AccuracyCache> shared_cache)
    : client_(client),
      factory_(std::move(factory)),
      config_(config),
      rng_(rng),
      model_(factory_()),
      eval_model_(factory_()),
      cache_(config.persistent_accuracy_cache
                 ? (shared_cache ? std::move(shared_cache)
                                 : std::make_shared<tipsel::TxAccuracyCache>())
                 : nullptr) {
  if (client_ == nullptr) throw std::invalid_argument("DagClient: null client data");
  if (config_.num_parents == 0) throw std::invalid_argument("DagClient: zero parents");
  if (client_->num_test() == 0) {
    throw std::invalid_argument("DagClient: client needs test data for the biased walk");
  }
  selector_ = make_selector();
}

double DagClient::evaluate_payload(const nn::WeightVector& weights) {
  return evaluate_weights_on_test(eval_model_, weights, *client_).accuracy;
}

std::unique_ptr<tipsel::TipSelector> DagClient::make_selector() {
  std::unique_ptr<tipsel::TipSelector> selector;
  switch (config_.selector) {
    case SelectorKind::kAccuracy:
      selector = std::make_unique<tipsel::AccuracyTipSelector>(
          config_.alpha, config_.normalization,
          [this](const nn::WeightVector& w) { return evaluate_payload(w); }, cache_);
      break;
    case SelectorKind::kRandom:
      selector = std::make_unique<tipsel::RandomTipSelector>();
      break;
    case SelectorKind::kWeighted:
      selector = std::make_unique<tipsel::WeightedTipSelector>(config_.alpha);
      break;
  }
  selector->set_walk_start(config_.walk_start);
  selector->set_start_depth(config_.start_depth_min, config_.start_depth_max);
  return selector;
}

void DagClient::invalidate_cache() {
  if (cache_) cache_->clear();
}

void DagClient::set_visibility_mask(tipsel::VisibilityMask mask) {
  selector_->set_visibility_mask(std::move(mask));
}

dag::TxId DagClient::consensus_reference(const dag::Dag& dag) {
  const std::size_t walks = std::max<std::size_t>(1, config_.reference_walks);
  dag::TxId best = dag::kInvalidTx;
  double best_accuracy = -1.0;
  for (std::size_t w = 0; w < walks; ++w) {
    const std::vector<dag::TxId> tips = selector_->select_tips(dag, 1, rng_);
    const dag::TxId tip = tips.front();
    if (walks == 1) return tip;
    const double accuracy = evaluate_payload(*dag.weights(tip));
    if (accuracy > best_accuracy) {
      best_accuracy = accuracy;
      best = tip;
    }
  }
  return best;
}

WalkPhase DagClient::prepare_walks(const dag::Dag& dag) {
  WalkPhase phase;
  DagRoundResult& result = phase.result;
  result.client_id = client_->client_id;

  // 1. Biased random walk selects the tips to approve.
  {
    obs::ScopedSpan span("tipsel",
                         {{"client", static_cast<std::uint64_t>(client_->client_id)}});
    result.parents = selector_->select_tips(dag, config_.num_parents, rng_);
    result.walk_stats = selector_->last_stats();
  }

  // 2. Average the selected models. (A single parent — duplicate walks — is
  //    a plain continuation of that model.)
  std::vector<dag::WeightsPtr> payloads;
  std::vector<const nn::WeightVector*> ptrs;
  for (dag::TxId tip : result.parents) {
    payloads.push_back(dag.weights(tip));
    ptrs.push_back(payloads.back().get());
  }
  phase.averaged = nn::average_weights(ptrs);

  // 3. Deterministic fork for local batch sampling. `fork` is a pure
  //    function of the root seed — it does not advance rng_ — so the fork's
  //    position relative to the reference walk is immaterial.
  phase.train_rng = rng_.fork(0x7EA10000ULL + dag.size());

  // 4. Reference walk for the publish gate (paper §4.1).
  {
    obs::ScopedSpan span("tipsel.reference",
                         {{"client", static_cast<std::uint64_t>(client_->client_id)}});
    result.reference = consensus_reference(dag);
  }
  const tipsel::WalkStats ref_stats = selector_->last_stats();
  result.walk_stats.steps += ref_stats.steps;
  result.walk_stats.evaluations += ref_stats.evaluations;
  result.walk_stats.seconds += ref_stats.seconds;
  phase.reference_weights = dag.weights(result.reference);
  return phase;
}

DagRoundResult DagClient::prepare_round(const dag::Dag& dag) {
  WalkPhase phase = prepare_walks(dag);
  DagRoundResult result = std::move(phase.result);

  // Train the averaged model on local data.
  model_.set_weights(phase.averaged);
  Timer train_timer;
  {
    obs::ScopedSpan span("train",
                         {{"client", static_cast<std::uint64_t>(client_->client_id)}});
    result.train_loss = train_local_sgd(model_, *client_, config_.train, phase.train_rng);
  }
  result.train_seconds = train_timer.elapsed_seconds();
  result.trained_weights = std::make_shared<const nn::WeightVector>(model_.get_weights());
  result.averaged_base = std::make_shared<const nn::WeightVector>(std::move(phase.averaged));

  // Publish gate inputs: trained and reference model on local test data.
  Timer eval_timer;
  {
    obs::ScopedSpan span("eval",
                         {{"client", static_cast<std::uint64_t>(client_->client_id)}});
    result.trained_eval =
        evaluate_weights_on_test(eval_model_, *result.trained_weights, *client_);
  }
  result.eval_seconds = eval_timer.elapsed_seconds();
  eval_timer.reset();
  {
    obs::ScopedSpan span("eval",
                         {{"client", static_cast<std::uint64_t>(client_->client_id)}});
    result.reference_eval =
        evaluate_weights_on_test(eval_model_, *phase.reference_weights, *client_);
  }
  result.eval_seconds += eval_timer.elapsed_seconds();
  return result;
}

dag::TxId DagClient::commit_round(dag::Dag& dag, const DagRoundResult& result,
                                  std::size_t round) {
  if (!result.trained_weights) {
    throw std::logic_error("DagClient::commit_round: no prepared round");
  }
  if (config_.publish_gate && !result.passes_gate(config_.publish_if_equal)) {
    return dag::kInvalidTx;
  }
  return dag.add_transaction(result.parents, result.trained_weights, client_->client_id,
                             round, client_->poisoned, result.averaged_base);
}

DagRoundResult DagClient::run_round(dag::Dag& dag, std::size_t round) {
  DagRoundResult result = prepare_round(dag);
  result.published = commit_round(dag, result, round);
  return result;
}

}  // namespace specdag::fl
