// A Specializing-DAG client (paper §4, Figure 1). Each round the client:
//   1. runs the biased random walk twice to select two tips,
//   2. averages the two tip models,
//   3. trains the averaged model on its local data,
//   4. obtains a consensus/reference model via another biased walk and
//      publishes its trained model only if it performs at least as well on
//      the local test data.
#pragma once

#include <memory>

#include "dag/dag.hpp"
#include "data/dataset.hpp"
#include "fl/evaluation.hpp"
#include "fl/trainer.hpp"
#include "tipsel/tip_selector.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::fl {

enum class SelectorKind {
  kAccuracy,  // the paper's contribution
  kRandom,    // "random tip selector" baseline (poisoning experiments)
  kWeighted,  // classic cumulative-weight Tangle walk
};

struct DagClientConfig {
  TrainConfig train;
  SelectorKind selector = SelectorKind::kAccuracy;
  double alpha = 10.0;
  tipsel::Normalization normalization = tipsel::Normalization::kStandard;
  std::size_t num_parents = 2;
  // Where walks begin: at genesis (default — specialization emerges from the
  // bias alone) or at a depth-sampled transaction 15-25 behind the tips
  // (bounds the walk cost; used by the §5.3.5 scalability measurements).
  tipsel::WalkStart walk_start = tipsel::WalkStart::kGenesis;
  std::size_t start_depth_min = 15;
  std::size_t start_depth_max = 25;
  // Publish gate (paper §4.1). If disabled the client always publishes
  // (ablation). `publish_if_equal` avoids stalling once accuracies saturate.
  bool publish_gate = true;
  bool publish_if_equal = true;
  // Walks used to find the consensus/reference model: the best-performing
  // tip (on local test data) of `reference_walks` independent walks. 1 is
  // the paper's plain semantics; 3+ hardens the publish gate against
  // attackers that shade tips with junk transactions (a single reference
  // walk forced into junk would otherwise wave every update through).
  std::size_t reference_walks = 1;
  // Reuse model evaluations across rounds (safe: payloads and local data are
  // immutable). Disable to reproduce the paper's walk-cost measurements.
  bool persistent_accuracy_cache = true;
};

struct DagRoundResult {
  int client_id = -1;
  dag::TxId published = dag::kInvalidTx;   // kInvalidTx if the gate rejected
  std::vector<dag::TxId> parents;          // the approved tips
  dag::TxId reference = dag::kInvalidTx;   // consensus transaction used by the gate
  dag::WeightsPtr trained_weights;         // payload of the prepared transaction
  // Average of the parents' payloads — the training start point. Kept so a
  // commit can hand the payload store its delta-encode base instead of the
  // store re-materializing and re-averaging the parents.
  dag::WeightsPtr averaged_base;
  EvalResult trained_eval;                 // trained model on local test data
  EvalResult reference_eval;               // reference model on local test data
  double train_loss = 0.0;
  tipsel::WalkStats walk_stats;            // aggregated over all walks this round
  // Wall time inside local SGD and inside the out-of-walk model evaluations
  // (trained + reference + reference-walk candidates). Walk-internal
  // evaluation time is part of walk_stats.seconds. Feeds sim::PhaseTimings.
  double train_seconds = 0.0;
  double eval_seconds = 0.0;

  bool did_publish() const { return published != dag::kInvalidTx; }

  // The publish gate's verdict (used by simulators that defer the commit,
  // e.g. under delayed transaction visibility).
  bool passes_gate(bool publish_if_equal) const {
    return publish_if_equal ? trained_eval.accuracy >= reference_eval.accuracy
                            : trained_eval.accuracy > reference_eval.accuracy;
  }
};

// Intermediate state of a round after the walk phases but before training.
// Produced by DagClient::prepare_walks so a batched executor can fuse the
// train/eval phases of many clients: training from `averaged` with
// `train_rng` and evaluating the trained + reference weights completes the
// round bit-identically to prepare_round.
struct WalkPhase {
  DagRoundResult result;              // parents/reference/walk_stats filled
  nn::WeightVector averaged;          // training start point (tip average)
  dag::WeightsPtr reference_weights;  // payload of `result.reference`
  Rng train_rng{0};                   // consumed by local batch sampling
};

class DagClient {
 public:
  // `client` must outlive the DagClient. The client trains a private model
  // replica created by `factory`. `shared_cache` (optional) is a view into
  // the simulation-wide sharded evaluation cache
  // (store::ClientEvalCacheView); without one the client falls back to a
  // private per-transaction map. Either way the cache is only consulted
  // when `config.persistent_accuracy_cache` is set.
  DagClient(const data::ClientData* client, nn::ModelFactory factory, DagClientConfig config,
            Rng rng, std::shared_ptr<tipsel::AccuracyCache> shared_cache = nullptr);

  // Executes steps 1-4. Mutates only the client's own state; `publish` on
  // the DAG happens through the returned result when the caller commits it
  // (see commit_round), so a simulator can model transaction visibility.
  DagRoundResult prepare_round(const dag::Dag& dag);

  // The walk-only phases of prepare_round: tip selection, payload averaging,
  // the train_rng fork, and the reference walk. Local training consumes only
  // the forked train_rng (never rng_ or the accuracy cache), so running the
  // reference walk before training draws exactly the same random sequence as
  // prepare_round — results stay bit-identical. prepare_round itself is a
  // thin wrapper over this plus the scalar train/eval finish; batched
  // executors fuse the finish across many clients instead.
  WalkPhase prepare_walks(const dag::Dag& dag);

  // Appends the prepared transaction to the DAG if the gate passed.
  // Returns the published id (or kInvalidTx).
  dag::TxId commit_round(dag::Dag& dag, const DagRoundResult& result, std::size_t round);

  // Convenience: prepare + commit in one step (asynchronous deployment mode).
  DagRoundResult run_round(dag::Dag& dag, std::size_t round);

  // Invalidate cached model evaluations (required after the client's local
  // data changes, e.g. a poisoning attack at round 100).
  void invalidate_cache();

  // Restricts this client's walks to the masked subgraph of the shared DAG
  // (empty mask = full visibility). Simulators use this to model network
  // partitions: during a partition a client only sees its own group's new
  // transactions.
  void set_visibility_mask(tipsel::VisibilityMask mask);

  const data::ClientData& client() const { return *client_; }
  const DagClientConfig& config() const { return config_; }

  // Consensus model for this client: tip reached by its biased walk.
  dag::TxId consensus_reference(const dag::Dag& dag);

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  std::unique_ptr<tipsel::TipSelector> make_selector();
  double evaluate_payload(const nn::WeightVector& weights);

  const data::ClientData* client_;
  nn::ModelFactory factory_;
  DagClientConfig config_;
  Rng rng_;
  nn::Sequential model_;       // training replica
  nn::Sequential eval_model_;  // separate replica so walks don't clobber training state
  std::shared_ptr<tipsel::AccuracyCache> cache_;
  std::unique_ptr<tipsel::TipSelector> selector_;
};

}  // namespace specdag::fl
