#include "fl/evaluation.hpp"

#include <algorithm>
#include <stdexcept>

namespace specdag::fl {

EvalResult evaluate_model(nn::Sequential& model, const std::vector<float>& x,
                          const std::vector<int>& y, const Shape& element_shape,
                          std::size_t chunk) {
  if (y.empty()) throw std::invalid_argument("evaluate_model: empty dataset");
  if (chunk == 0) throw std::invalid_argument("evaluate_model: zero chunk");
  EvalResult result;
  result.num_examples = y.size();
  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < y.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, y.size());
    std::vector<std::size_t> indices(end - begin);
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = begin + i;
    data::Batch batch = data::gather_batch(x, y, element_shape, indices);
    const Tensor logits = model.forward(batch.inputs, /*train=*/false);
    loss_sum += nn::softmax_cross_entropy_loss(logits, batch.labels) *
                static_cast<double>(batch.labels.size());
    const std::vector<int> preds = nn::predict_classes(logits);
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  result.loss = loss_sum / static_cast<double>(y.size());
  result.accuracy = static_cast<double>(correct) / static_cast<double>(y.size());
  return result;
}

EvalResult evaluate_weights_on_test(nn::Sequential& model, const nn::WeightVector& weights,
                                    const data::ClientData& client) {
  if (client.num_test() == 0) {
    throw std::invalid_argument("evaluate_weights_on_test: client has no test data");
  }
  model.set_weights(weights);
  return evaluate_model(model, client.test_x, client.test_y, client.element_shape);
}

std::vector<EvalResult> evaluate_models_batched(nn::BatchExecutor& exec,
                                                const std::vector<const nn::WeightVector*>& models,
                                                const data::ClientData& client,
                                                std::size_t chunk) {
  if (models.empty()) throw std::invalid_argument("evaluate_models_batched: no models");
  if (chunk == 0) throw std::invalid_argument("evaluate_models_batched: zero chunk");
  if (client.num_test() == 0) {
    throw std::invalid_argument("evaluate_models_batched: client has no test data");
  }
  const std::vector<int>& y = client.test_y;
  const std::size_t k = models.size();
  exec.begin(k);
  for (std::size_t l = 0; l < k; ++l) exec.load_weights(l, *models[l]);
  std::vector<EvalResult> results(k);
  std::vector<double> loss_sums(k, 0.0);
  std::vector<std::size_t> correct(k, 0);
  std::vector<int> preds;
  for (std::size_t begin = 0; begin < y.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, y.size());
    std::vector<std::size_t> indices(end - begin);
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = begin + i;
    data::Batch batch =
        data::gather_batch(client.test_x, y, client.element_shape, indices);
    exec.forward_shared(batch.inputs, /*train=*/false);
    for (std::size_t l = 0; l < k; ++l) {
      loss_sums[l] +=
          exec.loss(l, batch.labels) * static_cast<double>(batch.labels.size());
      exec.predict(l, preds);
      for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == batch.labels[i]) ++correct[l];
      }
    }
  }
  for (std::size_t l = 0; l < k; ++l) {
    results[l].num_examples = y.size();
    results[l].loss = loss_sums[l] / static_cast<double>(y.size());
    results[l].accuracy = static_cast<double>(correct[l]) / static_cast<double>(y.size());
  }
  return results;
}

double flip_rate(nn::Sequential& model, const nn::WeightVector& weights,
                 const data::ClientData& client, int class_a, int class_b) {
  if (class_a == class_b) throw std::invalid_argument("flip_rate: identical classes");
  if (client.num_test() == 0) return 0.0;
  model.set_weights(weights);
  const data::Batch batch =
      data::full_batch(client.test_x, client.test_y, client.element_shape);
  const Tensor logits = model.forward(batch.inputs, /*train=*/false);
  const std::vector<int> preds = nn::predict_classes(logits);
  std::size_t in_classes = 0, flipped = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const int label = batch.labels[i];
    if (label != class_a && label != class_b) continue;
    ++in_classes;
    const int other = label == class_a ? class_b : class_a;
    if (preds[i] == other) ++flipped;
  }
  return in_classes == 0 ? 0.0
                         : static_cast<double>(flipped) / static_cast<double>(in_classes);
}

}  // namespace specdag::fl
