// Model evaluation on client-local data. Central to the whole system: the
// accuracy-biased tip selection evaluates candidate models on local *test*
// data at every walk step, and the publish gate compares trained models
// against the consensus reference the same way.
#pragma once

#include "data/dataset.hpp"
#include "nn/batch_executor.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"

namespace specdag::fl {

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  std::size_t num_examples = 0;
};

// Evaluates `model` (with its current weights) on (x, y). Processes the data
// in chunks of `chunk` examples to bound peak memory.
EvalResult evaluate_model(nn::Sequential& model, const std::vector<float>& x,
                          const std::vector<int>& y, const Shape& element_shape,
                          std::size_t chunk = 64);

// Loads `weights` into `model` and evaluates on the client's test partition.
EvalResult evaluate_weights_on_test(nn::Sequential& model, const nn::WeightVector& weights,
                                    const data::ClientData& client);

// Evaluates several weight vectors on one client's test partition in a single
// batched pass: each test chunk is gathered once and forwarded through all
// models simultaneously (shared-input multi-RHS path). Per model, the chunk
// boundaries, loss, and accuracy arithmetic replicate evaluate_model exactly,
// so results are bit-identical to evaluate_weights_on_test per weight vector.
std::vector<EvalResult> evaluate_models_batched(nn::BatchExecutor& exec,
                                                const std::vector<const nn::WeightVector*>& models,
                                                const data::ClientData& client,
                                                std::size_t chunk = 64);

// Flipped-prediction rate (Figure 12): among the client's test samples
// labeled `class_a` or `class_b`, the fraction predicted as the respective
// other class. Returns 0 when the client holds no samples of either class.
double flip_rate(nn::Sequential& model, const nn::WeightVector& weights,
                 const data::ClientData& client, int class_a, int class_b);

}  // namespace specdag::fl
