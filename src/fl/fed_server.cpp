#include "fl/fed_server.hpp"

#include <stdexcept>

namespace specdag::fl {

FedServer::FedServer(nn::ModelFactory factory, FedServerConfig config, Rng rng)
    : factory_(std::move(factory)), config_(std::move(config)), rng_(rng), model_(factory_()) {
  if (config_.proximal_mu < 0.0) throw std::invalid_argument("FedServer: negative mu");
  Rng init_rng = rng_.fork(0x1217);
  model_.init_params(init_rng);
  global_ = model_.get_weights();
}

void FedServer::set_global_weights(nn::WeightVector weights) {
  if (weights.size() != global_.size()) {
    throw std::invalid_argument("FedServer::set_global_weights: size mismatch");
  }
  global_ = std::move(weights);
}

FedRoundResult FedServer::run_round(const data::FederatedDataset& dataset,
                                    const std::vector<std::size_t>& client_indices) {
  if (client_indices.empty()) throw std::invalid_argument("FedServer: no clients selected");
  FedRoundResult result;
  std::vector<nn::WeightVector> updates;
  std::vector<double> coefficients;
  updates.reserve(client_indices.size());

  for (std::size_t idx : client_indices) {
    if (idx >= dataset.clients.size()) {
      throw std::out_of_range("FedServer: client index out of range");
    }
    const data::ClientData& client = dataset.clients[idx];
    result.client_ids.push_back(client.client_id);

    // Figure 9 semantics: evaluate the distributed global model on the
    // client's local test data before local training.
    result.client_evals.push_back(evaluate_weights_on_test(model_, global_, client));

    model_.set_weights(global_);
    Rng train_rng = rng_.fork(0x7E000000ULL +
                              static_cast<std::uint64_t>(client.client_id) * 1000003ULL +
                              updates.size());
    if (config_.proximal_mu > 0.0) {
      nn::ProximalSgd prox(config_.train.learning_rate, config_.proximal_mu, global_);
      train_local(model_, client, config_.train, prox, train_rng);
    } else {
      train_local_sgd(model_, client, config_.train, train_rng);
    }
    updates.push_back(model_.get_weights());
    coefficients.push_back(config_.weight_by_samples
                               ? static_cast<double>(client.num_train())
                               : 1.0);
  }

  std::vector<const nn::WeightVector*> update_ptrs;
  update_ptrs.reserve(updates.size());
  for (const auto& u : updates) update_ptrs.push_back(&u);
  global_ = nn::weighted_average_weights(update_ptrs, coefficients);
  return result;
}

FedRoundResult FedServer::run_round(const data::FederatedDataset& dataset,
                                    std::size_t clients_per_round) {
  if (clients_per_round == 0 || clients_per_round > dataset.clients.size()) {
    throw std::invalid_argument("FedServer: bad clients_per_round");
  }
  const std::vector<std::size_t> selected =
      rng_.sample_without_replacement(dataset.clients.size(), clients_per_round);
  return run_round(dataset, selected);
}

std::vector<EvalResult> FedServer::evaluate_all(const data::FederatedDataset& dataset) {
  std::vector<EvalResult> evals;
  evals.reserve(dataset.clients.size());
  for (const auto& client : dataset.clients) {
    evals.push_back(evaluate_weights_on_test(model_, global_, client));
  }
  return evals;
}

}  // namespace specdag::fl
