// Centralized federated learning baselines: FedAvg (McMahan et al.) and
// FedProx (Li et al.). One server class covers both — FedProx is FedAvg
// whose clients optimize the proximal objective (mu > 0).
#pragma once

#include "data/dataset.hpp"
#include "fl/evaluation.hpp"
#include "fl/trainer.hpp"
#include "nn/model.hpp"

namespace specdag::fl {

struct FedServerConfig {
  TrainConfig train;
  double proximal_mu = 0.0;  // 0 = FedAvg; > 0 = FedProx
  // FedAvg aggregation weighted by client sample counts (standard). Uniform
  // averaging is available for ablations.
  bool weight_by_samples = true;
};

struct FedRoundResult {
  // Per selected client: local-test evaluation of the *global* model as
  // distributed at the start of the round (this is what Figure 9 plots for
  // FedAvg).
  std::vector<EvalResult> client_evals;
  std::vector<int> client_ids;
};

class FedServer {
 public:
  FedServer(nn::ModelFactory factory, FedServerConfig config, Rng rng);

  // Runs one synchronous round over the given clients: distribute global
  // weights, train locally, aggregate.
  FedRoundResult run_round(const data::FederatedDataset& dataset,
                           const std::vector<std::size_t>& client_indices);

  // Samples `clients_per_round` clients uniformly and runs a round.
  FedRoundResult run_round(const data::FederatedDataset& dataset,
                           std::size_t clients_per_round);

  const nn::WeightVector& global_weights() const { return global_; }
  void set_global_weights(nn::WeightVector weights);

  // Evaluates the current global model on every client's test partition.
  std::vector<EvalResult> evaluate_all(const data::FederatedDataset& dataset);

 private:
  nn::ModelFactory factory_;
  FedServerConfig config_;
  Rng rng_;
  nn::Sequential model_;  // scratch replica reused across rounds
  nn::WeightVector global_;
};

}  // namespace specdag::fl
