#include "fl/gossip.hpp"

#include <stdexcept>

namespace specdag::fl {

GossipNetwork::GossipNetwork(const data::FederatedDataset* dataset, nn::ModelFactory factory,
                             GossipConfig config, Rng rng)
    : dataset_(dataset),
      factory_(std::move(factory)),
      config_(std::move(config)),
      rng_(rng),
      model_(factory_()) {
  if (dataset_ == nullptr) throw std::invalid_argument("GossipNetwork: null dataset");
  // All clients start from the same initialization (comparable to the
  // genesis model of the DAG).
  Rng init_rng = rng_.fork(0x6055);
  model_.init_params(init_rng);
  weights_.assign(dataset_->clients.size(), model_.get_weights());
}

const nn::WeightVector& GossipNetwork::client_weights(std::size_t idx) const {
  if (idx >= weights_.size()) throw std::out_of_range("GossipNetwork: client index");
  return weights_[idx];
}

std::vector<EvalResult> GossipNetwork::run_round(const std::vector<std::size_t>& active) {
  if (active.empty()) throw std::invalid_argument("GossipNetwork: no active clients");
  std::vector<EvalResult> evals;
  evals.reserve(active.size());
  for (std::size_t idx : active) {
    if (idx >= weights_.size()) throw std::out_of_range("GossipNetwork: client index");
    // Pull a random peer (not self) and merge by averaging.
    std::size_t peer = idx;
    if (weights_.size() > 1) {
      do {
        peer = rng_.index(weights_.size());
      } while (peer == idx);
    }
    nn::WeightVector merged = nn::average_weights(weights_[idx], weights_[peer]);
    model_.set_weights(merged);
    Rng train_rng = rng_.fork(0x60551AULL + idx * 7919ULL);
    train_local_sgd(model_, dataset_->clients[idx], config_.train, train_rng);
    weights_[idx] = model_.get_weights();
    evals.push_back(
        evaluate_weights_on_test(model_, weights_[idx], dataset_->clients[idx]));
  }
  return evals;
}

}  // namespace specdag::fl
