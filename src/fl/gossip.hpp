// Gossip-learning baseline (paper §3.2): fully decentralized averaging
// without a ledger. Each client keeps a private model; every round an active
// client pulls the model of a uniformly random peer, averages it with its
// own, and trains the result on local data. Used by the ablation benches to
// contrast DAG-mediated against direct peer-to-peer model exchange.
#pragma once

#include "data/dataset.hpp"
#include "fl/evaluation.hpp"
#include "fl/trainer.hpp"
#include "nn/model.hpp"

namespace specdag::fl {

struct GossipConfig {
  TrainConfig train;
};

class GossipNetwork {
 public:
  GossipNetwork(const data::FederatedDataset* dataset, nn::ModelFactory factory,
                GossipConfig config, Rng rng);

  // Runs one round: every client in `active` gossips and trains once.
  // Returns the post-training local-test evaluation per active client.
  std::vector<EvalResult> run_round(const std::vector<std::size_t>& active);

  const nn::WeightVector& client_weights(std::size_t idx) const;

 private:
  const data::FederatedDataset* dataset_;
  nn::ModelFactory factory_;
  GossipConfig config_;
  Rng rng_;
  nn::Sequential model_;  // scratch replica
  std::vector<nn::WeightVector> weights_;  // one model per client
};

}  // namespace specdag::fl
