#include "fl/trainer.hpp"

#include <stdexcept>

#include "nn/loss.hpp"

namespace specdag::fl {

double train_local(nn::Sequential& model, const data::ClientData& client,
                   const TrainConfig& config, nn::Optimizer& optimizer, Rng& rng) {
  if (client.num_train() == 0) throw std::invalid_argument("train_local: no training data");
  if (config.local_epochs == 0 || config.local_batches == 0 || config.batch_size == 0) {
    throw std::invalid_argument("train_local: zero epochs/batches/batch size");
  }
  double loss_sum = 0.0;
  std::size_t batches_done = 0;
  for (std::size_t epoch = 0; epoch < config.local_epochs; ++epoch) {
    const std::vector<data::Batch> batches =
        data::sample_batches(client.train_x, client.train_y, client.element_shape,
                             config.batch_size, config.local_batches, rng);
    for (const data::Batch& batch : batches) {
      const Tensor logits = model.forward(batch.inputs, /*train=*/true);
      nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
      model.backward(loss.grad_logits);
      if (config.freeze_prefix_params > 0) {
        auto params = model.params();
        const std::size_t frozen = std::min(config.freeze_prefix_params, params.size());
        for (std::size_t p = 0; p < frozen; ++p) params[p].grad->fill(0.0f);
      }
      optimizer.step(model);
      loss_sum += loss.loss;
      ++batches_done;
    }
  }
  return loss_sum / static_cast<double>(batches_done);
}

double train_local_sgd(nn::Sequential& model, const data::ClientData& client,
                       const TrainConfig& config, Rng& rng) {
  nn::Sgd sgd(config.learning_rate);
  return train_local(model, client, config, sgd, rng);
}

void train_local_batched(nn::BatchExecutor& exec, std::vector<BatchTrainLane>& lanes,
                         const TrainConfig& config) {
  if (lanes.empty()) throw std::invalid_argument("train_local_batched: no lanes");
  if (config.local_epochs == 0 || config.local_batches == 0 || config.batch_size == 0) {
    throw std::invalid_argument("train_local_batched: zero epochs/batches/batch size");
  }
  if (config.learning_rate <= 0.0) {
    throw std::invalid_argument("train_local_batched: non-positive learning rate");
  }
  const std::size_t k = lanes.size();
  exec.begin(k);
  for (std::size_t l = 0; l < k; ++l) {
    if (lanes[l].client == nullptr || lanes[l].start == nullptr || lanes[l].rng == nullptr) {
      throw std::invalid_argument("train_local_batched: incomplete lane");
    }
    if (lanes[l].client->num_train() == 0) {
      throw std::invalid_argument("train_local_batched: no training data");
    }
    exec.load_weights(l, *lanes[l].start);
    lanes[l].train_loss = 0.0;
  }
  // Matches Sgd::step's double -> float narrowing of the learning rate.
  const float lr = static_cast<float>(config.learning_rate);
  std::vector<std::vector<data::Batch>> epoch_batches(k);
  std::vector<const Tensor*> inputs(k);
  for (std::size_t epoch = 0; epoch < config.local_epochs; ++epoch) {
    // Scalar train_local consumes one epoch's rng draws up front via
    // sample_batches, then trains without touching the rng — so sampling
    // every lane's epoch here preserves each lane's exact draw sequence.
    for (std::size_t l = 0; l < k; ++l) {
      epoch_batches[l] = data::sample_batches(lanes[l].client->train_x,
                                              lanes[l].client->train_y,
                                              lanes[l].client->element_shape,
                                              config.batch_size, config.local_batches,
                                              *lanes[l].rng);
    }
    for (std::size_t b = 0; b < config.local_batches; ++b) {
      for (std::size_t l = 0; l < k; ++l) inputs[l] = &epoch_batches[l][b].inputs;
      exec.forward(inputs, /*train=*/true);
      for (std::size_t l = 0; l < k; ++l) {
        lanes[l].train_loss += exec.loss_and_grad(l, epoch_batches[l][b].labels);
      }
      exec.backward();
      exec.sgd_step(lr, config.freeze_prefix_params);
    }
  }
  const double batches_done =
      static_cast<double>(config.local_epochs * config.local_batches);
  for (std::size_t l = 0; l < k; ++l) {
    lanes[l].train_loss /= batches_done;
    lanes[l].trained = exec.weights(l);
  }
}

}  // namespace specdag::fl
