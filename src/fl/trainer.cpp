#include "fl/trainer.hpp"

#include <stdexcept>

#include "nn/loss.hpp"

namespace specdag::fl {

double train_local(nn::Sequential& model, const data::ClientData& client,
                   const TrainConfig& config, nn::Optimizer& optimizer, Rng& rng) {
  if (client.num_train() == 0) throw std::invalid_argument("train_local: no training data");
  if (config.local_epochs == 0 || config.local_batches == 0 || config.batch_size == 0) {
    throw std::invalid_argument("train_local: zero epochs/batches/batch size");
  }
  double loss_sum = 0.0;
  std::size_t batches_done = 0;
  for (std::size_t epoch = 0; epoch < config.local_epochs; ++epoch) {
    const std::vector<data::Batch> batches =
        data::sample_batches(client.train_x, client.train_y, client.element_shape,
                             config.batch_size, config.local_batches, rng);
    for (const data::Batch& batch : batches) {
      const Tensor logits = model.forward(batch.inputs, /*train=*/true);
      nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.labels);
      model.backward(loss.grad_logits);
      if (config.freeze_prefix_params > 0) {
        auto params = model.params();
        const std::size_t frozen = std::min(config.freeze_prefix_params, params.size());
        for (std::size_t p = 0; p < frozen; ++p) params[p].grad->fill(0.0f);
      }
      optimizer.step(model);
      loss_sum += loss.loss;
      ++batches_done;
    }
  }
  return loss_sum / static_cast<double>(batches_done);
}

double train_local_sgd(nn::Sequential& model, const data::ClientData& client,
                       const TrainConfig& config, Rng& rng) {
  nn::Sgd sgd(config.learning_rate);
  return train_local(model, client, config, sgd, rng);
}

}  // namespace specdag::fl
