// Local training loop shared by every algorithm (DAG clients, FedAvg,
// FedProx, gossip). Matches the paper's Table 1 regime: a fixed number of
// local batches per epoch — independent of the client's dataset size, "in
// order to equalize the number of batches used for training per client".
#pragma once

#include "data/dataset.hpp"
#include "nn/batch_executor.hpp"
#include "nn/optimizer.hpp"

namespace specdag::fl {

struct TrainConfig {
  std::size_t local_epochs = 1;
  std::size_t local_batches = 10;  // batches per epoch
  std::size_t batch_size = 10;
  double learning_rate = 0.05;
  // Partial-layer training (the paper's future-work direction): the first
  // `freeze_prefix_params` parameter tensors (in layer order) are frozen —
  // their gradients are dropped before every optimizer step. 0 trains the
  // full model. E.g. 2 freezes the first Dense layer's weight and bias.
  std::size_t freeze_prefix_params = 0;
  // Max clients fused per BatchExecutor group ("train.batch" in scenario
  // specs). 0 disables batched execution entirely — the scalar per-client
  // path is the oracle the batched one is pinned against. Results are
  // bit-identical either way; this only trades memory for throughput.
  std::size_t batch = 16;
};

// Trains `model` in place on the client's train partition. Returns the mean
// training loss across all processed batches.
double train_local(nn::Sequential& model, const data::ClientData& client,
                   const TrainConfig& config, nn::Optimizer& optimizer, Rng& rng);

// Convenience overload constructing a plain SGD optimizer from the config.
double train_local_sgd(nn::Sequential& model, const data::ClientData& client,
                       const TrainConfig& config, Rng& rng);

// One client's slot in a fused training group.
struct BatchTrainLane {
  const data::ClientData* client = nullptr;       // training data source
  const nn::WeightVector* start = nullptr;        // initial weights
  Rng* rng = nullptr;                             // per-client batch-sampling rng
  // Outputs:
  double train_loss = 0.0;
  nn::WeightVector trained;
};

// Batched counterpart of train_local_sgd: trains every lane simultaneously
// through one BatchExecutor pass per layer op. Each lane's rng draws, batch
// order, and arithmetic are exactly what train_local_sgd would perform for
// that client alone, so `trained`/`train_loss` are bit-identical to the
// scalar path at any group size. The executor must be supported() and all
// lanes share `config` (same epochs/batches/batch_size, so every fused step
// sees identical shapes).
void train_local_batched(nn::BatchExecutor& exec, std::vector<BatchTrainLane>& lanes,
                         const TrainConfig& config);

}  // namespace specdag::fl
