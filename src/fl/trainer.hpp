// Local training loop shared by every algorithm (DAG clients, FedAvg,
// FedProx, gossip). Matches the paper's Table 1 regime: a fixed number of
// local batches per epoch — independent of the client's dataset size, "in
// order to equalize the number of batches used for training per client".
#pragma once

#include "data/dataset.hpp"
#include "nn/optimizer.hpp"

namespace specdag::fl {

struct TrainConfig {
  std::size_t local_epochs = 1;
  std::size_t local_batches = 10;  // batches per epoch
  std::size_t batch_size = 10;
  double learning_rate = 0.05;
  // Partial-layer training (the paper's future-work direction): the first
  // `freeze_prefix_params` parameter tensors (in layer order) are frozen —
  // their gradients are dropped before every optimizer step. 0 trains the
  // full model. E.g. 2 freezes the first Dense layer's weight and bias.
  std::size_t freeze_prefix_params = 0;
};

// Trains `model` in place on the client's train partition. Returns the mean
// training loss across all processed batches.
double train_local(nn::Sequential& model, const data::ClientData& client,
                   const TrainConfig& config, nn::Optimizer& optimizer, Rng& rng);

// Convenience overload constructing a plain SGD optimizer from the config.
double train_local_sgd(nn::Sequential& model, const data::ClientData& client,
                       const TrainConfig& config, Rng& rng);

}  // namespace specdag::fl
