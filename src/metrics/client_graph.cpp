#include "metrics/client_graph.hpp"

#include <stdexcept>

namespace specdag::metrics {

ClientGraph::ClientGraph(std::size_t num_clients) : n_(num_clients), w_(num_clients * num_clients, 0.0) {
  if (num_clients == 0) throw std::invalid_argument("ClientGraph: zero clients");
}

void ClientGraph::check(std::size_t a, std::size_t b) const {
  if (a >= n_ || b >= n_) throw std::out_of_range("ClientGraph: node index out of range");
}

double ClientGraph::weight(std::size_t a, std::size_t b) const {
  check(a, b);
  if (a == b) return 0.0;
  return w_[a * n_ + b];
}

void ClientGraph::add_weight(std::size_t a, std::size_t b, double delta) {
  check(a, b);
  if (a == b) throw std::invalid_argument("ClientGraph: self-loops not supported");
  if (delta < 0.0) throw std::invalid_argument("ClientGraph: negative weight delta");
  w_[a * n_ + b] += delta;
  w_[b * n_ + a] += delta;
}

double ClientGraph::degree(std::size_t a) const {
  check(a, a);
  double d = 0.0;
  for (std::size_t b = 0; b < n_; ++b) d += w_[a * n_ + b];
  return d;
}

double ClientGraph::total_weight() const {
  double total = 0.0;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) total += w_[a * n_ + b];
  }
  return total;
}

std::vector<std::size_t> ClientGraph::neighbors(std::size_t a) const {
  check(a, a);
  std::vector<std::size_t> nbrs;
  for (std::size_t b = 0; b < n_; ++b) {
    if (b != a && w_[a * n_ + b] > 0.0) nbrs.push_back(b);
  }
  return nbrs;
}

ClientGraph build_client_graph(const dag::Dag& dag, std::size_t num_clients) {
  ClientGraph graph(num_clients);
  for (dag::TxId id : dag.all_ids()) {
    const dag::Transaction tx = dag.transaction(id);
    if (tx.publisher < 0) continue;  // genesis
    const auto a = static_cast<std::size_t>(tx.publisher);
    // Publishers outside the known client range (e.g. external attackers)
    // carry no community information; skip their edges.
    if (a >= num_clients) continue;
    for (dag::TxId parent : tx.parents) {
      const dag::Transaction ptx = dag.transaction(parent);
      if (ptx.publisher < 0) continue;  // approval of genesis
      const auto b = static_cast<std::size_t>(ptx.publisher);
      if (b >= num_clients) continue;
      if (a != b) graph.add_weight(a, b, 1.0);
    }
  }
  return graph;
}

}  // namespace specdag::metrics
