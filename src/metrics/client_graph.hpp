// The derived client graph G_clients (paper §4.3).
//
// Nodes are the (known, fixed) participating clients. The edge weight
// between clients a and b is the number of transactions published by a that
// directly approve a transaction of b, or vice versa. Genesis approvals and
// self-approvals are excluded: they carry no information about communities.
#pragma once

#include <cstddef>
#include <vector>

#include "dag/dag.hpp"

namespace specdag::metrics {

// Dense symmetric weighted graph without self-loops.
class ClientGraph {
 public:
  explicit ClientGraph(std::size_t num_clients);

  std::size_t size() const { return n_; }

  double weight(std::size_t a, std::size_t b) const;
  void add_weight(std::size_t a, std::size_t b, double delta);

  // Weighted degree of a node: sum of incident edge weights.
  double degree(std::size_t a) const;

  // Sum of edge weights over unordered pairs (the "m" of modularity).
  double total_weight() const;

  // Neighbours with non-zero edge weight.
  std::vector<std::size_t> neighbors(std::size_t a) const;

 private:
  void check(std::size_t a, std::size_t b) const;

  std::size_t n_;
  std::vector<double> w_;  // row-major n x n, symmetric, zero diagonal
};

// Builds G_clients from the DAG's approval edges.
ClientGraph build_client_graph(const dag::Dag& dag, std::size_t num_clients);

}  // namespace specdag::metrics
