#include "metrics/community.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace specdag::metrics {

double modularity(const ClientGraph& graph, const Partition& partition) {
  if (partition.size() != graph.size()) {
    throw std::invalid_argument("modularity: partition size mismatch");
  }
  const double m = graph.total_weight();
  if (m <= 0.0) return 0.0;
  // Hoist the O(n) weighted-degree sums out of the pair loop — the naive
  // form re-sums a full adjacency row per pair, which is O(n^3) and
  // dominates finalize on 2k-client graphs. Same pair order, same adds:
  // the result is bit-identical.
  std::vector<double> degree(graph.size());
  for (std::size_t a = 0; a < graph.size(); ++a) degree[a] = graph.degree(a);
  double q = 0.0;
  for (std::size_t a = 0; a < graph.size(); ++a) {
    for (std::size_t b = 0; b < graph.size(); ++b) {
      if (partition[a] != partition[b]) continue;
      const double expected = degree[a] * degree[b] / (2.0 * m);
      q += graph.weight(a, b) - expected;
    }
  }
  return q / (2.0 * m);
}

namespace {

// Internal Louvain graph: adjacency maps plus self-loop weights (aggregated
// communities fold their internal weight into a self-loop, which must count
// towards node degrees for the gain formula to stay exact across levels).
struct LouvainGraph {
  std::vector<std::unordered_map<std::size_t, double>> adj;  // no self entries
  std::vector<double> self_loop;

  std::size_t size() const { return adj.size(); }

  double degree(std::size_t v) const {
    double d = 2.0 * self_loop[v];  // a self-loop contributes twice
    for (const auto& [u, w] : adj[v]) d += w;
    return d;
  }

  double two_m() const {
    double total = 0.0;
    for (std::size_t v = 0; v < size(); ++v) total += degree(v);
    return total;
  }
};

LouvainGraph to_louvain_graph(const ClientGraph& graph) {
  LouvainGraph g;
  g.adj.resize(graph.size());
  g.self_loop.assign(graph.size(), 0.0);
  for (std::size_t a = 0; a < graph.size(); ++a) {
    for (std::size_t b : graph.neighbors(a)) g.adj[a][b] = graph.weight(a, b);
  }
  return g;
}

// One pass of greedy local moves; returns true if any node moved.
bool local_move_pass(const LouvainGraph& graph, Partition& community, Rng& rng) {
  const std::size_t n = graph.size();
  const double two_m = graph.two_m();
  if (two_m <= 0.0) return false;

  std::unordered_map<int, double> community_degree;
  for (std::size_t v = 0; v < n; ++v) community_degree[community[v]] += graph.degree(v);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  bool moved = false;
  for (std::size_t v : order) {
    const int own = community[v];
    const double deg_v = graph.degree(v);

    // Edge weight from v into each neighbouring community (self-loop
    // excluded: it moves with v and cancels in the gain difference).
    std::unordered_map<int, double> links;
    for (const auto& [u, w] : graph.adj[v]) links[community[u]] += w;

    // Remove v from its community for the gain computation.
    community_degree[own] -= deg_v;

    int best_community = own;
    double best_gain = 0.0;
    const double own_links = links.count(own) ? links[own] : 0.0;
    const double base = own_links - community_degree[own] * deg_v / two_m;
    for (const auto& [c, w_in] : links) {
      if (c == own) continue;
      const double gain = (w_in - community_degree[c] * deg_v / two_m) - base;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_community = c;
      }
    }

    community[v] = best_community;
    community_degree[best_community] += deg_v;
    if (best_community != own) moved = true;
  }
  return moved;
}

Partition compact_labels(const Partition& partition) {
  std::map<int, int> relabel;  // ordered map keeps ids deterministic
  for (int c : partition) relabel.emplace(c, 0);
  int next = 0;
  for (auto& [old_id, new_id] : relabel) new_id = next++;
  Partition out(partition.size());
  for (std::size_t i = 0; i < partition.size(); ++i) out[i] = relabel[partition[i]];
  return out;
}

}  // namespace

LouvainResult louvain(const ClientGraph& graph, Rng& rng) {
  const std::size_t n = graph.size();
  // node -> current community over the *original* nodes.
  Partition node_community(n);
  std::iota(node_community.begin(), node_community.end(), 0);

  LouvainGraph current = to_louvain_graph(graph);
  std::vector<int> node_to_aggregate(n);
  std::iota(node_to_aggregate.begin(), node_to_aggregate.end(), 0);

  LouvainResult result;
  result.levels = 0;

  for (;;) {
    Partition community(current.size());
    std::iota(community.begin(), community.end(), 0);
    bool any_move = false;
    while (local_move_pass(current, community, rng)) any_move = true;

    // Fold the move results into the original-node partition.
    for (std::size_t v = 0; v < n; ++v) {
      node_community[v] = community[static_cast<std::size_t>(node_to_aggregate[v])];
    }
    ++result.levels;
    if (!any_move) break;

    // Aggregate: one node per community; intra-community weight (including
    // existing self-loops) becomes the aggregate node's self-loop.
    Partition compact = compact_labels(community);
    const std::size_t num_comms =
        static_cast<std::size_t>(*std::max_element(compact.begin(), compact.end())) + 1;
    if (num_comms == current.size()) break;  // nothing merged; fixed point
    LouvainGraph aggregated;
    aggregated.adj.resize(num_comms);
    aggregated.self_loop.assign(num_comms, 0.0);
    for (std::size_t a = 0; a < current.size(); ++a) {
      const auto ca = static_cast<std::size_t>(compact[a]);
      aggregated.self_loop[ca] += current.self_loop[a];
      for (const auto& [b, w] : current.adj[a]) {
        const auto cb = static_cast<std::size_t>(compact[b]);
        if (ca == cb) {
          if (a < b) aggregated.self_loop[ca] += w;  // count each edge once
        } else {
          aggregated.adj[ca][cb] += w;
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      node_to_aggregate[v] = compact[static_cast<std::size_t>(node_to_aggregate[v])];
    }
    current = std::move(aggregated);
  }

  result.partition = compact_labels(node_community);
  result.num_communities = count_communities(result.partition);
  result.modularity = modularity(graph, result.partition);
  return result;
}

double misclassification_fraction(const Partition& partition,
                                  const std::vector<int>& true_clusters) {
  if (partition.size() != true_clusters.size()) {
    throw std::invalid_argument("misclassification_fraction: size mismatch");
  }
  if (partition.empty()) throw std::invalid_argument("misclassification_fraction: empty input");

  // Majority true cluster per inferred community (smallest id wins ties, so
  // the result is deterministic).
  std::map<int, std::map<int, std::size_t>> counts;
  for (std::size_t i = 0; i < partition.size(); ++i) {
    counts[partition[i]][true_clusters[i]]++;
  }
  std::map<int, int> majority;
  for (const auto& [comm, hist] : counts) {
    int best_cluster = -1;
    std::size_t best_count = 0;
    for (const auto& [cluster, count] : hist) {
      if (count > best_count) {
        best_count = count;
        best_cluster = cluster;
      }
    }
    majority[comm] = best_cluster;
  }

  std::size_t misclassified = 0;
  for (std::size_t i = 0; i < partition.size(); ++i) {
    if (majority[partition[i]] != true_clusters[i]) ++misclassified;
  }
  return static_cast<double>(misclassified) / static_cast<double>(partition.size());
}

std::size_t count_communities(const Partition& partition) {
  std::vector<int> ids(partition);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

}  // namespace specdag::metrics
