// Community metrics over G_clients (paper §4.3):
//   * Newman modularity of a partition, m ∈ [-1/2, 1].
//   * Louvain community detection (Blondel et al. 2008) as the fast
//     approximation of the modularity-optimal partitioning.
//   * Misclassification fraction against the ground-truth clusters.
#pragma once

#include <vector>

#include "metrics/client_graph.hpp"
#include "util/rng.hpp"

namespace specdag::metrics {

// A partition assigns every client a community id; ids need not be compact.
using Partition = std::vector<int>;

// Newman-Girvan modularity of `partition` on `graph`. Returns 0 for a graph
// without edges (no communities can be meaningful).
double modularity(const ClientGraph& graph, const Partition& partition);

struct LouvainResult {
  Partition partition;   // compact community ids, one per client
  double modularity = 0.0;
  std::size_t num_communities = 0;
  std::size_t levels = 0;  // aggregation levels performed
};

// Louvain: greedy local moves + graph aggregation until modularity stops
// improving. `rng` shuffles the node visiting order (the algorithm's only
// source of randomness); results are deterministic given the seed.
LouvainResult louvain(const ClientGraph& graph, Rng& rng);

// Fraction of clients that ended up in a community whose majority
// ground-truth cluster differs from their own (paper §4.3). Clients in
// single-member communities count as correctly classified only if they are
// their community's majority (trivially true), matching the paper's
// definition via relative majority.
double misclassification_fraction(const Partition& partition,
                                  const std::vector<int>& true_clusters);

// Number of distinct communities in a partition.
std::size_t count_communities(const Partition& partition);

}  // namespace specdag::metrics
