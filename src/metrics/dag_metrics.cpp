#include "metrics/dag_metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace specdag::metrics {

PurenessResult approval_pureness(const dag::Dag& dag, const std::vector<int>& client_clusters) {
  PurenessResult result;
  for (dag::TxId id : dag.all_ids()) {
    const dag::Transaction tx = dag.transaction(id);
    if (tx.publisher < 0) continue;
    // Publishers without a known cluster (external attackers) contribute no
    // pureness information.
    if (static_cast<std::size_t>(tx.publisher) >= client_clusters.size()) continue;
    const int own_cluster = client_clusters[static_cast<std::size_t>(tx.publisher)];
    for (dag::TxId parent : tx.parents) {
      const dag::Transaction ptx = dag.transaction(parent);
      if (ptx.publisher < 0) continue;
      if (static_cast<std::size_t>(ptx.publisher) >= client_clusters.size()) continue;
      ++result.total_edges;
      if (client_clusters[static_cast<std::size_t>(ptx.publisher)] == own_cluster) {
        ++result.pure_edges;
      }
    }
  }
  result.pureness = result.total_edges == 0
                        ? 0.0
                        : static_cast<double>(result.pure_edges) /
                              static_cast<double>(result.total_edges);
  return result;
}

double base_pureness(const std::vector<std::size_t>& cluster_sizes) {
  if (cluster_sizes.empty()) throw std::invalid_argument("base_pureness: no clusters");
  double total = 0.0;
  for (std::size_t s : cluster_sizes) total += static_cast<double>(s);
  if (total <= 0.0) throw std::invalid_argument("base_pureness: empty clusters");
  double base = 0.0;
  for (std::size_t s : cluster_sizes) {
    const double share = static_cast<double>(s) / total;
    base += share * share;
  }
  return base;
}

std::size_t approved_poisoned_count(const dag::Dag& dag, dag::TxId reference) {
  std::size_t count = dag.transaction(reference).poisoned_publisher ? 1 : 0;
  for (dag::TxId id : dag.past_cone(reference)) {
    if (dag.transaction(id).poisoned_publisher) ++count;
  }
  return count;
}

DagWeightSummary dag_weight_summary(const dag::Dag& dag) {
  DagWeightSummary summary;
  const std::vector<std::size_t> weights = dag.cumulative_weights_all();
  summary.transactions = weights.size();
  summary.tips = dag.tips().size();
  double sum = 0.0;
  // Genesis is approved by everything; skipping it keeps the mean about the
  // actual model updates.
  for (std::size_t id = 1; id < weights.size(); ++id) {
    sum += static_cast<double>(weights[id]);
    summary.max_cumulative_weight = std::max(summary.max_cumulative_weight, weights[id]);
  }
  if (weights.size() > 1) {
    summary.mean_cumulative_weight = sum / static_cast<double>(weights.size() - 1);
  }
  return summary;
}

}  // namespace specdag::metrics
