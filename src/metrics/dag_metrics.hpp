// DAG-level evaluation metrics:
//   * approval pureness (paper §5.3.1, Table 2) — the fraction of approval
//     edges connecting model updates from clients of the same cluster;
//   * approved-poison counting (Figure 13) — how many poisoned transactions
//     sit in the past cone of a reference transaction.
#pragma once

#include <vector>

#include "dag/dag.hpp"

namespace specdag::metrics {

struct PurenessResult {
  double pureness = 0.0;        // same-cluster fraction of approval edges
  std::size_t total_edges = 0;  // edges between non-genesis transactions
  std::size_t pure_edges = 0;
};

// `client_clusters[client_id]` is the ground-truth cluster of a client.
// Approvals of genesis are ignored (no cluster information).
PurenessResult approval_pureness(const dag::Dag& dag, const std::vector<int>& client_clusters);

// Expected pureness for uniformly random approvals over `cluster_sizes`
// clients per cluster: sum over clusters of (share)^2. Equal clusters give
// the paper's 1/k base pureness.
double base_pureness(const std::vector<std::size_t>& cluster_sizes);

// Number of transactions in the past cone of `reference` (direct or indirect
// approvals, the reference itself included) whose publisher was poisoned.
std::size_t approved_poisoned_count(const dag::Dag& dag, dag::TxId reference);

// Structural summary of the DAG: cumulative-weight distribution plus tip
// count. Backed by Dag::cumulative_weights_all() — a copy of the DAG's
// incrementally maintained weight index, so the per-round metrics path of
// the scenario engine costs O(n) instead of a sweep or a BFS per
// transaction.
struct DagWeightSummary {
  std::size_t transactions = 0;
  std::size_t tips = 0;
  double mean_cumulative_weight = 0.0;  // over non-genesis transactions
  std::size_t max_cumulative_weight = 0;
};

DagWeightSummary dag_weight_summary(const dag::Dag& dag);

}  // namespace specdag::metrics
