#include "nn/activations.hpp"

#include "tensor/lanes.hpp"

namespace specdag::nn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  Tensor out = input;
  lanes::relu_forward(input.raw(), out.raw(), out.numel());
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (!cached_input_.same_shape(grad_output)) {
    throw std::logic_error("ReLU::backward: shape mismatch with cached input");
  }
  Tensor grad = grad_output;
  lanes::relu_backward_mask(cached_input_.raw(), grad.raw(), grad.numel());
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (auto& v : out.data()) v = tanhf_(v);
  if (train) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (!cached_output_.same_shape(grad_output)) {
    throw std::logic_error("Tanh::backward: shape mismatch with cached output");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= 1.0f - y * y;
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (auto& v : out.data()) v = sigmoidf(v);
  if (train) cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (!cached_output_.same_shape(grad_output)) {
    throw std::logic_error("Sigmoid::backward: shape mismatch with cached output");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

}  // namespace specdag::nn
