// Elementwise activation layers and the scalar nonlinearities shared with the
// LSTM cell.
#pragma once

#include <cmath>

#include "nn/layer.hpp"

namespace specdag::nn {

inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }
inline float tanhf_(float x) { return std::tanh(x); }

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace specdag::nn
