#include "nn/batch_executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "tensor/lanes.hpp"
#include "tensor/ops.hpp"

namespace specdag::nn {
namespace soa {

// One SoA value block: either `lanes` lane-major owned slices of `stride`
// floats, one shared slice, or external views into caller/sibling storage.
struct Block {
  bool shared = false;
  std::size_t stride = 0;                  // floats per lane
  std::vector<float> data;                 // owned storage (lane-major)
  std::vector<const float*> ext;           // external views (size 1 if shared)

  void own(std::size_t nlanes, std::size_t s, bool sh) {
    shared = sh;
    stride = s;
    ext.clear();
    data.resize(sh ? s : nlanes * s);
  }
  void view_shared(const float* p, std::size_t s) {
    shared = true;
    stride = s;
    data.clear();
    ext.assign(1, p);
  }
  void view_lanes(std::vector<const float*> ps, std::size_t s) {
    shared = false;
    stride = s;
    data.clear();
    ext = std::move(ps);
  }

  const float* lane(std::size_t l) const {
    if (!ext.empty()) return shared ? ext[0] : ext[l];
    return data.data() + (shared ? 0 : l * stride);
  }
  float* mlane(std::size_t l) { return data.data() + (shared ? 0 : l * stride); }
};

// Batched counterpart of one nn::Layer. Owns its output activations and its
// input-gradient block; parametric layers own lane-major SoA param blocks.
class BatchedLayer {
 public:
  virtual ~BatchedLayer() = default;

  virtual std::size_t param_count() const { return 0; }  // floats per lane
  virtual std::size_t num_params() const { return 0; }   // Param entries (freeze units)
  virtual void set_lanes(std::size_t) {}
  virtual void import_weights(std::size_t, const float*) {}
  virtual void export_weights(std::size_t, float*) const {}
  virtual void export_grads(std::size_t, float*) const {}
  virtual void sgd_step(float, std::size_t, std::size_t) {}

  virtual Shape infer(const Shape& in) const = 0;
  virtual void forward(const Block& in, const Shape& in_shape, std::size_t nlanes,
                       bool train) = 0;
  // `need_gin` is false when no parameterized layer sits below this one: the
  // input gradient would be dead, so the layer may skip producing gin().
  virtual void backward(const Block& grad_out, std::size_t nlanes, bool need_gin) = 0;

  Block& out() { return out_; }
  Block& gin() { return gin_; }

 protected:
  Block out_, gin_;
};

namespace {

std::size_t shape_product(const Shape& s) {
  std::size_t n = 1;
  for (std::size_t d : s) n *= d;
  return n;
}

// --------------------------------------------------------------- Dense ---

class BDense final : public BatchedLayer {
 public:
  BDense(std::size_t in, std::size_t out) : din_(in), dout_(out) {}

  std::size_t param_count() const override { return din_ * dout_ + dout_; }
  std::size_t num_params() const override { return 2; }

  void set_lanes(std::size_t nlanes) override {
    w_.resize(nlanes * din_ * dout_);
    b_.resize(nlanes * dout_);
    gw_.assign(nlanes * din_ * dout_, 0.0f);
    gb_.assign(nlanes * dout_, 0.0f);
  }

  void import_weights(std::size_t l, const float* src) override {
    std::memcpy(w_.data() + l * din_ * dout_, src, din_ * dout_ * sizeof(float));
    std::memcpy(b_.data() + l * dout_, src + din_ * dout_, dout_ * sizeof(float));
  }
  void export_weights(std::size_t l, float* dst) const override {
    std::memcpy(dst, w_.data() + l * din_ * dout_, din_ * dout_ * sizeof(float));
    std::memcpy(dst + din_ * dout_, b_.data() + l * dout_, dout_ * sizeof(float));
  }
  void export_grads(std::size_t l, float* dst) const override {
    std::memcpy(dst, gw_.data() + l * din_ * dout_, din_ * dout_ * sizeof(float));
    std::memcpy(dst + din_ * dout_, gb_.data() + l * dout_, dout_ * sizeof(float));
  }

  Shape infer(const Shape& in) const override {
    if (in.size() != 2 || in[1] != din_) {
      throw std::invalid_argument("BatchExecutor: Dense input shape mismatch");
    }
    return {in[0], dout_};
  }

  void forward(const Block& in, const Shape& in_shape, std::size_t nlanes,
               bool /*train*/) override {
    batch_ = in_shape[0];
    x_ = &in;
    out_.own(nlanes, batch_ * dout_, false);
    if (in.shared) {
      // All lanes consume one activation matrix: stream it once through the
      // multi-RHS kernel instead of nlanes separate matmuls.
      mr_bs_.resize(nlanes);
      mr_cs_.resize(nlanes);
      for (std::size_t l = 0; l < nlanes; ++l) {
        mr_bs_[l] = w_.data() + l * din_ * dout_;
        mr_cs_[l] = out_.mlane(l);
      }
      matmul_multi_rhs(in.lane(0), mr_bs_.data(), mr_cs_.data(), nlanes, batch_, din_, dout_);
      for (std::size_t l = 0; l < nlanes; ++l) {
        add_row_bias_into(out_.mlane(l), b_.data() + l * dout_, batch_, dout_);
      }
      return;
    }
    for (std::size_t l = 0; l < nlanes; ++l) {
      matmul_into(in.lane(l), w_.data() + l * din_ * dout_, out_.mlane(l), batch_, din_, dout_);
      add_row_bias_into(out_.mlane(l), b_.data() + l * dout_, batch_, dout_);
    }
  }

  void backward(const Block& grad_out, std::size_t nlanes, bool need_gin) override {
    if (need_gin) gin_.own(nlanes, batch_ * din_, false);
    for (std::size_t l = 0; l < nlanes; ++l) {
      const float* g = grad_out.lane(l);
      // Grads start at +0.0 (zeroed by set_lanes / the previous sgd_step),
      // so accumulating straight into the SoA block is bit-identical to the
      // scalar layer's tmp-then-+= sequence.
      matmul_transposed_a_acc(x_->lane(l), g, gw_.data() + l * din_ * dout_, batch_, din_, dout_);
      float* gb = gb_.data() + l * dout_;
      for (std::size_t r = 0; r < batch_; ++r) {
        for (std::size_t c = 0; c < dout_; ++c) gb[c] += g[r * dout_ + c];
      }
      if (need_gin) {
        matmul_transposed_b_into(g, w_.data() + l * din_ * dout_, gin_.mlane(l), batch_, dout_,
                                 din_);
      }
    }
  }

  void sgd_step(float lr, std::size_t freeze, std::size_t /*nlanes*/) override {
    if (freeze >= 1) std::fill(gw_.begin(), gw_.end(), 0.0f);
    if (freeze >= 2) std::fill(gb_.begin(), gb_.end(), 0.0f);
    lanes::sgd_step(w_.data(), gw_.data(), lr, w_.size());
    lanes::sgd_step(b_.data(), gb_.data(), lr, b_.size());
  }

 private:
  std::size_t din_, dout_;
  std::size_t batch_ = 0;
  std::vector<float> w_, b_, gw_, gb_;
  const Block* x_ = nullptr;
  std::vector<const float*> mr_bs_;
  std::vector<float*> mr_cs_;
};

// --------------------------------------------------- elementwise layers ---

class BActivation final : public BatchedLayer {
 public:
  enum class Kind { kRelu, kTanh, kSigmoid };
  explicit BActivation(Kind kind) : kind_(kind) {}

  Shape infer(const Shape& in) const override { return in; }

  void forward(const Block& in, const Shape& in_shape, std::size_t nlanes,
               bool /*train*/) override {
    numel_ = shape_product(in_shape);
    x_ = &in;
    out_.own(nlanes, numel_, in.shared);
    const std::size_t active = in.shared ? 1 : nlanes;
    for (std::size_t l = 0; l < active; ++l) {
      const float* src = in.lane(l);
      float* dst = out_.mlane(l);
      switch (kind_) {
        case Kind::kRelu:
          lanes::relu_forward(src, dst, numel_);
          break;
        case Kind::kTanh:
          for (std::size_t i = 0; i < numel_; ++i) dst[i] = tanhf_(src[i]);
          break;
        case Kind::kSigmoid:
          for (std::size_t i = 0; i < numel_; ++i) dst[i] = sigmoidf(src[i]);
          break;
      }
    }
  }

  void backward(const Block& grad_out, std::size_t nlanes, bool need_gin) override {
    if (!need_gin) return;
    gin_.own(nlanes, numel_, false);
    for (std::size_t l = 0; l < nlanes; ++l) {
      float* g = gin_.mlane(l);
      std::memcpy(g, grad_out.lane(l), numel_ * sizeof(float));
      switch (kind_) {
        case Kind::kRelu:
          lanes::relu_backward_mask(x_->lane(l), g, numel_);
          break;
        case Kind::kTanh: {
          const float* y = out_.lane(l);
          for (std::size_t i = 0; i < numel_; ++i) g[i] *= 1.0f - y[i] * y[i];
          break;
        }
        case Kind::kSigmoid: {
          const float* y = out_.lane(l);
          for (std::size_t i = 0; i < numel_; ++i) g[i] *= y[i] * (1.0f - y[i]);
          break;
        }
      }
    }
  }

 private:
  Kind kind_;
  std::size_t numel_ = 0;
  const Block* x_ = nullptr;  // cached input (ReLU mask)
};

class BFlatten final : public BatchedLayer {
 public:
  Shape infer(const Shape& in) const override {
    if (in.size() < 2) throw std::invalid_argument("BatchExecutor: Flatten rank < 2");
    return {in[0], shape_product(in) / in[0]};
  }

  void forward(const Block& in, const Shape& in_shape, std::size_t nlanes,
               bool /*train*/) override {
    // Pure reshape: expose views of the input block, no copy.
    const std::size_t numel = shape_product(in_shape);
    if (in.shared) {
      out_.view_shared(in.lane(0), numel);
    } else {
      std::vector<const float*> views(nlanes);
      for (std::size_t l = 0; l < nlanes; ++l) views[l] = in.lane(l);
      out_.view_lanes(std::move(views), numel);
    }
  }

  void backward(const Block& grad_out, std::size_t nlanes, bool need_gin) override {
    if (!need_gin) return;
    std::vector<const float*> views(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l) views[l] = grad_out.lane(l);
    gin_.view_lanes(std::move(views), grad_out.stride);
  }
};

// ---------------------------------------------------------------- Conv ---

class BConv final : public BatchedLayer {
 public:
  explicit BConv(const Conv2dSpec& spec)
      : spec_(spec), ckk_(spec.in_channels * spec.kernel * spec.kernel) {}

  std::size_t param_count() const override { return spec_.out_channels * ckk_ + spec_.out_channels; }
  std::size_t num_params() const override { return 2; }

  void set_lanes(std::size_t nlanes) override {
    const std::size_t wn = spec_.out_channels * ckk_;
    w_.resize(nlanes * wn);
    b_.resize(nlanes * spec_.out_channels);
    gw_.assign(nlanes * wn, 0.0f);
    gb_.assign(nlanes * spec_.out_channels, 0.0f);
  }

  void import_weights(std::size_t l, const float* src) override {
    const std::size_t wn = spec_.out_channels * ckk_;
    std::memcpy(w_.data() + l * wn, src, wn * sizeof(float));
    std::memcpy(b_.data() + l * spec_.out_channels, src + wn,
                spec_.out_channels * sizeof(float));
  }
  void export_weights(std::size_t l, float* dst) const override {
    const std::size_t wn = spec_.out_channels * ckk_;
    std::memcpy(dst, w_.data() + l * wn, wn * sizeof(float));
    std::memcpy(dst + wn, b_.data() + l * spec_.out_channels,
                spec_.out_channels * sizeof(float));
  }
  void export_grads(std::size_t l, float* dst) const override {
    const std::size_t wn = spec_.out_channels * ckk_;
    std::memcpy(dst, gw_.data() + l * wn, wn * sizeof(float));
    std::memcpy(dst + wn, gb_.data() + l * spec_.out_channels,
                spec_.out_channels * sizeof(float));
  }

  Shape infer(const Shape& in) const override {
    if (in.size() != 4 || in[1] != spec_.in_channels) {
      throw std::invalid_argument("BatchExecutor: Conv2D input shape mismatch");
    }
    return {in[0], spec_.out_channels, spec_.out_dim(in[2]), spec_.out_dim(in[3])};
  }

  void forward(const Block& in, const Shape& in_shape, std::size_t nlanes,
               bool train) override {
    in_shape_ = in_shape;
    const std::size_t n = in_shape[0], h = in_shape[2], w = in_shape[3];
    const std::size_t oc = spec_.out_channels;
    positions_ = spec_.out_dim(h) * spec_.out_dim(w);
    const std::size_t rows = n * positions_;
    out_.own(nlanes, n * oc * positions_, false);
    out_cols_.resize(rows * oc);
    if (train) {
      // Cache each lane's im2col for backward, exactly like the scalar layer.
      cols_.resize(nlanes * rows * ckk_);
      for (std::size_t l = 0; l < nlanes; ++l) {
        float* cl = cols_.data() + l * rows * ckk_;
        im2col_into(in.lane(l), n, h, w, spec_, cl);
        lane_matmul(cl, l, rows, oc);
      }
      return;
    }
    if (in.shared) {
      // One im2col feeds every lane's filter GEMM.
      ecols_.resize(rows * ckk_);
      im2col_into(in.lane(0), n, h, w, spec_, ecols_.data());
      for (std::size_t l = 0; l < nlanes; ++l) lane_matmul(ecols_.data(), l, rows, oc);
      return;
    }
    ecols_.resize(rows * ckk_);
    for (std::size_t l = 0; l < nlanes; ++l) {
      im2col_into(in.lane(l), n, h, w, spec_, ecols_.data());
      lane_matmul(ecols_.data(), l, rows, oc);
    }
  }

  void backward(const Block& grad_out, std::size_t nlanes, bool need_gin) override {
    const std::size_t n = in_shape_[0], h = in_shape_[2], w = in_shape_[3];
    const std::size_t oc = spec_.out_channels;
    const std::size_t rows = n * positions_;
    if (need_gin) gin_.own(nlanes, n * spec_.in_channels * h * w, false);
    gcols_.resize(rows * oc);
    dcols_.resize(rows * ckk_);
    for (std::size_t l = 0; l < nlanes; ++l) {
      nchw_to_positions(grad_out.lane(l), gcols_.data(), n, oc, positions_);
      matmul_transposed_a_acc(gcols_.data(), cols_.data() + l * rows * ckk_,
                              gw_.data() + l * oc * ckk_, rows, oc, ckk_);
      float* gb = gb_.data() + l * oc;
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < oc; ++c) gb[c] += gcols_[r * oc + c];
      }
      if (need_gin) {
        matmul_into(gcols_.data(), w_.data() + l * oc * ckk_, dcols_.data(), rows, oc, ckk_);
        col2im_into(dcols_.data(), n, h, w, spec_, gin_.mlane(l));
      }
    }
  }

  void sgd_step(float lr, std::size_t freeze, std::size_t /*nlanes*/) override {
    if (freeze >= 1) std::fill(gw_.begin(), gw_.end(), 0.0f);
    if (freeze >= 2) std::fill(gb_.begin(), gb_.end(), 0.0f);
    lanes::sgd_step(w_.data(), gw_.data(), lr, w_.size());
    lanes::sgd_step(b_.data(), gb_.data(), lr, b_.size());
  }

 private:
  void lane_matmul(const float* cols, std::size_t l, std::size_t rows, std::size_t oc) {
    matmul_transposed_b_into(cols, w_.data() + l * oc * ckk_, out_cols_.data(), rows, ckk_,
                             oc);
    add_row_bias_into(out_cols_.data(), b_.data() + l * oc, rows, oc);
    positions_to_nchw(out_cols_.data(), out_.mlane(l), in_shape_[0], oc, positions_);
  }

  Conv2dSpec spec_;
  std::size_t ckk_;
  std::size_t positions_ = 0;
  Shape in_shape_;
  std::vector<float> w_, b_, gw_, gb_;
  std::vector<float> cols_;   // per-lane im2col cache (train)
  std::vector<float> ecols_;  // eval/shared im2col scratch
  std::vector<float> out_cols_, gcols_, dcols_;
};

// ------------------------------------------------------------- MaxPool ---

class BMaxPool final : public BatchedLayer {
 public:
  BMaxPool(std::size_t size, std::size_t stride) : size_(size), stride_(stride) {}

  Shape infer(const Shape& in) const override {
    if (in.size() != 4 || in[2] < size_ || in[3] < size_) {
      throw std::invalid_argument("BatchExecutor: MaxPool2D input shape mismatch");
    }
    return {in[0], in[1], (in[2] - size_) / stride_ + 1, (in[3] - size_) / stride_ + 1};
  }

  void forward(const Block& in, const Shape& in_shape, std::size_t nlanes,
               bool /*train*/) override {
    in_shape_ = in_shape;
    const std::size_t n = in_shape[0], c = in_shape[1], h = in_shape[2], w = in_shape[3];
    const std::size_t oh = (h - size_) / stride_ + 1, ow = (w - size_) / stride_ + 1;
    out_numel_ = n * c * oh * ow;
    out_.own(nlanes, out_numel_, in.shared);
    const std::size_t active = in.shared ? 1 : nlanes;
    argmax_.resize(active * out_numel_);
    for (std::size_t l = 0; l < active; ++l) {
      maxpool2d_forward_into(in.lane(l), n, c, h, w, size_, stride_, out_.mlane(l),
                             argmax_.data() + l * out_numel_);
    }
  }

  void backward(const Block& grad_out, std::size_t nlanes, bool need_gin) override {
    if (!need_gin) return;
    const std::size_t in_numel = shape_product(in_shape_);
    gin_.own(nlanes, in_numel, false);
    for (std::size_t l = 0; l < nlanes; ++l) {
      float* g = gin_.mlane(l);
      std::fill(g, g + in_numel, 0.0f);
      const float* go = grad_out.lane(l);
      const std::size_t* am = argmax_.data() + l * out_numel_;
      for (std::size_t i = 0; i < out_numel_; ++i) g[am[i]] += go[i];
    }
  }

 private:
  std::size_t size_, stride_;
  std::size_t out_numel_ = 0;
  Shape in_shape_;
  std::vector<std::size_t> argmax_;
};

}  // namespace
}  // namespace soa

// ------------------------------------------------------------ executor ---

BatchExecutor::BatchExecutor(const ModelFactory& factory)
    : input_(std::make_unique<soa::Block>()), seed_(std::make_unique<soa::Block>()) {
  Sequential tmpl = factory();
  supported_ = true;
  for (std::size_t i = 0; i < tmpl.num_layers(); ++i) {
    Layer& layer = tmpl.layer(i);
    if (auto* d = dynamic_cast<Dense*>(&layer)) {
      layers_.push_back(std::make_unique<soa::BDense>(d->in_features(), d->out_features()));
    } else if (dynamic_cast<ReLU*>(&layer)) {
      layers_.push_back(std::make_unique<soa::BActivation>(soa::BActivation::Kind::kRelu));
    } else if (dynamic_cast<Tanh*>(&layer)) {
      layers_.push_back(std::make_unique<soa::BActivation>(soa::BActivation::Kind::kTanh));
    } else if (dynamic_cast<Sigmoid*>(&layer)) {
      layers_.push_back(
          std::make_unique<soa::BActivation>(soa::BActivation::Kind::kSigmoid));
    } else if (dynamic_cast<Flatten*>(&layer)) {
      layers_.push_back(std::make_unique<soa::BFlatten>());
    } else if (auto* cv = dynamic_cast<Conv2D*>(&layer)) {
      layers_.push_back(std::make_unique<soa::BConv>(cv->spec()));
    } else if (auto* mp = dynamic_cast<MaxPool2D*>(&layer)) {
      layers_.push_back(std::make_unique<soa::BMaxPool>(mp->size(), mp->stride()));
    } else {
      supported_ = false;
      layers_.clear();
      break;
    }
  }
  if (supported_) num_weights_ = tmpl.num_weights();
}

BatchExecutor::~BatchExecutor() = default;

bool BatchExecutor::architecture_supported(const ModelFactory& factory) {
  return BatchExecutor(factory).supported();
}

void BatchExecutor::require_supported() const {
  if (!supported_) {
    throw std::logic_error("BatchExecutor: architecture not supported (use the scalar path)");
  }
}

void BatchExecutor::begin(std::size_t nlanes) {
  require_supported();
  if (nlanes == 0) throw std::invalid_argument("BatchExecutor::begin: zero lanes");
  lanes_ = nlanes;
  for (auto& layer : layers_) layer->set_lanes(nlanes);
  logits_blk_ = nullptr;
}

void BatchExecutor::load_weights(std::size_t lane, const WeightVector& weights) {
  require_supported();
  if (lane >= lanes_) throw std::out_of_range("BatchExecutor::load_weights: lane");
  if (weights.size() != num_weights_) {
    throw std::invalid_argument("BatchExecutor::load_weights: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    layer->import_weights(lane, weights.data() + offset);
    offset += layer->param_count();
  }
}

WeightVector BatchExecutor::weights(std::size_t lane) const {
  require_supported();
  if (lane >= lanes_) throw std::out_of_range("BatchExecutor::weights: lane");
  WeightVector out(num_weights_);
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    layer->export_weights(lane, out.data() + offset);
    offset += layer->param_count();
  }
  return out;
}

WeightVector BatchExecutor::gradients(std::size_t lane) const {
  require_supported();
  if (lane >= lanes_) throw std::out_of_range("BatchExecutor::gradients: lane");
  WeightVector out(num_weights_);
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    layer->export_grads(lane, out.data() + offset);
    offset += layer->param_count();
  }
  return out;
}

void BatchExecutor::forward(const std::vector<const Tensor*>& inputs, bool train) {
  require_supported();
  if (inputs.size() != lanes_) {
    throw std::invalid_argument("BatchExecutor::forward: input count != lanes");
  }
  for (const Tensor* t : inputs) {
    if (t == nullptr || t->shape() != inputs[0]->shape()) {
      throw std::invalid_argument("BatchExecutor::forward: lane input shapes differ");
    }
  }
  input_shape_ = inputs[0]->shape();
  std::vector<const float*> views(lanes_);
  for (std::size_t l = 0; l < lanes_; ++l) views[l] = inputs[l]->raw();
  input_->view_lanes(std::move(views), inputs[0]->numel());
  run_forward(train);
}

void BatchExecutor::forward_shared(const Tensor& input, bool train) {
  require_supported();
  input_shape_ = input.shape();
  input_->view_shared(input.raw(), input.numel());
  run_forward(train);
}

void BatchExecutor::run_forward(bool train) {
  if (lanes_ == 0) throw std::logic_error("BatchExecutor: begin() not called");
  Shape shape = input_shape_;
  const soa::Block* cur = input_.get();
  for (auto& layer : layers_) {
    Shape out_shape = layer->infer(shape);
    layer->forward(*cur, shape, lanes_, train);
    cur = &layer->out();
    shape = std::move(out_shape);
  }
  if (shape.size() != 2) {
    throw std::logic_error("BatchExecutor: final activations are not [batch, classes]");
  }
  logits_blk_ = cur;
  logit_rows_ = shape[0];
  logit_cols_ = shape[1];
}

const float* BatchExecutor::logits(std::size_t lane) const {
  if (logits_blk_ == nullptr) throw std::logic_error("BatchExecutor::logits: no forward yet");
  return logits_blk_->lane(lane);
}

namespace {

// Row-wise softmax replicating nn::softmax exactly: first-max subtraction,
// exp/sum interleaved in class order, then one divide pass.
void softmax_rows(float* rows, std::size_t batch, std::size_t classes) {
  for (std::size_t r = 0; r < batch; ++r) {
    float* row = rows + r * classes;
    const float mx = *std::max_element(row, row + classes);
    float sum = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (std::size_t c = 0; c < classes; ++c) row[c] /= sum;
  }
}

}  // namespace

double BatchExecutor::loss_and_grad(std::size_t lane, const std::vector<int>& labels) {
  if (logits_blk_ == nullptr) {
    throw std::logic_error("BatchExecutor::loss_and_grad: no forward yet");
  }
  const std::size_t batch = logit_rows_, classes = logit_cols_;
  if (labels.size() != batch) {
    throw std::invalid_argument("BatchExecutor::loss_and_grad: batch size mismatch");
  }
  seed_->own(lanes_, batch * classes, false);
  float* probs = seed_->mlane(lane);
  std::memcpy(probs, logits_blk_->lane(lane), batch * classes * sizeof(float));
  softmax_rows(probs, batch, classes);
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    float* row = probs + r * classes;
    const float p = std::max(row[static_cast<std::size_t>(labels[r])], 1e-12f);
    total -= std::log(p);
    row[static_cast<std::size_t>(labels[r])] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) row[c] *= inv_batch;
  }
  return total / static_cast<double>(batch);
}

double BatchExecutor::loss(std::size_t lane, const std::vector<int>& labels) {
  if (logits_blk_ == nullptr) throw std::logic_error("BatchExecutor::loss: no forward yet");
  const std::size_t batch = logit_rows_, classes = logit_cols_;
  if (labels.size() != batch) {
    throw std::invalid_argument("BatchExecutor::loss: batch size mismatch");
  }
  prob_scratch_.resize(batch * classes);
  std::memcpy(prob_scratch_.data(), logits_blk_->lane(lane),
              batch * classes * sizeof(float));
  softmax_rows(prob_scratch_.data(), batch, classes);
  double total = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    const float p = std::max(
        prob_scratch_[r * classes + static_cast<std::size_t>(labels[r])], 1e-12f);
    total -= std::log(p);
  }
  return total / static_cast<double>(batch);
}

void BatchExecutor::predict(std::size_t lane, std::vector<int>& out) const {
  if (logits_blk_ == nullptr) throw std::logic_error("BatchExecutor::predict: no forward yet");
  const float* rows = logits_blk_->lane(lane);
  out.resize(logit_rows_);
  for (std::size_t r = 0; r < logit_rows_; ++r) {
    const float* row = rows + r * logit_cols_;
    out[r] = static_cast<int>(std::max_element(row, row + logit_cols_) - row);
  }
}

void BatchExecutor::backward() {
  require_supported();
  if (logits_blk_ == nullptr) throw std::logic_error("BatchExecutor::backward: no forward yet");
  // The gradient below the lowest parameterized layer is dead weight: no
  // parameters remain to consume it. Stop the walk there and let that layer
  // skip its input-gradient product — for an MLP this removes the widest
  // backward matmul (dx of the first Dense) plus the Flatten reshape.
  std::size_t lowest_param = layers_.size();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->param_count() > 0) {
      lowest_param = i;
      break;
    }
  }
  const soa::Block* grad = seed_.get();
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const bool need_gin = lowest_param < i;
    layers_[i]->backward(*grad, lanes_, need_gin);
    if (!need_gin) break;
    grad = &layers_[i]->gin();
  }
}

void BatchExecutor::sgd_step(float lr, std::size_t freeze_prefix_params) {
  require_supported();
  std::size_t remaining = freeze_prefix_params;
  for (auto& layer : layers_) {
    const std::size_t np = layer->num_params();
    const std::size_t f = std::min(np, remaining);
    remaining -= f;
    layer->sgd_step(lr, f, lanes_);
  }
}

}  // namespace specdag::nn
