// Struct-of-arrays batch executor: runs forward / backward / SGD for K
// same-architecture models ("lanes") with one pass over each layer op
// instead of K separate `Sequential` walks.
//
// Every client in a run shares one `ModelFactory`, so per-client training is
// K identical layer graphs over different weight vectors. The executor
// stores each parameter as a [lanes x numel] block (lane-major), keeps one
// activation/grad block per layer boundary, and fuses the element-wise ops
// (SGD step, ReLU) across the whole block via the runtime-dispatched SIMD
// kernels in tensor/lanes.hpp. Matrix products run per lane with the exact
// scalar kernels — or, when all lanes share one input (multi-model
// evaluation), through the shared-A multi-RHS matmul.
//
// Bit-identity contract: for any lane count, lane l's results (logits,
// losses, gradients, stepped weights) are bit-for-bit what a scalar
// `Sequential` + `Sgd` would produce for that model alone. Fusion only
// happens ACROSS lanes (independent computations); each lane's reduction
// orders are untouched. Tests pin this per layer and end-to-end.
//
// Supported layers: Dense, ReLU, Tanh, Sigmoid, Flatten, Conv2D, MaxPool2D
// (everything the bundled MLP/CNN factories emit). Architectures using other
// layers (LSTM, Embedding, Dropout, LayerNorm, AvgPool2D) report
// `supported() == false` and callers fall back to the scalar path.
#pragma once

#include <memory>
#include <vector>

#include "nn/model.hpp"

namespace specdag::nn {

namespace soa {
class BatchedLayer;
struct Block;
}  // namespace soa

class BatchExecutor {
 public:
  // Builds the SoA layer stack from one template model. If the architecture
  // contains an unsupported layer the executor is inert (`supported()` is
  // false) and every other method throws.
  explicit BatchExecutor(const ModelFactory& factory);
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  static bool architecture_supported(const ModelFactory& factory);

  bool supported() const { return supported_; }
  std::size_t num_weights() const { return num_weights_; }
  std::size_t lanes() const { return lanes_; }

  // Sets the active lane count, (re)allocating SoA storage as needed and
  // zeroing all gradients. Must be called before load_weights/forward.
  void begin(std::size_t lanes);

  void load_weights(std::size_t lane, const WeightVector& weights);
  WeightVector weights(std::size_t lane) const;
  // Current accumulated gradients of one lane (same flat layout as weights);
  // used by the gradcheck tests.
  WeightVector gradients(std::size_t lane) const;

  // Forward with one input per lane (all the same shape). The input tensors
  // must outlive the matching backward() call. `train` caches activations.
  void forward(const std::vector<const Tensor*>& inputs, bool train);
  // Forward with a single input shared by every lane (multi-model eval):
  // layers before the first parametric one run once, and the first Dense
  // runs as a shared-A multi-RHS matmul.
  void forward_shared(const Tensor& input, bool train);

  // Last forward's logits for one lane, row-major [logit_rows, logit_cols].
  // Valid until the next forward/backward.
  const float* logits(std::size_t lane) const;
  std::size_t logit_rows() const { return logit_rows_; }
  std::size_t logit_cols() const { return logit_cols_; }

  // Replicates nn::softmax_cross_entropy for one lane: returns the mean loss
  // and seeds that lane's backward gradient with d(loss)/d(logits).
  double loss_and_grad(std::size_t lane, const std::vector<int>& labels);
  // Replicates nn::softmax_cross_entropy_loss (no gradient seed).
  double loss(std::size_t lane, const std::vector<int>& labels);
  // Replicates nn::predict_classes on one lane's logits.
  void predict(std::size_t lane, std::vector<int>& out) const;

  // Backpropagates every lane's seeded logit gradient, accumulating into the
  // SoA gradient blocks. Requires a preceding forward(train=true).
  void backward();

  // Fused `w -= lr * g; g = 0` over every parameter block. The first
  // `freeze_prefix_params` parameters (in layer order, matching
  // TrainConfig::freeze_prefix_params) have their gradients zeroed first, so
  // their weights pass through unchanged — exactly the scalar behaviour.
  void sgd_step(float lr, std::size_t freeze_prefix_params = 0);

 private:
  void require_supported() const;
  void run_forward(bool train);

  bool supported_ = false;
  std::size_t num_weights_ = 0;
  std::size_t lanes_ = 0;
  std::size_t logit_rows_ = 0;
  std::size_t logit_cols_ = 0;
  Shape input_shape_;

  std::vector<std::unique_ptr<soa::BatchedLayer>> layers_;
  std::unique_ptr<soa::Block> input_;      // lane views over caller tensors
  std::unique_ptr<soa::Block> seed_;       // d(loss)/d(logits), lane-major
  const soa::Block* logits_blk_ = nullptr;
  std::vector<float> prob_scratch_;        // row softmax scratch for loss()
};

}  // namespace specdag::nn
