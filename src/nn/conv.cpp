#include "nn/conv.hpp"

#include "nn/init.hpp"

namespace specdag::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, bool same_padding)
    : filters_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      grad_filters_({out_channels, in_channels * kernel * kernel}),
      grad_bias_({out_channels}) {
  if (in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0) {
    throw std::invalid_argument("Conv2D: zero-sized configuration");
  }
  spec_.in_channels = in_channels;
  spec_.out_channels = out_channels;
  spec_.kernel = kernel;
  spec_.stride = stride;
  spec_.padding = same_padding ? (kernel - 1) / 2 : 0;
}

Tensor Conv2D::forward(const Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != spec_.in_channels) {
    throw std::invalid_argument("Conv2D::forward: expected NCHW with C=" +
                                std::to_string(spec_.in_channels) + ", got " +
                                shape_to_string(input.shape()));
  }
  const std::size_t n = input.dim(0);
  const std::size_t oh = spec_.out_dim(input.dim(2));
  const std::size_t ow = spec_.out_dim(input.dim(3));
  const std::size_t positions = oh * ow;
  const std::size_t ckk = spec_.in_channels * spec_.kernel * spec_.kernel;
  if (train) {
    // im2col into the cached-cols tensor (resized in place — capacity is
    // reused across batches) so backward can replay the forward matmul.
    cached_cols_.resize({n * positions, ckk});
    im2col_into(input.raw(), n, input.dim(2), input.dim(3), spec_, cached_cols_.raw());
    cached_input_shape_ = input.shape();
    out_cols_scratch_.resize(n * positions * spec_.out_channels);
    matmul_transposed_b_into(cached_cols_.raw(), filters_.raw(), out_cols_scratch_.data(),
                             n * positions, ckk, spec_.out_channels);
    add_row_bias_into(out_cols_scratch_.data(), bias_.raw(), n * positions,
                      spec_.out_channels);
    Tensor output({n, spec_.out_channels, oh, ow});
    positions_to_nchw(out_cols_scratch_.data(), output.raw(), n, spec_.out_channels,
                      positions);
    return output;
  }
  // Eval path: same pipeline through scratch buffers that persist across
  // calls (the old conv2d_forward free function allocated cols every time).
  eval_cols_scratch_.resize(n * positions * ckk);
  im2col_into(input.raw(), n, input.dim(2), input.dim(3), spec_, eval_cols_scratch_.data());
  out_cols_scratch_.resize(n * positions * spec_.out_channels);
  matmul_transposed_b_into(eval_cols_scratch_.data(), filters_.raw(), out_cols_scratch_.data(),
                           n * positions, ckk, spec_.out_channels);
  add_row_bias_into(out_cols_scratch_.data(), bias_.raw(), n * positions, spec_.out_channels);
  Tensor output({n, spec_.out_channels, oh, ow});
  positions_to_nchw(out_cols_scratch_.data(), output.raw(), n, spec_.out_channels, positions);
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_cols_.numel() == 0) {
    throw std::logic_error("Conv2D::backward: no cached forward activation");
  }
  const std::size_t n = cached_input_shape_[0];
  const std::size_t oh = spec_.out_dim(cached_input_shape_[2]);
  const std::size_t ow = spec_.out_dim(cached_input_shape_[3]);
  const std::size_t positions = oh * ow;
  if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
      grad_output.dim(1) != spec_.out_channels || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument("Conv2D::backward: grad shape mismatch");
  }
  // Rearrange grad NCHW -> [N*OH*OW, OC] to mirror the forward matmul.
  grad_cols_scratch_.resize(n * positions * spec_.out_channels);
  nchw_to_positions(grad_output.raw(), grad_cols_scratch_.data(), n, spec_.out_channels,
                    positions);
  const float* pc = grad_cols_scratch_.data();
  // dFilters += grad_cols^T @ cols ; dBias += colsum(grad_cols)
  const std::size_t ckk = spec_.in_channels * spec_.kernel * spec_.kernel;
  grad_f_scratch_.assign(spec_.out_channels * ckk, 0.0f);
  matmul_transposed_a_acc(pc, cached_cols_.raw(), grad_f_scratch_.data(), n * positions,
                          spec_.out_channels, ckk);
  for (std::size_t i = 0; i < grad_f_scratch_.size(); ++i) {
    grad_filters_[i] += grad_f_scratch_[i];
  }
  for (std::size_t r = 0; r < n * positions; ++r) {
    for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
      grad_bias_[oc] += pc[r * spec_.out_channels + oc];
    }
  }
  // dInput = col2im(grad_cols @ filters)
  dcols_scratch_.resize(n * positions * ckk);
  matmul_into(pc, filters_.raw(), dcols_scratch_.data(), n * positions, spec_.out_channels,
              ckk);
  Tensor grad_input(cached_input_shape_);
  col2im_into(dcols_scratch_.data(), n, cached_input_shape_[2], cached_input_shape_[3], spec_,
              grad_input.raw());
  return grad_input;
}

std::vector<Param> Conv2D::params() {
  return {{&filters_, &grad_filters_, "conv.filters"}, {&bias_, &grad_bias_, "conv.bias"}};
}

void Conv2D::init_params(Rng& rng) {
  const std::size_t fan_in = spec_.in_channels * spec_.kernel * spec_.kernel;
  const std::size_t fan_out = spec_.out_channels * spec_.kernel * spec_.kernel;
  glorot_uniform(filters_, fan_in, fan_out, rng);
  zero_init(bias_);
}

MaxPool2D::MaxPool2D(std::size_t size, std::size_t stride) : size_(size), stride_(stride) {
  if (size == 0 || stride == 0) throw std::invalid_argument("MaxPool2D: zero size/stride");
}

Tensor MaxPool2D::forward(const Tensor& input, bool train) {
  MaxPoolResult result = maxpool2d_forward(input, size_, stride_);
  if (train) {
    cached_input_shape_ = input.shape();
    cached_argmax_ = std::move(result.argmax);
  }
  return std::move(result.output);
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (cached_argmax_.empty()) {
    throw std::logic_error("MaxPool2D::backward: no cached forward activation");
  }
  return maxpool2d_backward(grad_output, cached_input_shape_, cached_argmax_);
}

Tensor Flatten::forward(const Tensor& input, bool train) {
  if (input.rank() < 2) throw std::invalid_argument("Flatten: input rank must be >= 2");
  if (train) cached_input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty()) {
    throw std::logic_error("Flatten::backward: no cached forward activation");
  }
  return grad_output.reshaped(cached_input_shape_);
}

}  // namespace specdag::nn
