// Convolutional building blocks for the paper's CNN models: Conv2D with
// square kernels (+ optional same-padding), MaxPool2D, and Flatten to bridge
// into dense layers.
#pragma once

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace specdag::nn {

class Conv2D : public Layer {
 public:
  // `padding` defaults to (kernel-1)/2 rounded down when `same_padding` is
  // true, matching the TF "same" behaviour for odd kernels as used in LEAF.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride = 1, bool same_padding = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init_params(Rng& rng) override;
  std::string name() const override { return "Conv2D"; }

  const Conv2dSpec& spec() const { return spec_; }

 private:
  Conv2dSpec spec_;
  Tensor filters_;       // [OC, C*K*K]
  Tensor bias_;          // [OC]
  Tensor grad_filters_;
  Tensor grad_bias_;
  Tensor cached_cols_;   // im2col of the last training input
  Shape cached_input_shape_;
  // Scratch reused across forward/backward calls (capacity is retained, so
  // the per-batch im2col/GEMM temporaries stop allocating after warm-up).
  std::vector<float> out_cols_scratch_;
  std::vector<float> eval_cols_scratch_;
  std::vector<float> grad_cols_scratch_;
  std::vector<float> grad_f_scratch_;
  std::vector<float> dcols_scratch_;
};

class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::size_t size, std::size_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2D"; }

  std::size_t size() const { return size_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t size_;
  std::size_t stride_;
  Shape cached_input_shape_;
  std::vector<std::size_t> cached_argmax_;
};

// [N, C, H, W] -> [N, C*H*W].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_input_shape_;
};

}  // namespace specdag::nn
