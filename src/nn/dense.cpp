#include "nn/dense.hpp"

#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace specdag::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      weight_({in_features, out_features}),
      bias_({out_features}),
      grad_weight_({in_features, out_features}),
      grad_bias_({out_features}) {
  if (in_ == 0 || out_ == 0) throw std::invalid_argument("Dense: zero-sized layer");
}

Tensor Dense::forward(const Tensor& input, bool train) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected [batch, " + std::to_string(in_) +
                                "], got " + shape_to_string(input.shape()));
  }
  if (train) cached_input_ = input;
  Tensor out = matmul(input, weight_);
  add_row_bias(out, bias_);
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cached_input_.numel() == 0) {
    throw std::logic_error("Dense::backward: no cached forward activation");
  }
  // dW += x^T g ; db += colsum(g) ; dx = g W^T
  // The dW product lands in a persistent scratch buffer (zeroed, accumulated
  // into, then added onto grad_weight_ — same arithmetic as the old
  // tmp-Tensor path without the per-batch allocation).
  grad_w_scratch_.assign(in_ * out_, 0.0f);
  matmul_transposed_a_acc(cached_input_.raw(), grad_output.raw(), grad_w_scratch_.data(),
                          grad_output.dim(0), in_, out_);
  for (std::size_t i = 0; i < grad_w_scratch_.size(); ++i) {
    grad_weight_[i] += grad_w_scratch_[i];
  }
  const std::size_t batch = grad_output.dim(0);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < out_; ++c) grad_bias_[c] += grad_output.at(r, c);
  }
  return matmul_transposed_b(grad_output, weight_);
}

std::vector<Param> Dense::params() {
  return {{&weight_, &grad_weight_, "dense.weight"}, {&bias_, &grad_bias_, "dense.bias"}};
}

void Dense::init_params(Rng& rng) {
  glorot_uniform(weight_, in_, out_, rng);
  zero_init(bias_);
}

}  // namespace specdag::nn
