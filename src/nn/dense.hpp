// Fully connected layer: y = xW + b, input [batch, in], output [batch, out].
#pragma once

#include "nn/layer.hpp"

namespace specdag::nn {

class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init_params(Rng& rng) override;
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;       // [in, out]
  Tensor bias_;         // [out]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
  std::vector<float> grad_w_scratch_;  // reused across backward calls
};

}  // namespace specdag::nn
