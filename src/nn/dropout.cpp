#include "nn/dropout.hpp"

namespace specdag::nn {

Dropout::Dropout(double rate, Rng rng) : rate_(rate), rng_(rng) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("Dropout: rate outside [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || rate_ == 0.0) return input;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_.assign(input.numel(), 0.0f);
  Tensor out = input;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (!rng_.bernoulli(rate_)) {
      mask_[i] = keep_scale;
      out[i] *= keep_scale;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (rate_ == 0.0) return grad_output;
  if (mask_.size() != grad_output.numel()) {
    throw std::logic_error("Dropout::backward: no matching cached mask");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= mask_[i];
  return grad;
}

}  // namespace specdag::nn
