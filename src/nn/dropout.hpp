// Inverted dropout: active only in train mode, identity at inference.
#pragma once

#include "nn/layer.hpp"

namespace specdag::nn {

class Dropout : public Layer {
 public:
  // `rate` is the drop probability in [0, 1). The layer owns a forked RNG so
  // dropout masks are reproducible per layer instance.
  Dropout(double rate, Rng rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  std::vector<float> mask_;  // scale factors of the last training forward
};

}  // namespace specdag::nn
