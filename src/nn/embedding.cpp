#include "nn/embedding.hpp"

#include <cmath>

#include "nn/init.hpp"

namespace specdag::nn {

Embedding::Embedding(std::size_t vocab_size, std::size_t dim)
    : vocab_(vocab_size),
      dim_(dim),
      table_({vocab_size, dim}),
      grad_table_({vocab_size, dim}) {
  if (vocab_ == 0 || dim_ == 0) throw std::invalid_argument("Embedding: zero-sized table");
}

Tensor Embedding::forward(const Tensor& input, bool train) {
  if (input.rank() != 2) {
    throw std::invalid_argument("Embedding::forward: expected [batch, seq], got " +
                                shape_to_string(input.shape()));
  }
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  Tensor out({batch, seq, dim_});
  std::vector<std::size_t> tokens(batch * seq);
  for (std::size_t i = 0; i < batch * seq; ++i) {
    const float raw = input[i];
    if (raw < 0.0f || std::floor(raw) != raw || static_cast<std::size_t>(raw) >= vocab_) {
      throw std::invalid_argument("Embedding::forward: token id out of range");
    }
    const auto tok = static_cast<std::size_t>(raw);
    tokens[i] = tok;
    const float* src = table_.raw() + tok * dim_;
    float* dst = out.raw() + i * dim_;
    std::copy(src, src + dim_, dst);
  }
  if (train) {
    cached_tokens_ = std::move(tokens);
    cached_input_shape_ = input.shape();
  }
  return out;
}

Tensor Embedding::backward(const Tensor& grad_output) {
  if (cached_tokens_.empty()) {
    throw std::logic_error("Embedding::backward: no cached forward activation");
  }
  if (grad_output.numel() != cached_tokens_.size() * dim_) {
    throw std::invalid_argument("Embedding::backward: grad shape mismatch");
  }
  for (std::size_t i = 0; i < cached_tokens_.size(); ++i) {
    const float* src = grad_output.raw() + i * dim_;
    float* dst = grad_table_.raw() + cached_tokens_[i] * dim_;
    for (std::size_t d = 0; d < dim_; ++d) dst[d] += src[d];
  }
  // Token ids are not differentiable; return a zero gradient of input shape.
  return Tensor(cached_input_shape_);
}

std::vector<Param> Embedding::params() {
  return {{&table_, &grad_table_, "embedding.table"}};
}

void Embedding::init_params(Rng& rng) { normal_init(table_, 0.05, rng); }

}  // namespace specdag::nn
