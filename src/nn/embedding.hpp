// Token embedding lookup for the Poets next-character model.
//
// Input is a [batch, seq] tensor of token ids stored as floats (the library
// keeps a single tensor type); output is [batch, seq, dim].
#pragma once

#include "nn/layer.hpp"

namespace specdag::nn {

class Embedding : public Layer {
 public:
  Embedding(std::size_t vocab_size, std::size_t dim);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init_params(Rng& rng) override;
  std::string name() const override { return "Embedding"; }

  std::size_t vocab_size() const { return vocab_; }
  std::size_t dim() const { return dim_; }

 private:
  std::size_t vocab_;
  std::size_t dim_;
  Tensor table_;       // [vocab, dim]
  Tensor grad_table_;
  std::vector<std::size_t> cached_tokens_;
  Shape cached_input_shape_;
};

}  // namespace specdag::nn
