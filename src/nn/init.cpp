#include "nn/init.hpp"

#include <cmath>

namespace specdag::nn {

void glorot_uniform(Tensor& t, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  if (fan_in + fan_out == 0) throw std::invalid_argument("glorot_uniform: zero fans");
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(-limit, limit));
}

void normal_init(Tensor& t, double stddev, Rng& rng) {
  for (auto& v : t.data()) v = static_cast<float>(rng.normal(0.0, stddev));
}

void zero_init(Tensor& t) { t.fill(0.0f); }

}  // namespace specdag::nn
