// Weight initializers. Glorot/Xavier uniform is the default for dense and
// convolutional layers; orthogonal-ish scaled normal for recurrent kernels.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace specdag::nn {

// U(-limit, limit) with limit = sqrt(6 / (fan_in + fan_out)).
void glorot_uniform(Tensor& t, std::size_t fan_in, std::size_t fan_out, Rng& rng);

// N(0, stddev).
void normal_init(Tensor& t, double stddev, Rng& rng);

void zero_init(Tensor& t);

}  // namespace specdag::nn
