// Layer abstraction: explicit forward/backward with parameter registration.
//
// The library deliberately avoids a general autodiff graph: the paper's
// models are fixed sequential stacks (CNNs and an LSTM), so classic
// layer-wise backprop is simpler and faster. Each layer owns its parameters
// and gradient buffers and exposes them through `params()` so optimizers and
// the federated-averaging code can treat all models uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace specdag::nn {

// A view of one trainable parameter tensor and its gradient accumulator.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output for `input`. When `train` is true the layer
  // caches whatever it needs for backward() and may apply train-only
  // behaviour (e.g. dropout).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  // Given dL/d(output), accumulates parameter gradients and returns
  // dL/d(input). Must be called after a forward() with train == true.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Trainable parameters; empty for stateless layers.
  virtual std::vector<Param> params() { return {}; }

  // Re-draws initial parameter values (no-op for stateless layers).
  virtual void init_params(Rng& /*rng*/) {}

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace specdag::nn
