#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace specdag::nn {
namespace {

void check_labels(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.rank() != 2) throw std::invalid_argument("loss: logits must be [batch, classes]");
  if (logits.dim(0) != labels.size()) {
    throw std::invalid_argument("loss: batch size mismatch");
  }
  const int classes = static_cast<int>(logits.dim(1));
  for (int l : labels) {
    if (l < 0 || l >= classes) throw std::invalid_argument("loss: label out of range");
  }
}

}  // namespace

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax: logits must be [batch, classes]");
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  Tensor probs = logits;
  for (std::size_t r = 0; r < batch; ++r) {
    float* row = probs.raw() + r * classes;
    const float mx = *std::max_element(row, row + classes);
    float sum = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (std::size_t c = 0; c < classes; ++c) row[c] /= sum;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  check_labels(logits, labels);
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  Tensor probs = softmax(logits);
  double total = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    float* row = probs.raw() + r * classes;
    const float p = std::max(row[static_cast<std::size_t>(labels[r])], 1e-12f);
    total -= std::log(p);
    // grad = (softmax - onehot) / batch, computed in place.
    row[static_cast<std::size_t>(labels[r])] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) row[c] *= inv_batch;
  }
  return {total / static_cast<double>(batch), std::move(probs)};
}

double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<int>& labels) {
  check_labels(logits, labels);
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  Tensor probs = softmax(logits);
  double total = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    const float p =
        std::max(probs.raw()[r * classes + static_cast<std::size_t>(labels[r])], 1e-12f);
    total -= std::log(p);
  }
  return total / static_cast<double>(batch);
}

std::vector<int> predict_classes(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("predict_classes: logits must be rank-2");
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  std::vector<int> preds(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const float* row = logits.raw() + r * classes;
    preds[r] = static_cast<int>(std::max_element(row, row + classes) - row);
  }
  return preds;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  check_labels(logits, labels);
  const std::vector<int> preds = predict_classes(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace specdag::nn
