// Softmax cross-entropy loss with fused gradient, plus classification
// accuracy helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace specdag::nn {

struct LossResult {
  double loss = 0.0;     // mean over the batch
  Tensor grad_logits;    // dL/dlogits, already divided by batch size
};

// logits [batch, classes], labels in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

// Mean loss only (no gradient) — used during evaluation.
double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<int>& labels);

// Row-wise softmax probabilities.
Tensor softmax(const Tensor& logits);

// argmax per row.
std::vector<int> predict_classes(const Tensor& logits);

// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace specdag::nn
