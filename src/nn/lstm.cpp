#include "nn/lstm.hpp"

#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "tensor/ops.hpp"

namespace specdag::nn {

LSTM::LSTM(std::size_t in_dim, std::size_t hidden)
    : in_dim_(in_dim),
      hidden_(hidden),
      wx_({in_dim, 4 * hidden}),
      wh_({hidden, 4 * hidden}),
      b_({4 * hidden}),
      grad_wx_({in_dim, 4 * hidden}),
      grad_wh_({hidden, 4 * hidden}),
      grad_b_({4 * hidden}) {
  if (in_dim == 0 || hidden == 0) throw std::invalid_argument("LSTM: zero-sized layer");
}

Tensor LSTM::forward(const Tensor& input, bool train) {
  if (input.rank() != 3 || input.dim(2) != in_dim_) {
    throw std::invalid_argument("LSTM::forward: expected [batch, seq, " +
                                std::to_string(in_dim_) + "], got " +
                                shape_to_string(input.shape()));
  }
  const std::size_t batch = input.dim(0), seq = input.dim(1);
  if (seq == 0) throw std::invalid_argument("LSTM::forward: empty sequence");
  steps_.clear();
  cached_input_shape_ = input.shape();

  Tensor h({batch, hidden_});
  Tensor c({batch, hidden_});
  for (std::size_t t = 0; t < seq; ++t) {
    // Slice x_t out of the contiguous [batch, seq, in] tensor.
    Tensor x({batch, in_dim_});
    for (std::size_t bidx = 0; bidx < batch; ++bidx) {
      const float* src = input.raw() + (bidx * seq + t) * in_dim_;
      std::copy(src, src + in_dim_, x.raw() + bidx * in_dim_);
    }
    Tensor pre = matmul(x, wx_);
    pre += matmul(h, wh_);
    add_row_bias(pre, b_);
    // Apply gate nonlinearities in place: sigmoid for i/f/o, tanh for g.
    Tensor gates = pre;
    for (std::size_t bidx = 0; bidx < batch; ++bidx) {
      float* row = gates.raw() + bidx * 4 * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        row[j] = sigmoidf(row[j]);                           // i
        row[hidden_ + j] = sigmoidf(row[hidden_ + j]);       // f
        row[2 * hidden_ + j] = tanhf_(row[2 * hidden_ + j]); // g
        row[3 * hidden_ + j] = sigmoidf(row[3 * hidden_ + j]);  // o
      }
    }
    Tensor c_next({batch, hidden_});
    Tensor h_next({batch, hidden_});
    for (std::size_t bidx = 0; bidx < batch; ++bidx) {
      const float* grow = gates.raw() + bidx * 4 * hidden_;
      const float* crow = c.raw() + bidx * hidden_;
      float* cn = c_next.raw() + bidx * hidden_;
      float* hn = h_next.raw() + bidx * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float i = grow[j], f = grow[hidden_ + j], g = grow[2 * hidden_ + j],
                    o = grow[3 * hidden_ + j];
        cn[j] = f * crow[j] + i * g;
        hn[j] = o * tanhf_(cn[j]);
      }
    }
    if (train) {
      steps_.push_back({std::move(x), h, c, std::move(gates), c_next});
    }
    h = std::move(h_next);
    c = std::move(c_next);
  }
  return h;
}

Tensor LSTM::backward(const Tensor& grad_output) {
  if (steps_.empty()) throw std::logic_error("LSTM::backward: no cached forward pass");
  const std::size_t batch = cached_input_shape_[0], seq = cached_input_shape_[1];
  if (grad_output.rank() != 2 || grad_output.dim(0) != batch || grad_output.dim(1) != hidden_) {
    throw std::invalid_argument("LSTM::backward: grad shape mismatch");
  }
  Tensor grad_input(cached_input_shape_);
  Tensor dh = grad_output;        // dL/dh_t flowing backwards
  Tensor dc({batch, hidden_});    // dL/dc_t

  for (std::size_t ti = seq; ti-- > 0;) {
    const StepCache& st = steps_[ti];
    // Gate gradients: gates are (i, f, g, o) post-activation.
    Tensor dgates({batch, 4 * hidden_});
    for (std::size_t bidx = 0; bidx < batch; ++bidx) {
      const float* grow = st.gates.raw() + bidx * 4 * hidden_;
      const float* crow = st.c.raw() + bidx * hidden_;
      const float* cprev = st.c_prev.raw() + bidx * hidden_;
      const float* dhrow = dh.raw() + bidx * hidden_;
      float* dcrow = dc.raw() + bidx * hidden_;
      float* dgrow = dgates.raw() + bidx * 4 * hidden_;
      for (std::size_t j = 0; j < hidden_; ++j) {
        const float i = grow[j], f = grow[hidden_ + j], g = grow[2 * hidden_ + j],
                    o = grow[3 * hidden_ + j];
        const float tc = tanhf_(crow[j]);
        // h = o * tanh(c): contributions into o and c.
        const float do_ = dhrow[j] * tc;
        const float dc_total = dcrow[j] + dhrow[j] * o * (1.0f - tc * tc);
        const float di = dc_total * g;
        const float df = dc_total * cprev[j];
        const float dg = dc_total * i;
        // Chain through the gate nonlinearities.
        dgrow[j] = di * i * (1.0f - i);
        dgrow[hidden_ + j] = df * f * (1.0f - f);
        dgrow[2 * hidden_ + j] = dg * (1.0f - g * g);
        dgrow[3 * hidden_ + j] = do_ * o * (1.0f - o);
        // dc flows to the previous timestep through the forget gate.
        dcrow[j] = dc_total * f;
      }
    }
    // Parameter gradients.
    grad_wx_ += matmul_transposed_a(st.x, dgates);
    grad_wh_ += matmul_transposed_a(st.h_prev, dgates);
    for (std::size_t bidx = 0; bidx < batch; ++bidx) {
      const float* dgrow = dgates.raw() + bidx * 4 * hidden_;
      for (std::size_t j = 0; j < 4 * hidden_; ++j) grad_b_[j] += dgrow[j];
    }
    // Input gradient for this timestep.
    Tensor dx = matmul_transposed_b(dgates, wx_);
    for (std::size_t bidx = 0; bidx < batch; ++bidx) {
      float* dst = grad_input.raw() + (bidx * seq + ti) * in_dim_;
      const float* src = dx.raw() + bidx * in_dim_;
      std::copy(src, src + in_dim_, dst);
    }
    // Hidden gradient for the previous timestep.
    dh = matmul_transposed_b(dgates, wh_);
  }
  return grad_input;
}

std::vector<Param> LSTM::params() {
  return {{&wx_, &grad_wx_, "lstm.wx"}, {&wh_, &grad_wh_, "lstm.wh"}, {&b_, &grad_b_, "lstm.b"}};
}

void LSTM::init_params(Rng& rng) {
  glorot_uniform(wx_, in_dim_, 4 * hidden_, rng);
  glorot_uniform(wh_, hidden_, 4 * hidden_, rng);
  zero_init(b_);
  // Forget-gate bias of 1.0: standard trick to ease gradient flow early on.
  for (std::size_t j = 0; j < hidden_; ++j) b_[hidden_ + j] = 1.0f;
}

}  // namespace specdag::nn
