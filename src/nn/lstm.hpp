// Single-layer LSTM with full backpropagation through time.
//
// Input  [batch, seq, in_dim]; output is the hidden state at the last
// timestep, [batch, hidden] (the Poets model feeds it into a dense softmax
// head for next-character prediction). Gate layout inside the fused weight
// matrices is (input, forget, cell, output).
#pragma once

#include "nn/layer.hpp"

namespace specdag::nn {

class LSTM : public Layer {
 public:
  LSTM(std::size_t in_dim, std::size_t hidden);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init_params(Rng& rng) override;
  std::string name() const override { return "LSTM"; }

  std::size_t hidden_size() const { return hidden_; }

 private:
  std::size_t in_dim_;
  std::size_t hidden_;
  Tensor wx_;  // [in_dim, 4H]
  Tensor wh_;  // [H, 4H]
  Tensor b_;   // [4H]
  Tensor grad_wx_;
  Tensor grad_wh_;
  Tensor grad_b_;

  // BPTT caches (train-mode forward only).
  struct StepCache {
    Tensor x;       // [batch, in_dim]
    Tensor h_prev;  // [batch, H]
    Tensor c_prev;  // [batch, H]
    Tensor gates;   // [batch, 4H] post-activation (i, f, g, o)
    Tensor c;       // [batch, H]
  };
  std::vector<StepCache> steps_;
  Shape cached_input_shape_;
};

}  // namespace specdag::nn
