#include "nn/model.hpp"

#include <cmath>
#include <stdexcept>

namespace specdag::nn {

Tensor Sequential::forward(const Tensor& input, bool train) {
  if (layers_.empty()) throw std::logic_error("Sequential::forward: no layers");
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

void Sequential::backward(const Tensor& grad_output) {
  if (layers_.empty()) throw std::logic_error("Sequential::backward: no layers");
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  return all;
}

std::size_t Sequential::num_weights() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->numel();
  return n;
}

void Sequential::init_params(Rng& rng) {
  for (auto& layer : layers_) layer->init_params(rng);
}

void Sequential::zero_grads() {
  for (auto& p : params()) p.grad->fill(0.0f);
}

WeightVector Sequential::get_weights() {
  WeightVector flat;
  flat.reserve(num_weights());
  for (const auto& p : params()) {
    const auto& data = p.value->data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void Sequential::set_weights(const WeightVector& weights) {
  std::size_t offset = 0;
  for (auto& p : params()) {
    auto& data = p.value->data();
    if (offset + data.size() > weights.size()) {
      throw std::invalid_argument("Sequential::set_weights: weight vector too short");
    }
    std::copy(weights.begin() + static_cast<std::ptrdiff_t>(offset),
              weights.begin() + static_cast<std::ptrdiff_t>(offset + data.size()), data.begin());
    offset += data.size();
  }
  if (offset != weights.size()) {
    throw std::invalid_argument("Sequential::set_weights: weight vector too long (" +
                                std::to_string(weights.size()) + " vs " + std::to_string(offset) +
                                ")");
  }
}

WeightVector average_weights(const std::vector<const WeightVector*>& weights) {
  if (weights.empty()) throw std::invalid_argument("average_weights: empty input");
  std::vector<double> uniform(weights.size(), 1.0);
  return weighted_average_weights(weights, uniform);
}

WeightVector average_weights(const WeightVector& a, const WeightVector& b) {
  return average_weights({&a, &b});
}

WeightVector weighted_average_weights(const std::vector<const WeightVector*>& weights,
                                      const std::vector<double>& coefficients) {
  if (weights.empty()) throw std::invalid_argument("weighted_average_weights: empty input");
  if (weights.size() != coefficients.size()) {
    throw std::invalid_argument("weighted_average_weights: coefficient count mismatch");
  }
  const std::size_t n = weights.front()->size();
  double total = 0.0;
  for (double c : coefficients) {
    if (c < 0.0) throw std::invalid_argument("weighted_average_weights: negative coefficient");
    total += c;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_average_weights: zero total weight");
  std::vector<double> acc(n, 0.0);
  for (std::size_t w = 0; w < weights.size(); ++w) {
    if (weights[w]->size() != n) {
      throw std::invalid_argument("weighted_average_weights: length mismatch");
    }
    const double coeff = coefficients[w] / total;
    if (coeff == 0.0) continue;
    const auto& vec = *weights[w];
    for (std::size_t i = 0; i < n; ++i) acc[i] += coeff * static_cast<double>(vec[i]);
  }
  WeightVector out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

double weight_distance(const WeightVector& a, const WeightVector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("weight_distance: length mismatch");
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace specdag::nn
