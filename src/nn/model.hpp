// Sequential model: an owned stack of layers with whole-model weight
// (de)serialization. Model weights travel through the DAG as flat
// std::vector<float> payloads, so get_weights/set_weights define the wire
// format of the whole system.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace specdag::nn {

// Flat serialized parameter vector (the DAG transaction payload type).
using WeightVector = std::vector<float>;

class Sequential {
 public:
  Sequential() = default;

  // Non-copyable (layers own caches); movable.
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void add_layer(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  Tensor forward(const Tensor& input, bool train);

  // Backpropagates dL/d(output) through all layers, accumulating gradients.
  void backward(const Tensor& grad_output);

  // All trainable parameters across layers, in layer order.
  std::vector<Param> params();

  // Number of trainable scalars.
  std::size_t num_weights();

  void init_params(Rng& rng);
  void zero_grads();

  WeightVector get_weights();
  void set_weights(const WeightVector& weights);

 private:
  std::vector<LayerPtr> layers_;
};

// Constructs a fresh, architecture-identical model; every experiment defines
// one of these so clients/servers can instantiate private model replicas.
using ModelFactory = std::function<Sequential()>;

// Elementwise average of weight vectors (all must be the same length).
WeightVector average_weights(const std::vector<const WeightVector*>& weights);
WeightVector average_weights(const WeightVector& a, const WeightVector& b);

// Weighted average with non-negative coefficients (FedAvg aggregation by
// client sample counts). Coefficients are normalized internally.
WeightVector weighted_average_weights(const std::vector<const WeightVector*>& weights,
                                      const std::vector<double>& coefficients);

// Euclidean distance between two weight vectors (used by tests and the
// cluster-distance diagnostics).
double weight_distance(const WeightVector& a, const WeightVector& b);

}  // namespace specdag::nn
