#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace specdag::nn {

LayerNorm::LayerNorm(std::size_t features, float epsilon)
    : features_(features),
      epsilon_(epsilon),
      gamma_({features}),
      beta_({features}),
      grad_gamma_({features}),
      grad_beta_({features}) {
  if (features == 0) throw std::invalid_argument("LayerNorm: zero features");
  if (epsilon <= 0.0f) throw std::invalid_argument("LayerNorm: non-positive epsilon");
  gamma_.fill(1.0f);
}

Tensor LayerNorm::forward(const Tensor& input, bool train) {
  if (input.rank() != 2 || input.dim(1) != features_) {
    throw std::invalid_argument("LayerNorm::forward: expected [batch, " +
                                std::to_string(features_) + "]");
  }
  const std::size_t batch = input.dim(0);
  Tensor out({batch, features_});
  Tensor normalized({batch, features_});
  std::vector<float> inv_stds(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const float* row = input.raw() + r * features_;
    float mean = 0.0f;
    for (std::size_t c = 0; c < features_; ++c) mean += row[c];
    mean /= static_cast<float>(features_);
    float var = 0.0f;
    for (std::size_t c = 0; c < features_; ++c) var += (row[c] - mean) * (row[c] - mean);
    var /= static_cast<float>(features_);
    const float inv_std = 1.0f / std::sqrt(var + epsilon_);
    inv_stds[r] = inv_std;
    float* nrow = normalized.raw() + r * features_;
    float* orow = out.raw() + r * features_;
    for (std::size_t c = 0; c < features_; ++c) {
      nrow[c] = (row[c] - mean) * inv_std;
      orow[c] = gamma_[c] * nrow[c] + beta_[c];
    }
  }
  if (train) {
    cached_normalized_ = std::move(normalized);
    cached_inv_std_ = std::move(inv_stds);
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  if (cached_normalized_.numel() == 0) {
    throw std::logic_error("LayerNorm::backward: no cached forward activation");
  }
  if (!grad_output.same_shape(cached_normalized_)) {
    throw std::invalid_argument("LayerNorm::backward: grad shape mismatch");
  }
  const std::size_t batch = grad_output.dim(0);
  const auto n = static_cast<float>(features_);
  Tensor grad_input({batch, features_});
  for (std::size_t r = 0; r < batch; ++r) {
    const float* g = grad_output.raw() + r * features_;
    const float* xh = cached_normalized_.raw() + r * features_;
    float* gi = grad_input.raw() + r * features_;
    // dL/dgamma, dL/dbeta accumulate across the batch.
    float sum_g_gamma = 0.0f, sum_g_gamma_xhat = 0.0f;
    for (std::size_t c = 0; c < features_; ++c) {
      grad_gamma_[c] += g[c] * xh[c];
      grad_beta_[c] += g[c];
      const float gg = g[c] * gamma_[c];
      sum_g_gamma += gg;
      sum_g_gamma_xhat += gg * xh[c];
    }
    // dL/dx = inv_std/N * (N*g*gamma - sum(g*gamma) - x_hat * sum(g*gamma*x_hat))
    const float inv_std = cached_inv_std_[r];
    for (std::size_t c = 0; c < features_; ++c) {
      const float gg = g[c] * gamma_[c];
      gi[c] = inv_std / n * (n * gg - sum_g_gamma - xh[c] * sum_g_gamma_xhat);
    }
  }
  return grad_input;
}

std::vector<Param> LayerNorm::params() {
  return {{&gamma_, &grad_gamma_, "layernorm.gamma"}, {&beta_, &grad_beta_, "layernorm.beta"}};
}

void LayerNorm::init_params(Rng& /*rng*/) {
  gamma_.fill(1.0f);
  beta_.fill(0.0f);
}

AvgPool2D::AvgPool2D(std::size_t size, std::size_t stride) : size_(size), stride_(stride) {
  if (size == 0 || stride == 0) throw std::invalid_argument("AvgPool2D: zero size/stride");
}

Tensor AvgPool2D::forward(const Tensor& input, bool train) {
  if (input.rank() != 4) throw std::invalid_argument("AvgPool2D: input must be NCHW");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  if (h < size_ || w < size_) throw std::invalid_argument("AvgPool2D: window larger than input");
  const std::size_t oh = (h - size_) / stride_ + 1;
  const std::size_t ow = (w - size_) / stride_ + 1;
  if (train) cached_input_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  const float scale = 1.0f / static_cast<float>(size_ * size_);
  const float* pin = input.raw();
  float* pout = out.raw();
  std::size_t out_i = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t plane = (img * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          float sum = 0.0f;
          for (std::size_t ky = 0; ky < size_; ++ky) {
            for (std::size_t kx = 0; kx < size_; ++kx) {
              sum += pin[plane + (oy * stride_ + ky) * w + (ox * stride_ + kx)];
            }
          }
          pout[out_i] = sum * scale;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  if (cached_input_shape_.empty()) {
    throw std::logic_error("AvgPool2D::backward: no cached forward activation");
  }
  const std::size_t n = cached_input_shape_[0], c = cached_input_shape_[1],
                    h = cached_input_shape_[2], w = cached_input_shape_[3];
  const std::size_t oh = (h - size_) / stride_ + 1;
  const std::size_t ow = (w - size_) / stride_ + 1;
  if (grad_output.numel() != n * c * oh * ow) {
    throw std::invalid_argument("AvgPool2D::backward: grad shape mismatch");
  }
  Tensor grad_input(cached_input_shape_);
  const float scale = 1.0f / static_cast<float>(size_ * size_);
  const float* pg = grad_output.raw();
  float* pi = grad_input.raw();
  std::size_t out_i = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t plane = (img * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          const float g = pg[out_i] * scale;
          for (std::size_t ky = 0; ky < size_; ++ky) {
            for (std::size_t kx = 0; kx < size_; ++kx) {
              pi[plane + (oy * stride_ + ky) * w + (ox * stride_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace specdag::nn
