// Normalization and average-pooling layers — rounding out the layer zoo for
// users building their own model families on the library.
#pragma once

#include "nn/layer.hpp"

namespace specdag::nn {

// Layer normalization over the last dimension of a [batch, features] input:
// y = gamma * (x - mean) / sqrt(var + eps) + beta, statistics per row.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(std::size_t features, float epsilon = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  void init_params(Rng& rng) override;
  std::string name() const override { return "LayerNorm"; }

 private:
  std::size_t features_;
  float epsilon_;
  Tensor gamma_;       // [features]
  Tensor beta_;        // [features]
  Tensor grad_gamma_;
  Tensor grad_beta_;
  // Caches for backward.
  Tensor cached_normalized_;   // x_hat
  std::vector<float> cached_inv_std_;  // per row
};

// Average pooling over square windows, NCHW layout.
class AvgPool2D : public Layer {
 public:
  AvgPool2D(std::size_t size, std::size_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2D"; }

 private:
  std::size_t size_;
  std::size_t stride_;
  Shape cached_input_shape_;
};

}  // namespace specdag::nn
