#include "nn/optimizer.hpp"

#include <stdexcept>

#include "tensor/lanes.hpp"

namespace specdag::nn {

Sgd::Sgd(double learning_rate) : lr_(learning_rate) {
  if (learning_rate <= 0.0) throw std::invalid_argument("Sgd: non-positive learning rate");
}

void Sgd::step(Sequential& model) {
  const float lr = static_cast<float>(lr_);
  for (auto& p : model.params()) {
    lanes::sgd_step(p.value->raw(), p.grad->raw(), lr, p.value->numel());
  }
}

ProximalSgd::ProximalSgd(double learning_rate, double mu, WeightVector global_weights)
    : lr_(learning_rate), mu_(mu), global_(std::move(global_weights)) {
  if (learning_rate <= 0.0) throw std::invalid_argument("ProximalSgd: non-positive learning rate");
  if (mu < 0.0) throw std::invalid_argument("ProximalSgd: negative mu");
}

void ProximalSgd::step(Sequential& model) {
  if (model.num_weights() != global_.size()) {
    throw std::invalid_argument("ProximalSgd: global weight size mismatch");
  }
  const float lr = static_cast<float>(lr_);
  const float mu = static_cast<float>(mu_);
  std::size_t offset = 0;
  for (auto& p : model.params()) {
    auto& w = p.value->data();
    auto& g = p.grad->data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float prox = mu * (w[i] - global_[offset + i]);
      w[i] -= lr * (g[i] + prox);
    }
    offset += w.size();
    p.grad->fill(0.0f);
  }
}

}  // namespace specdag::nn
