// Optimizers: plain SGD (the paper's Table 1 uses SGD for every dataset) and
// proximal SGD implementing the FedProx local objective
//   min F_k(w) + (mu/2) * ||w - w_global||^2.
#pragma once

#include "nn/model.hpp"

namespace specdag::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently accumulated in `model`
  // and zeroes them afterwards.
  virtual void step(Sequential& model) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate);

  void step(Sequential& model) override;

  double learning_rate() const { return lr_; }

 private:
  double lr_;
};

class ProximalSgd : public Optimizer {
 public:
  // `mu` is the proximal coefficient; `global_weights` is w_global in the
  // FedProx objective and must match the model's weight count.
  ProximalSgd(double learning_rate, double mu, WeightVector global_weights);

  void step(Sequential& model) override;

  double mu() const { return mu_; }

 private:
  double lr_;
  double mu_;
  WeightVector global_;
};

}  // namespace specdag::nn
