#include "nn/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace specdag::nn {
namespace {

constexpr char kMagic[4] = {'S', 'D', 'W', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_weights: truncated input");
  return value;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void write_weights(std::ostream& out, const WeightVector& weights) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, static_cast<std::uint64_t>(weights.size()));
  if (!weights.empty()) {
    out.write(reinterpret_cast<const char*>(weights.data()),
              static_cast<std::streamsize>(weights.size() * sizeof(float)));
  }
  write_pod(out, crc32(weights.data(), weights.size() * sizeof(float)));
  if (!out) throw std::runtime_error("write_weights: stream failure");
}

WeightVector read_weights(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("read_weights: bad magic");
  }
  const auto count = read_pod<std::uint64_t>(in);
  // Guard against absurd allocations from corrupted headers.
  if (count > (1ull << 31)) throw std::runtime_error("read_weights: implausible weight count");
  WeightVector weights(static_cast<std::size_t>(count));
  if (count > 0) {
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!in) throw std::runtime_error("read_weights: truncated payload");
  }
  const auto stored_crc = read_pod<std::uint32_t>(in);
  if (stored_crc != crc32(weights.data(), weights.size() * sizeof(float))) {
    throw std::runtime_error("read_weights: checksum mismatch");
  }
  return weights;
}

void save_weights(const std::string& path, const WeightVector& weights) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_weights: cannot open " + path);
  write_weights(out, weights);
}

WeightVector load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_weights: cannot open " + path);
  return read_weights(in);
}

}  // namespace specdag::nn
