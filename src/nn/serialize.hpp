// Binary (de)serialization of weight vectors — checkpointing for clients
// and the genesis model, and the wire format a networked deployment would
// ship between peers.
//
// Format (little-endian):
//   magic   "SDW1"           4 bytes
//   count   uint64           number of float32 values
//   data    float32 * count
//   crc     uint32           CRC-32 over data bytes
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nn/model.hpp"

namespace specdag::nn {

// CRC-32 (IEEE, reflected) over a byte buffer; exposed for tests.
std::uint32_t crc32(const void* data, std::size_t size);

// Writes `weights` to the stream. Throws std::runtime_error on I/O failure.
void write_weights(std::ostream& out, const WeightVector& weights);

// Reads a weight vector; throws std::runtime_error on malformed input,
// wrong magic, or checksum mismatch.
WeightVector read_weights(std::istream& in);

// File convenience wrappers.
void save_weights(const std::string& path, const WeightVector& weights);
WeightVector load_weights(const std::string& path);

}  // namespace specdag::nn
