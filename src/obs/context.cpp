#include "obs/context.hpp"

#include "util/logging.hpp"

namespace specdag::obs {

namespace detail {
thread_local Context* tl_context = nullptr;
}  // namespace detail

namespace context_detail {

std::uint64_t next_context_epoch() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace context_detail

// Context's ctor/dtor live in trace.cpp, where the TraceBuffer pimpl is a
// complete type (both instantiate the unique_ptr<TraceBuffer> destructor).

Context& Context::process_default() {
  static Context* instance = new Context(true);
  return *instance;
}

void Context::close() {
  set_metrics_on(false);
  closed_.store(true, std::memory_order_release);
}

CounterCell& Context::materialize_counter(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(cells_mutex_);
  CounterCell* cell = counter_cells_[id].load(std::memory_order_relaxed);
  if (cell == nullptr) {
    cell = new CounterCell();
    counter_cells_[id].store(cell, std::memory_order_release);
  }
  return *cell;
}

HistogramCell& Context::materialize_histogram(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(cells_mutex_);
  HistogramCell* cell = histogram_cells_[id].load(std::memory_order_relaxed);
  if (cell == nullptr) {
    cell = new HistogramCell();
    histogram_cells_[id].store(cell, std::memory_order_release);
  }
  return *cell;
}

void Context::note_late_record() {
  // A task posted during the run outlived the run's ObsSession: its records
  // land after close() and would silently be missing from the already-taken
  // snapshots. Count them all, warn once per context.
  if (late_records_.fetch_add(1, std::memory_order_relaxed) == 0) {
    SPECDAG_LOG(Warn) << "obs: record into defunct context (epoch " << epoch_
                      << ") after its run finished; its metrics were dropped"
                      << " from that run's summary.obs (warning once;"
                      << " subsequent late records are only counted)";
  }
}

}  // namespace specdag::obs
