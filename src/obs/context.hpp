// Per-run observability contexts.
//
// PR 6's metrics registry and trace session were process-global, which made
// per-run attribution impossible the moment two scenario runs execute
// concurrently (a parallel sweep had to drop summary.obs entirely). An
// obs::Context makes the binding explicit: each scenario run owns a context
// holding its own counter/histogram cells and (optional) trace buffer, and
// every instrumented call site resolves the *active* context through a
// thread-local that util::ThreadPool propagates into posted tasks — captured
// at post()/submit() time, so pool workers encoding deltas or preparing
// clients record into the run that spawned the work.
//
// Identity vs storage: metric *names* stay process-global (the Registry in
// metrics.hpp assigns each name a stable small id once), while metric
// *storage* is per-context, indexed by that id. Call sites keep caching the
// returned handle in a local static exactly as before; the handle is now one
// integer, and a mutation is: one thread-local load, one relaxed enabled
// check, one indexed cell lookup, one sharded relaxed fetch_add. Disabled
// runs pay the thread-local load and the flag check (~1 ns, same budget as
// PR 6); SPECDAG_OBS_DISABLED still compiles every mutation into an empty
// inline function.
//
// Contexts are also the unit of lifecycle policing: close() marks a context
// defunct at run end, and any task that still records into it afterwards is
// counted (and warned about once) instead of silently skewing a finished
// run's numbers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace specdag::obs {

#ifdef SPECDAG_OBS_DISABLED
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

// Nanoseconds on the steady clock since the first call of the process —
// the shared timebase of the pool accounting and the trace-span layer.
std::uint64_t now_ns();

// Upper bound on distinct metric names per kind (counter / histogram). The
// Registry throws std::length_error past it; every context sizes its cell
// index to this, so a registered id is always in range.
inline constexpr std::size_t kMaxMetricsPerKind = 256;

namespace detail {

inline constexpr std::size_t kShards = 16;

// Per-thread shard slot: threads are assigned round-robin on first use, so
// up to kShards concurrent writers never share a cache line.
std::size_t shard_index();

struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

// Sharded lock-free counter storage — one cell per (metric, context).
class CounterCell {
 public:
  void add(std::uint64_t n) {
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::Shard, detail::kShards> shards_;
};

// Sharded exponential-bucket histogram storage: bucket i counts values of
// bit width i (0, 1, 2-3, 4-7, ...) — one layout serves walk lengths, queue
// depths, and nanosecond latencies alike, and makes bucket-wise merges of
// snapshots from different contexts exact.
class HistogramCell {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(uint64) in [0, 64]

  static std::size_t bucket_index(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  // Inclusive upper bound of bucket i (the value reported for quantiles).
  static std::uint64_t bucket_upper_bound(std::size_t index) {
    return index == 0 ? 0
           : index >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << index) - 1;
  }

  void record(std::uint64_t value) {
    ShardData& shard = shards_[detail::shard_index()];
    shard.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  void reset();

 private:
  friend struct HistogramSnapshot;

  struct alignas(64) ShardData {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<ShardData, detail::kShards> shards_;
};

struct MetricsSnapshot;

// One observability domain: the metric cells and trace buffer of a single
// scenario run (or the process default, for everything outside a run).
class Context {
 public:
  explicit Context(bool metrics_on = true);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // The active context of the calling thread: the innermost ContextScope,
  // or the process-default context outside any scope. Never null.
  static Context& current() {
    Context* ctx = detail_current();
    return ctx != nullptr ? *ctx : process_default();
  }

  // The fallback context for code running outside any run. Lives for the
  // whole process (intentionally leaked, like the registry tables).
  static Context& process_default();

  bool metrics_on() const {
#ifdef SPECDAG_OBS_DISABLED
    return false;
#else
    return metrics_on_.load(std::memory_order_relaxed);
#endif
  }
  void set_metrics_on(bool on) { metrics_on_.store(on, std::memory_order_relaxed); }

  // Marks the context defunct (run finished, its snapshots are taken):
  // metrics turn off, and late records are counted + warned about instead
  // of silently skewing numbers that were already reported.
  void close();
  bool closed() const { return closed_.load(std::memory_order_relaxed); }
  std::uint64_t late_records() const {
    return late_records_.load(std::memory_order_relaxed);
  }
  // Monotonic per-process context generation — names the context in the
  // defunct-record warning so racing runs are distinguishable in logs.
  std::uint64_t epoch() const { return epoch_; }

  // --- metric storage --------------------------------------------------
  // Cell accessors materialize storage on first touch (mutex slow path);
  // the fast path is one relaxed load + index. `id` must come from the
  // Registry (always < kMaxMetricsPerKind).
  CounterCell& counter_cell(std::uint32_t id) {
    CounterCell* cell = counter_cells_[id].load(std::memory_order_acquire);
    return cell != nullptr ? *cell : materialize_counter(id);
  }
  HistogramCell& histogram_cell(std::uint32_t id) {
    HistogramCell* cell = histogram_cells_[id].load(std::memory_order_acquire);
    return cell != nullptr ? *cell : materialize_histogram(id);
  }
  const CounterCell* find_counter_cell(std::uint32_t id) const {
    return counter_cells_[id].load(std::memory_order_acquire);
  }
  const HistogramCell* find_histogram_cell(std::uint32_t id) const {
    return histogram_cells_[id].load(std::memory_order_acquire);
  }

  // Point-in-time copy of every *named* registered metric as recorded in
  // THIS context (unmaterialized cells read as zero, so the catalog is
  // identical across contexts). Defined in metrics.cpp with the registry.
  MetricsSnapshot snapshot() const;
  // Zeroes every materialized cell in place.
  void reset_metrics();

  // Disabled-path bookkeeping: called instead of recording when metrics are
  // off. Only does work when the context was closed — the defunct-epoch
  // detector of satellite lore, not a hot-path cost.
  void note_disabled_record() {
    if (closed_.load(std::memory_order_relaxed)) note_late_record();
  }

  // --- tracing (implemented in trace.cpp) ------------------------------
  bool tracing() const {
#ifdef SPECDAG_OBS_DISABLED
    return false;
#else
    return tracing_.load(std::memory_order_acquire);
#endif
  }
  // Starts buffering events in this context; stop_trace() writes them to
  // the path given here and clears the buffer. One session per context at a
  // time (start while active restarts the buffer).
  void start_trace(const std::string& path);
  // Ends the session and writes the file. Returns false (with a warning
  // log) when no session is active or the file could not be written.
  bool stop_trace();

  struct TraceBuffer;  // defined in trace.cpp

  // Internal hook for the trace emitters (trace.cpp): non-null from the
  // first start_trace() on; never reset afterwards, so a tracing() == true
  // acquire-load guarantees the buffer is safe to use.
  TraceBuffer* trace_buffer() const { return trace_.get(); }

 private:
  friend class ContextScope;

  static Context* detail_current();

  CounterCell& materialize_counter(std::uint32_t id);
  HistogramCell& materialize_histogram(std::uint32_t id);
  void note_late_record();

  std::atomic<bool> metrics_on_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> late_records_{0};
  std::uint64_t epoch_ = 0;

  mutable std::mutex cells_mutex_;  // guards materialization only
  std::array<std::atomic<CounterCell*>, kMaxMetricsPerKind> counter_cells_{};
  std::array<std::atomic<HistogramCell*>, kMaxMetricsPerKind> histogram_cells_{};

  std::atomic<bool> tracing_{false};
  std::unique_ptr<TraceBuffer> trace_;  // created on first start_trace()
};

namespace detail {
// The active context of this thread (null = process default). Mutated only
// by ContextScope and read by every instrumented call site.
extern thread_local Context* tl_context;
}  // namespace detail

inline Context* Context::detail_current() { return detail::tl_context; }

// RAII installer: makes `ctx` the calling thread's active context for the
// scope's lifetime (null restores the process default). ThreadPool wraps
// every task in one of these with the context captured at post() time.
class ContextScope {
 public:
  explicit ContextScope(Context* ctx) : previous_(detail::tl_context) {
    detail::tl_context = ctx;
  }
  ~ContextScope() { detail::tl_context = previous_; }

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  Context* previous_;
};

}  // namespace specdag::obs
