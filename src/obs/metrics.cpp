#include "obs/metrics.hpp"

#include <chrono>
#include <deque>
#include <mutex>
#include <stdexcept>

namespace specdag::obs {

namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool metrics_enabled() {
#ifdef SPECDAG_OBS_DISABLED
  return false;
#else
  return Context::current().metrics_on();
#endif
}

void set_metrics_enabled(bool enabled) {
  Context::current().set_metrics_on(enabled);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

std::uint64_t HistogramCell::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    for (const auto& bucket : shard.buckets)
      total += bucket.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t HistogramCell::sum() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

void HistogramCell::reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t Histogram::count() const {
  const HistogramCell* cell = Context::current().find_histogram_cell(id_);
  return cell == nullptr ? 0 : cell->count();
}

std::uint64_t Histogram::sum() const {
  const HistogramCell* cell = Context::current().find_histogram_cell(id_);
  return cell == nullptr ? 0 : cell->sum();
}

void Histogram::reset() {
  auto* cell = const_cast<HistogramCell*>(Context::current().find_histogram_cell(id_));
  if (cell != nullptr) cell->reset();
}

HistogramSnapshot HistogramSnapshot::of_cell(const HistogramCell& cell) {
  HistogramSnapshot snap;
  for (const auto& shard : cell.shards_) {
    for (std::size_t i = 0; i < HistogramCell::kBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t bucket : snap.buckets) snap.count += bucket;
  return snap;
}

HistogramSnapshot HistogramSnapshot::of(const Histogram& histogram) {
  const HistogramCell* cell = Context::current().find_histogram_cell(histogram.id());
  return cell == nullptr ? HistogramSnapshot{} : of_cell(*cell);
}

std::uint64_t HistogramSnapshot::quantile_upper_bound(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) return HistogramCell::bucket_upper_bound(i);
  }
  return HistogramCell::bucket_upper_bound(buckets.size() - 1);
}

std::uint64_t HistogramSnapshot::max_upper_bound() const {
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] != 0) return HistogramCell::bucket_upper_bound(i);
  }
  return 0;
}

HistogramSnapshot HistogramSnapshot::delta_from(const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.count = count - earlier.count;
  delta.sum = sum - earlier.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    delta.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  return delta;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

MetricsSnapshot MetricsSnapshot::delta_from(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    delta.counters[name] = value - earlier.counter(name);
  }
  for (const auto& [name, snap] : histograms) {
    delta.histograms[name] = snap.delta_from(earlier.histogram(name));
  }
  return delta;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, snap] : other.histograms) histograms[name].merge(snap);
}

namespace {

// The process-global identity table: names and their ids, plus the handle
// objects themselves (deques: references stay valid as the table grows).
// Intentionally leaked — call sites hold references across the whole process
// lifetime, including static-destruction order at exit. Anonymous handles
// draw ids from the same space but never enter the name maps, so snapshots
// skip them.
struct RegistryState {
  std::mutex mutex;
  std::deque<Counter> counters;
  std::deque<Histogram> histograms;
  std::map<std::string, std::uint32_t, std::less<>> counter_ids;
  std::map<std::string, std::uint32_t, std::less<>> histogram_ids;
};

RegistryState& registry_state() {
  static RegistryState* state = new RegistryState();
  return *state;
}

std::uint32_t allocate_id(std::size_t used, const char* kind) {
  if (used >= kMaxMetricsPerKind) {
    throw std::length_error(std::string("obs: too many registered ") + kind +
                            " metrics (max " + std::to_string(kMaxMetricsPerKind) + ")");
  }
  return static_cast<std::uint32_t>(used);
}

}  // namespace

Counter::Counter() {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  id_ = allocate_id(state.counters.size(), "counter");
  state.counters.emplace_back(Counter(RegisteredTag{}, id_));
}

Histogram::Histogram() {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  id_ = allocate_id(state.histograms.size(), "histogram");
  state.histograms.emplace_back(Histogram(RegisteredTag{}, id_));
}

Counter& Registry::counter(std::string_view name) {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.counter_ids.find(name);
  if (it == state.counter_ids.end()) {
    const std::uint32_t id = allocate_id(state.counters.size(), "counter");
    state.counters.emplace_back(Counter(Counter::RegisteredTag{}, id));
    it = state.counter_ids.emplace(std::string(name), id).first;
  }
  return state.counters[it->second];
}

Histogram& Registry::histogram(std::string_view name) {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.histogram_ids.find(name);
  if (it == state.histogram_ids.end()) {
    const std::uint32_t id = allocate_id(state.histograms.size(), "histogram");
    state.histograms.emplace_back(Histogram(Histogram::RegisteredTag{}, id));
    it = state.histogram_ids.emplace(std::string(name), id).first;
  }
  return state.histograms[it->second];
}

MetricsSnapshot Registry::snapshot() { return Context::current().snapshot(); }

void Registry::reset() { Context::current().reset_metrics(); }

// Defined here (not context.cpp) because it iterates the registry's name
// maps: the snapshot catalog is every *named* metric, with unmaterialized
// cells reading as zero so all contexts report an identical key set.
MetricsSnapshot Context::snapshot() const {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  MetricsSnapshot snap;
  for (const auto& [name, id] : state.counter_ids) {
    const CounterCell* cell = find_counter_cell(id);
    snap.counters[name] = cell == nullptr ? 0 : cell->value();
  }
  for (const auto& [name, id] : state.histogram_ids) {
    const HistogramCell* cell = find_histogram_cell(id);
    snap.histograms[name] =
        cell == nullptr ? HistogramSnapshot{} : HistogramSnapshot::of_cell(*cell);
  }
  return snap;
}

void Context::reset_metrics() {
  for (std::size_t id = 0; id < kMaxMetricsPerKind; ++id) {
    auto* counter = counter_cells_[id].load(std::memory_order_acquire);
    if (counter != nullptr) counter->reset();
    auto* histogram = histogram_cells_[id].load(std::memory_order_acquire);
    if (histogram != nullptr) histogram->reset();
  }
}

}  // namespace specdag::obs
