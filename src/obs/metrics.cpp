#include "obs/metrics.hpp"

#include <chrono>
#include <memory>
#include <mutex>

namespace specdag::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool metrics_enabled() {
#ifdef SPECDAG_OBS_DISABLED
  return false;
#else
  return g_metrics_enabled.load(std::memory_order_relaxed);
#endif
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    for (const auto& bucket : shard.buckets)
      total += bucket.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) bucket.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

HistogramSnapshot HistogramSnapshot::of(const Histogram& histogram) {
  HistogramSnapshot snap;
  for (const auto& shard : histogram.shards_) {
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t bucket : snap.buckets) snap.count += bucket;
  return snap;
}

std::uint64_t HistogramSnapshot::quantile_upper_bound(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) return Histogram::bucket_upper_bound(i);
  }
  return Histogram::bucket_upper_bound(buckets.size() - 1);
}

std::uint64_t HistogramSnapshot::max_upper_bound() const {
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] != 0) return Histogram::bucket_upper_bound(i);
  }
  return 0;
}

HistogramSnapshot HistogramSnapshot::delta_from(const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.count = count - earlier.count;
  delta.sum = sum - earlier.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    delta.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  return delta;
}

MetricsSnapshot MetricsSnapshot::delta_from(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    delta.counters[name] = value - earlier.counter(name);
  }
  for (const auto& [name, snap] : histograms) {
    delta.histograms[name] = snap.delta_from(earlier.histogram(name));
  }
  return delta;
}

namespace {

// Registered metrics are never destroyed (unique_ptr into leaky maps would
// also work, but a plain struct keeps the intent obvious): call sites hold
// references across the whole process lifetime, including static-destruction
// order at exit.
struct RegistryState {
  std::mutex mutex;
  std::map<std::string, Counter*, std::less<>> counters;
  std::map<std::string, Histogram*, std::less<>> histograms;
};

RegistryState& registry_state() {
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    it = state.counters.emplace(std::string(name), new Counter()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.histograms.find(name);
  if (it == state.histograms.end()) {
    it = state.histograms.emplace(std::string(name), new Histogram()).first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : state.counters) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, histogram] : state.histograms) {
    snap.histograms[name] = HistogramSnapshot::of(*histogram);
  }
  return snap;
}

void Registry::reset() {
  RegistryState& state = registry_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, counter] : state.counters) counter->reset();
  for (auto& [name, histogram] : state.histograms) histogram->reset();
}

}  // namespace specdag::obs
