// Lock-free metrics registry: named counters and fixed-bucket histograms
// for the hot seams of the system (walk lengths, cache hits, store interns,
// pool busy/idle time). The instrumentation layer the scenario runner
// snapshots per round into summary.obs.
//
// Design constraints, in order:
//   * zero interference with results — metrics never touch an RNG stream,
//     never take a lock on a hot path, and never change scheduling, so a
//     run is bit-identical with obs on or off at any thread count;
//   * cheap enough to leave on (the default): an increment is one relaxed
//     fetch_add on a per-thread shard (no cache-line ping-pong between
//     workers), guarded by one relaxed flag load;
//   * removable: compiling with SPECDAG_OBS_DISABLED (CMake
//     -DSPECDAG_ENABLE_OBS=OFF) turns every mutation into an empty inline
//     function the optimizer deletes, for a 0-overhead baseline build.
//
// The registry is process-global and cumulative; per-run attribution is by
// snapshot deltas (see the scenario runner). Counters/histograms registered
// once never move, so call sites cache the reference in a local static.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace specdag::obs {

// Runtime switch (process-wide, default on). Off turns every counter and
// histogram mutation into a single relaxed load-and-branch.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

#ifdef SPECDAG_OBS_DISABLED
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

// Nanoseconds on the steady clock since the first call of the process —
// the shared timebase of the pool accounting and the trace-span layer.
std::uint64_t now_ns();

namespace detail {

inline constexpr std::size_t kShards = 16;

// Per-thread shard slot: threads are assigned round-robin on first use, so
// up to kShards concurrent writers never share a cache line.
std::size_t shard_index();

struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) {
#ifndef SPECDAG_OBS_DISABLED
    if (!metrics_enabled()) return;
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::Shard, detail::kShards> shards_;
};

// Fixed-bucket histogram over unsigned values: bucket i counts values of
// bit width i (0, 1, 2-3, 4-7, ...), i.e. exponential bounds — one layout
// serves walk lengths, queue depths, and nanosecond latencies alike.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(uint64) in [0, 64]

  static std::size_t bucket_index(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  // Inclusive upper bound of bucket i (the value reported for quantiles).
  static std::uint64_t bucket_upper_bound(std::size_t index) {
    return index == 0 ? 0
           : index >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << index) - 1;
  }

  void record(std::uint64_t value) {
#ifndef SPECDAG_OBS_DISABLED
    if (!metrics_enabled()) return;
    ShardData& shard = shards_[detail::shard_index()];
    shard.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  void reset();

 private:
  friend struct HistogramSnapshot;

  struct alignas(64) ShardData {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<ShardData, detail::kShards> shards_;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  static HistogramSnapshot of(const Histogram& histogram);

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  std::uint64_t quantile_upper_bound(double q) const;
  // Upper bound of the highest non-empty bucket.
  std::uint64_t max_upper_bound() const;

  // This snapshot minus an earlier one of the same histogram.
  HistogramSnapshot delta_from(const HistogramSnapshot& earlier) const;
};

// Point-in-time copy of every registered metric, keyed by name (ordered,
// so serialization is deterministic).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  // This snapshot minus an earlier one: per-interval attribution on the
  // cumulative process-global registry. Metrics absent earlier count from 0.
  MetricsSnapshot delta_from(const MetricsSnapshot& earlier) const;

  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  HistogramSnapshot histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? HistogramSnapshot{} : it->second;
  }
};

// Process-global name -> metric table. Lookup takes a mutex; cache the
// returned reference (it is stable for the process lifetime):
//
//   static obs::Counter& walks = obs::Registry::counter("tipsel.walks");
//   walks.add();
class Registry {
 public:
  static Counter& counter(std::string_view name);
  static Histogram& histogram(std::string_view name);
  static MetricsSnapshot snapshot();
  // Zeroes every registered metric in place (references stay valid).
  static void reset();
};

}  // namespace specdag::obs
