// Lock-free metrics: named counters and fixed-bucket histograms for the hot
// seams of the system (walk lengths, cache hits, store interns, pool
// busy/idle time). The instrumentation layer the scenario runner snapshots
// per round into summary.obs.
//
// Design constraints, in order:
//   * zero interference with results — metrics never touch an RNG stream,
//     never take a lock on a hot path, and never change scheduling, so a
//     run is bit-identical with obs on or off at any thread count;
//   * cheap enough to leave on (the default): an increment is one relaxed
//     fetch_add on a per-thread shard (no cache-line ping-pong between
//     workers), guarded by one relaxed flag load;
//   * attributable: storage lives in the active obs::Context (see
//     context.hpp), so concurrent scenario runs in a parallel sweep each
//     see only their own increments;
//   * removable: compiling with SPECDAG_OBS_DISABLED (CMake
//     -DSPECDAG_ENABLE_OBS=OFF) turns every mutation into an empty inline
//     function the optimizer deletes, for a 0-overhead baseline build.
//
// Counter/Histogram are *handles*: a small id assigned once per name by the
// process-global Registry, resolving to per-context cells at record time.
// Registered handles never move, so call sites cache the reference in a
// local static exactly as before:
//
//   static obs::Counter& walks = obs::Registry::counter("tipsel.walks");
//   walks.add();
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"

namespace specdag::obs {

// Runtime switch of the calling thread's ACTIVE context (default on). Off
// turns every counter and histogram mutation into a thread-local load plus
// a relaxed load-and-branch.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

// Handle to a named (or anonymous) counter. Mutations resolve the calling
// thread's active Context and hit its sharded cell for this handle's id.
class Counter {
 public:
  // Anonymous counter: gets a private id, excluded from snapshots. Exists
  // for standalone/bench use; named call sites go through the Registry.
  Counter();

  void add(std::uint64_t n = 1) {
#ifndef SPECDAG_OBS_DISABLED
    Context& ctx = Context::current();
    if (!ctx.metrics_on()) {
      ctx.note_disabled_record();
      return;
    }
    ctx.counter_cell(id_).add(n);
#else
    (void)n;
#endif
  }

  // Total recorded into the calling thread's active context.
  std::uint64_t value() const {
    const CounterCell* cell = Context::current().find_counter_cell(id_);
    return cell == nullptr ? 0 : cell->value();
  }

  void reset() {
    CounterCell* cell = const_cast<CounterCell*>(Context::current().find_counter_cell(id_));
    if (cell != nullptr) cell->reset();
  }

  std::uint32_t id() const { return id_; }

 private:
  friend class Registry;
  struct RegisteredTag {};
  Counter(RegisteredTag, std::uint32_t id) : id_(id) {}

  std::uint32_t id_;
};

// Handle to a named (or anonymous) exponential-bucket histogram (layout in
// HistogramCell): bucket i counts values of bit width i.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramCell::kBuckets;

  static std::size_t bucket_index(std::uint64_t value) {
    return HistogramCell::bucket_index(value);
  }
  static std::uint64_t bucket_upper_bound(std::size_t index) {
    return HistogramCell::bucket_upper_bound(index);
  }

  // Anonymous histogram: private id, excluded from snapshots.
  Histogram();

  void record(std::uint64_t value) {
#ifndef SPECDAG_OBS_DISABLED
    Context& ctx = Context::current();
    if (!ctx.metrics_on()) {
      ctx.note_disabled_record();
      return;
    }
    ctx.histogram_cell(id_).record(value);
#else
    (void)value;
#endif
  }

  std::uint64_t count() const;
  std::uint64_t sum() const;
  void reset();

  std::uint32_t id() const { return id_; }

 private:
  friend class Registry;
  struct RegisteredTag {};
  Histogram(RegisteredTag, std::uint32_t id) : id_(id) {}

  std::uint32_t id_;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, HistogramCell::kBuckets> buckets{};

  // Reads the handle's cell in the calling thread's active context.
  static HistogramSnapshot of(const Histogram& histogram);
  static HistogramSnapshot of_cell(const HistogramCell& cell);

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  std::uint64_t quantile_upper_bound(double q) const;
  // Upper bound of the highest non-empty bucket.
  std::uint64_t max_upper_bound() const;

  // This snapshot minus an earlier one of the same histogram.
  HistogramSnapshot delta_from(const HistogramSnapshot& earlier) const;

  // Adds `other` bucket-wise (exact: both use the same fixed layout, so the
  // merge is associative, commutative, and loses nothing a single combined
  // snapshot would have had). The sweep aggregator merges per-run snapshots
  // with this.
  void merge(const HistogramSnapshot& other);
};

// Point-in-time copy of every registered metric, keyed by name (ordered,
// so serialization is deterministic).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  // This snapshot minus an earlier one: per-interval attribution on a
  // cumulative context. Metrics absent earlier count from 0.
  MetricsSnapshot delta_from(const MetricsSnapshot& earlier) const;

  // Adds `other` into this snapshot: counters sum, histograms merge
  // bucket-wise. Union of catalogs.
  void merge(const MetricsSnapshot& other);

  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  HistogramSnapshot histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? HistogramSnapshot{} : it->second;
  }
};

// Process-global name -> handle table. Lookup takes a mutex; cache the
// returned reference (it is stable for the process lifetime). Snapshots and
// resets act on the calling thread's ACTIVE context — for a specific run's
// context use Context::snapshot()/reset_metrics() directly.
class Registry {
 public:
  static Counter& counter(std::string_view name);
  static Histogram& histogram(std::string_view name);
  static MetricsSnapshot snapshot();
  // Zeroes every registered metric of the active context in place
  // (references stay valid).
  static void reset();
};

}  // namespace specdag::obs
