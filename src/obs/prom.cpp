#include "obs/prom.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"

namespace specdag::obs {

std::string prometheus_metric_name(std::string_view name, std::string_view prefix) {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out += prefix;
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

void write_prometheus_text(std::ostream& out, const MetricsSnapshot& snapshot,
                           std::string_view prefix) {
  for (const auto& [name, value] : snapshot.counters) {
    // Prometheus counters conventionally end in _total; the sanitized raw
    // name keeps the catalog greppable ("specdag_tipsel_walks_total").
    const std::string metric = prometheus_metric_name(name, prefix) + "_total";
    out << "# TYPE " << metric << " counter\n";
    out << metric << " " << value << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = prometheus_metric_name(name, prefix);
    out << "# TYPE " << metric << " histogram\n";
    // Cumulative buckets up to the highest non-empty one, then +Inf (which
    // by the exposition rules must equal _count). Our buckets are exact
    // exponential bins, so le is the bin's inclusive upper bound.
    std::size_t highest = 0;
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] != 0) highest = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= highest; ++i) {
      cumulative += hist.buckets[i];
      out << metric << "_bucket{le=\"" << HistogramCell::bucket_upper_bound(i)
          << "\"} " << cumulative << "\n";
    }
    out << metric << "_bucket{le=\"+Inf\"} " << hist.count << "\n";
    out << metric << "_sum " << hist.sum << "\n";
    out << metric << "_count " << hist.count << "\n";
  }
}

bool write_prometheus_file(const std::string& path, const MetricsSnapshot& snapshot,
                           std::string_view prefix) {
  std::error_code ec;
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::filesystem::create_directories(fs_path.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_prometheus_text(out, snapshot, prefix);
  return static_cast<bool>(out);
}

}  // namespace specdag::obs
