// Prometheus text-exposition (format 0.0.4) rendering of a MetricsSnapshot.
//
// Scrape-less export: `specdag run --metrics-out out.prom` (or the spec's
// obs.metrics_out key) writes the run's attributed totals; the sweep
// executor writes the merged sweep aggregate the same way. The output is
// `# TYPE`-annotated — counters with the conventional `_total` suffix,
// histograms as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`
// — so CI can lint it against the exposition grammar and dashboards can
// ingest it via textfile collectors without a live endpoint.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace specdag::obs {

struct MetricsSnapshot;

// Metric names pass through sanitize: characters outside [a-zA-Z0-9_:] map
// to '_' (so "tipsel.walk_steps" becomes "<prefix>tipsel_walk_steps").
std::string prometheus_metric_name(std::string_view name, std::string_view prefix);

// Renders every counter and histogram of the snapshot. Deterministic: the
// snapshot's maps are ordered by metric name.
void write_prometheus_text(std::ostream& out, const MetricsSnapshot& snapshot,
                           std::string_view prefix = "specdag_");

// write_prometheus_text into `path`, creating parent directories. Returns
// false when the file cannot be written (callers log; exporting metrics
// must never fail a finished run).
bool write_prometheus_file(const std::string& path, const MetricsSnapshot& snapshot,
                           std::string_view prefix = "specdag_");

}  // namespace specdag::obs
