#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace specdag::obs {

namespace {

// One buffered trace event. Args are stored inline (the instrumentation
// never needs more than four); string keys are literals, stored by pointer.
struct Event {
  char phase;             // 'B','E','s','f','i','C'
  const char* name;
  std::uint64_t ts_ns;
  std::uint32_t tid;
  std::uint64_t id = 0;   // flow id for 's'/'f'
  std::uint64_t counter_value = 0;  // for 'C'
  trace_detail::TraceArg args[4];
  std::size_t num_args = 0;
};

// Sequential per-thread id: stable within a process, compact in the viewer.
std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Thread names are a process-global property (a thread is one viewer track
// no matter which run's context it records into), kept here and stamped
// into every written file as synthesized 'M' metadata events.
struct ThreadNames {
  std::mutex mutex;
  std::map<std::uint32_t, std::string> by_tid;
};

ThreadNames& thread_names() {
  static ThreadNames* names = new ThreadNames();
  return *names;
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_args_json(std::string& out, const Event& event) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < event.num_args; ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += event.args[i].key;
    out += "\":";
    out += std::to_string(event.args[i].value);
  }
  out += '}';
}

// Serializes one event as a trace-viewer JSON object. Timestamps are in
// microseconds (the trace-event format's unit); ns precision is kept via
// the fractional part.
std::string format_ts_us(std::uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  return buf;
}

void append_event_json(std::string& out, const Event& event) {
  out += "{\"ph\":\"";
  out += event.phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(event.tid);
  if (event.phase == 's' || event.phase == 'f') {
    out += ",\"ts\":" + format_ts_us(event.ts_ns);
    out += ",\"name\":\"";
    out += event.name;
    out += "\",\"cat\":\"flow\",\"id\":";
    out += std::to_string(event.id);
    if (event.phase == 'f') out += ",\"bp\":\"e\"";
    out += '}';
    return;
  }
  out += ",\"ts\":" + format_ts_us(event.ts_ns);
  out += ",\"name\":\"";
  out += event.name;
  out += "\",\"cat\":\"specdag\"";
  if (event.phase == 'i') out += ",\"s\":\"t\"";
  if (event.phase == 'C') {
    out += ",\"args\":{\"value\":" + std::to_string(event.counter_value) + "}}";
    return;
  }
  out += ',';
  append_args_json(out, event);
  out += '}';
}

void append_thread_name_json(std::string& out, std::uint32_t tid,
                             const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
  append_json_escaped(out, name);
  out += "\"}}";
}

bool write_trace_file(const std::string& path, const std::vector<Event>& events) {
  // Synthesize metadata for every named thread that appears in the buffer —
  // including pool workers that were named long before this session (or
  // under a different run's context).
  std::map<std::uint32_t, std::string> names;
  {
    ThreadNames& registry = thread_names();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const Event& event : events) {
      auto it = registry.by_tid.find(event.tid);
      if (it != registry.by_tid.end()) names.emplace(it->first, it->second);
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::string buffer;
  buffer.reserve(256);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [tid, name] : names) {
    buffer.clear();
    if (!first) buffer += ",\n";
    append_thread_name_json(buffer, tid, name);
    out << buffer;
    first = false;
  }
  for (const Event& event : events) {
    buffer.clear();
    if (!first) buffer += ",\n";
    append_event_json(buffer, event);
    out << buffer;
    first = false;
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace

// Per-context trace session state. `epoch` counts sessions of THIS context;
// spans compare it on close so a span straddling stop/start never emits an
// unmatched E into the next session's buffer.
struct Context::TraceBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::string path;
  std::uint64_t epoch = 0;
  bool active = false;  // mirror of Context::tracing_, readable under mutex
};

// Context's ctor/dtor are defined here (not context.cpp) because the
// TraceBuffer pimpl must be a complete type wherever the unique_ptr's
// destructor is instantiated.
namespace context_detail {
std::uint64_t next_context_epoch();
}  // namespace context_detail

Context::Context(bool metrics_on)
    : metrics_on_(metrics_on), epoch_(context_detail::next_context_epoch()) {}

Context::~Context() {
  for (auto& slot : counter_cells_) delete slot.load(std::memory_order_acquire);
  for (auto& slot : histogram_cells_) delete slot.load(std::memory_order_acquire);
}

namespace {

// Appends an event to `ctx`'s buffer with the timestamp taken under the
// lock — this is what makes ts monotonic per tid (and across the whole
// file) without per-thread buffers.
template <typename Fill>
void append_event(Context& ctx, Fill&& fill) {
  Context::TraceBuffer* buffer = ctx.trace_buffer();
  if (buffer == nullptr) return;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  if (!buffer->active) return;
  Event event;
  event.ts_ns = now_ns();
  event.tid = thread_id();
  fill(event);
  buffer->events.push_back(event);
}

}  // namespace

namespace trace_detail {

std::uint64_t begin_span(Context& ctx, const char* name,
                         std::initializer_list<TraceArg> args) {
  std::uint64_t epoch = 0;
  Context::TraceBuffer* buffer = ctx.trace_buffer();
  if (buffer == nullptr) return 0;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  if (!buffer->active) return 0;
  Event event;
  event.ts_ns = now_ns();
  event.tid = thread_id();
  event.phase = 'B';
  event.name = name;
  for (const TraceArg& arg : args) {
    if (event.num_args < 4) event.args[event.num_args++] = arg;
  }
  buffer->events.push_back(event);
  epoch = buffer->epoch;
  return epoch;
}

void end_span(Context& ctx, const char* name, std::uint64_t epoch,
              const TraceArg* args, std::size_t num_args) {
  Context::TraceBuffer* buffer = ctx.trace_buffer();
  if (buffer == nullptr) return;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  if (!buffer->active || buffer->epoch != epoch) return;
  Event event;
  event.ts_ns = now_ns();
  event.tid = thread_id();
  event.phase = 'E';
  event.name = name;
  for (std::size_t i = 0; i < num_args && event.num_args < 4; ++i) {
    event.args[event.num_args++] = args[i];
  }
  buffer->events.push_back(event);
}

void flow_start(const char* name, std::uint64_t flow_id) {
  append_event(Context::current(), [&](Event& event) {
    event.phase = 's';
    event.name = name;
    event.id = flow_id;
  });
}

void flow_finish(const char* name, std::uint64_t flow_id) {
  append_event(Context::current(), [&](Event& event) {
    event.phase = 'f';
    event.name = name;
    event.id = flow_id;
  });
}

void instant(const char* name, std::initializer_list<TraceArg> args) {
  append_event(Context::current(), [&](Event& event) {
    event.phase = 'i';
    event.name = name;
    for (const TraceArg& arg : args) {
      if (event.num_args < 4) event.args[event.num_args++] = arg;
    }
  });
}

void counter_event(const char* name, std::uint64_t value) {
  append_event(Context::current(), [&](Event& event) {
    event.phase = 'C';
    event.name = name;
    event.counter_value = value;
  });
}

}  // namespace trace_detail

void Context::start_trace(const std::string& path) {
#ifdef SPECDAG_OBS_DISABLED
  (void)path;
  SPECDAG_LOG(Warn) << "trace requested but obs is compiled out "
                       "(SPECDAG_ENABLE_OBS=OFF); no trace will be written";
#else
  {
    // The buffer is created once and never destroyed before the context:
    // emitters that pass the tracing_ acquire-load can use it lock-free.
    std::lock_guard<std::mutex> creation_lock(cells_mutex_);
    if (trace_ == nullptr) trace_ = std::make_unique<TraceBuffer>();
  }
  {
    std::lock_guard<std::mutex> lock(trace_->mutex);
    trace_->events.clear();
    trace_->path = path;
    ++trace_->epoch;
    trace_->active = true;
  }
  tracing_.store(true, std::memory_order_release);
#endif
}

bool Context::stop_trace() {
#ifdef SPECDAG_OBS_DISABLED
  return false;
#else
  TraceBuffer* buffer = trace_buffer();
  if (buffer == nullptr) return false;
  std::vector<Event> events;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    if (!buffer->active) return false;
    buffer->active = false;
    events.swap(buffer->events);
    path = std::move(buffer->path);
    buffer->path.clear();
  }
  tracing_.store(false, std::memory_order_release);
  if (!write_trace_file(path, events)) {
    SPECDAG_LOG(Warn) << "failed to write trace file: " << path;
    return false;
  }
  SPECDAG_LOG(Info) << "wrote " << events.size() << " trace events to " << path;
  return true;
#endif
}

void start_trace(const std::string& path) { Context::current().start_trace(path); }

bool stop_trace() { return Context::current().stop_trace(); }

void set_thread_name(const std::string& name) {
  ThreadNames& registry = thread_names();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.by_tid[thread_id()] = name;
}

}  // namespace specdag::obs
