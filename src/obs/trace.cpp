#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace specdag::obs {

namespace {

// One buffered trace event. Args are stored inline (the instrumentation
// never needs more than four); string keys are literals, stored by pointer.
struct Event {
  char phase;             // 'B','E','s','f','i','C','M'
  const char* name;       // literal for spans/flows; unused for 'M'
  std::uint64_t ts_ns;
  std::uint32_t tid;
  std::uint64_t id = 0;   // flow id for 's'/'f'
  std::uint64_t counter_value = 0;  // for 'C'
  std::string thread_name;          // for 'M'
  trace_detail::TraceArg args[4];
  std::size_t num_args = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<Event> events;
  std::string path;
  std::uint64_t epoch = 0;  // bumped on every start; spans check it on close
};

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_epoch{0};

TraceState& trace_state() {
  static TraceState* state = new TraceState();
  return *state;
}

// Sequential per-thread id: stable within a process, compact in the viewer.
std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string& thread_name_slot() {
  thread_local std::string name;
  return name;
}

// Appends an event with its timestamp taken under the lock — this is what
// makes ts monotonic per tid (and globally) without per-thread buffers.
template <typename Fill>
void append_event(Fill&& fill) {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!g_tracing.load(std::memory_order_relaxed)) return;
  Event event;
  event.ts_ns = now_ns();
  event.tid = thread_id();
  fill(event);
  state.events.push_back(std::move(event));
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_args_json(std::string& out, const Event& event) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < event.num_args; ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += event.args[i].key;
    out += "\":";
    out += std::to_string(event.args[i].value);
  }
  out += '}';
}

// Serializes one event as a trace-viewer JSON object. Timestamps are in
// microseconds (the trace-event format's unit); ns precision is kept via
// the fractional part.
std::string format_ts_us(std::uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  return buf;
}

void append_event_json(std::string& out, const Event& event) {
  out += "{\"ph\":\"";
  out += event.phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(event.tid);
  switch (event.phase) {
    case 'M': {
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_json_escaped(out, event.thread_name);
      out += "\"}}";
      return;
    }
    case 's':
    case 'f': {
      out += ",\"ts\":" + format_ts_us(event.ts_ns);
      out += ",\"name\":\"";
      out += event.name;
      out += "\",\"cat\":\"flow\",\"id\":";
      out += std::to_string(event.id);
      if (event.phase == 'f') out += ",\"bp\":\"e\"";
      out += '}';
      return;
    }
    default:
      break;
  }
  out += ",\"ts\":" + format_ts_us(event.ts_ns);
  out += ",\"name\":\"";
  out += event.name;
  out += "\",\"cat\":\"specdag\"";
  if (event.phase == 'i') out += ",\"s\":\"t\"";
  if (event.phase == 'C') {
    out += ",\"args\":{\"value\":" + std::to_string(event.counter_value) + "}}";
    return;
  }
  out += ',';
  append_args_json(out, event);
  out += '}';
}

bool write_trace_file(const std::string& path, const std::vector<Event>& events) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::string buffer;
  buffer.reserve(256);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    buffer.clear();
    append_event_json(buffer, events[i]);
    out << buffer;
    if (i + 1 < events.size()) out << ',';
    out << '\n';
  }
  out << "]}\n";
  return static_cast<bool>(out);
}

}  // namespace

namespace trace_detail {

bool enabled_slow() { return g_tracing.load(std::memory_order_relaxed); }

std::uint64_t begin_span(const char* name, std::initializer_list<TraceArg> args) {
  append_event([&](Event& event) {
    event.phase = 'B';
    event.name = name;
    for (const TraceArg& arg : args) {
      if (event.num_args < 4) event.args[event.num_args++] = arg;
    }
  });
  return g_epoch.load(std::memory_order_relaxed);
}

void end_span(const char* name, std::uint64_t epoch, const TraceArg* args,
              std::size_t num_args) {
  if (epoch != g_epoch.load(std::memory_order_relaxed)) return;
  append_event([&](Event& event) {
    event.phase = 'E';
    event.name = name;
    for (std::size_t i = 0; i < num_args && event.num_args < 4; ++i) {
      event.args[event.num_args++] = args[i];
    }
  });
}

void flow_start(const char* name, std::uint64_t flow_id) {
  append_event([&](Event& event) {
    event.phase = 's';
    event.name = name;
    event.id = flow_id;
  });
}

void flow_finish(const char* name, std::uint64_t flow_id) {
  append_event([&](Event& event) {
    event.phase = 'f';
    event.name = name;
    event.id = flow_id;
  });
}

void instant(const char* name, std::initializer_list<TraceArg> args) {
  append_event([&](Event& event) {
    event.phase = 'i';
    event.name = name;
    for (const TraceArg& arg : args) {
      if (event.num_args < 4) event.args[event.num_args++] = arg;
    }
  });
}

void counter_event(const char* name, std::uint64_t value) {
  append_event([&](Event& event) {
    event.phase = 'C';
    event.name = name;
    event.counter_value = value;
  });
}

void thread_name_event(const std::string& name) {
  append_event([&](Event& event) {
    event.phase = 'M';
    event.name = "thread_name";
    event.thread_name = name;
  });
}

}  // namespace trace_detail

void start_trace(const std::string& path) {
#ifdef SPECDAG_OBS_DISABLED
  (void)path;
  SPECDAG_LOG(Warn) << "trace requested but obs is compiled out "
                       "(SPECDAG_ENABLE_OBS=OFF); no trace will be written";
#else
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.events.clear();
  state.path = path;
  state.epoch = g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  g_tracing.store(true, std::memory_order_relaxed);
  // Name the calling thread so the viewer's first track is legible even if
  // set_thread_name was called before the session started. Built inline:
  // thread_name_event() goes through append_event(), which would re-lock
  // the (non-recursive) state.mutex we already hold.
  if (!thread_name_slot().empty()) {
    Event event;
    event.phase = 'M';
    event.name = "thread_name";
    event.ts_ns = now_ns();
    event.tid = thread_id();
    event.thread_name = thread_name_slot();
    state.events.push_back(std::move(event));
  }
#endif
}

bool stop_trace() {
#ifdef SPECDAG_OBS_DISABLED
  return false;
#else
  TraceState& state = trace_state();
  std::vector<Event> events;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!g_tracing.load(std::memory_order_relaxed)) return false;
    g_tracing.store(false, std::memory_order_relaxed);
    events.swap(state.events);
    path = std::move(state.path);
    state.path.clear();
  }
  if (!write_trace_file(path, events)) {
    SPECDAG_LOG(Warn) << "failed to write trace file: " << path;
    return false;
  }
  SPECDAG_LOG(Info) << "wrote " << events.size() << " trace events to " << path;
  return true;
#endif
}

void set_thread_name(const std::string& name) {
  thread_name_slot() = name;
  if (tracing_enabled()) trace_detail::thread_name_event(name);
}

}  // namespace specdag::obs
