// Trace-span layer: Chrome trace-event / Perfetto-compatible JSON output.
//
// When a trace session is active (`specdag run --trace out.trace.json` or a
// `"trace"` path in the scenario spec's obs block), instrumented scopes emit
// duration events (B/E pairs), async-encode hand-offs emit flow events (s/f)
// linking a put() to its background completion, and the thread pool emits
// instant events — the resulting file opens directly in ui.perfetto.dev or
// chrome://tracing.
//
// A trace session belongs to an obs::Context (see context.hpp): each run of
// a parallel sweep can trace into its own buffer and file concurrently,
// because every emitter resolves the calling thread's active context —
// which ThreadPool propagates into posted tasks. Thread *names* stay
// process-global (a thread is one track regardless of which run it works
// for); metadata events are synthesized at file-write time for every named
// thread that appears in the buffer.
//
// Tracing is off by default and costs one thread-local load plus one atomic
// load per scope when off. When on, events append to the context's buffer
// under its mutex; the timestamp is taken *inside* the lock, which makes ts
// monotonic per thread within a file by construction — worth the
// serialization because tracing is an explicitly opt-in diagnostic mode.
// Like the metrics half, tracing never touches RNG streams or scheduling,
// so traced runs stay bit-identical with untraced ones; SPECDAG_OBS_DISABLED
// compiles all of it out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "obs/context.hpp"

namespace specdag::obs {

namespace trace_detail {

struct TraceArg {
  const char* key;
  std::uint64_t value;
};

// All emitters no-op unless the target context has a session active. The
// span pair is pinned to the context captured at open; `epoch` guards
// against a span opened in one session closing in another (the E would be
// unmatched).
std::uint64_t begin_span(Context& ctx, const char* name,
                         std::initializer_list<TraceArg> args);
void end_span(Context& ctx, const char* name, std::uint64_t epoch,
              const TraceArg* args, std::size_t num_args);
// These resolve the calling thread's active context themselves.
void flow_start(const char* name, std::uint64_t flow_id);
void flow_finish(const char* name, std::uint64_t flow_id);
void instant(const char* name, std::initializer_list<TraceArg> args);
void counter_event(const char* name, std::uint64_t value);

}  // namespace trace_detail

// True when the calling thread's active context has a trace session.
inline bool tracing_enabled() {
#ifdef SPECDAG_OBS_DISABLED
  return false;
#else
  return Context::current().tracing();
#endif
}

// Session control on the calling thread's active context — the convenience
// spelling of Context::current().start_trace()/stop_trace() used by tests
// and ad-hoc tooling; the scenario runner drives its run context directly.
void start_trace(const std::string& path);
bool stop_trace();

// Labels the calling thread in the trace viewer (a process-global tid ->
// name binding; `M` metadata events are synthesized for it in every trace
// file the thread appears in). Safe to call when tracing is off.
void set_thread_name(const std::string& name);

// RAII duration event. `name` must be a string literal (stored by pointer).
// The owning context is captured at construction, so the closing E always
// lands in the same buffer as its B (one resolve per span, not two).
//
//   obs::ScopedSpan span("prepare", {{"round", round}, {"client", id}});
//   ...
//   span.arg("tx", published_id);  // attached to the closing E event
class ScopedSpan {
 public:
  using Arg = trace_detail::TraceArg;

  explicit ScopedSpan(const char* name, std::initializer_list<Arg> args = {})
#ifndef SPECDAG_OBS_DISABLED
      : name_(name), ctx_(&Context::current()), active_(ctx_->tracing()) {
    if (active_) epoch_ = trace_detail::begin_span(*ctx_, name_, args);
  }
#else
  {
    (void)name;
    (void)args;
  }
#endif

  ~ScopedSpan() {
#ifndef SPECDAG_OBS_DISABLED
    if (active_) {
      trace_detail::end_span(*ctx_, name_, epoch_, end_args_, num_end_args_);
    }
#endif
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a key/value to the closing event (Perfetto merges B and E args
  // into one slice). Useful for results only known at scope exit.
  void arg(const char* key, std::uint64_t value) {
#ifndef SPECDAG_OBS_DISABLED
    if (active_ && num_end_args_ < kMaxEndArgs) {
      end_args_[num_end_args_++] = Arg{key, value};
    }
#else
    (void)key;
    (void)value;
#endif
  }

 private:
#ifndef SPECDAG_OBS_DISABLED
  static constexpr std::size_t kMaxEndArgs = 3;
  const char* name_;
  Context* ctx_;
  bool active_;
  std::uint64_t epoch_ = 0;
  Arg end_args_[kMaxEndArgs];
  std::size_t num_end_args_ = 0;
#endif
};

}  // namespace specdag::obs
