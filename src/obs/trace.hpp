// Trace-span layer: Chrome trace-event / Perfetto-compatible JSON output.
//
// When a trace session is active (`specdag run --trace out.trace.json` or a
// `"trace"` path in the scenario spec's obs block), instrumented scopes emit
// duration events (B/E pairs), async-encode hand-offs emit flow events (s/f)
// linking a put() to its background completion, and the thread pool emits
// instant events — the resulting file opens directly in ui.perfetto.dev or
// chrome://tracing.
//
// Tracing is off by default and costs one relaxed atomic load per scope when
// off. When on, events append to a global in-memory buffer under a mutex;
// the timestamp is taken *inside* the lock, which makes ts monotonic per
// thread (and globally) by construction — worth the serialization because
// tracing is an explicitly opt-in diagnostic mode. Like the metrics half,
// tracing never touches RNG streams or scheduling, so traced runs stay
// bit-identical with untraced ones; SPECDAG_OBS_DISABLED compiles all of it
// out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace specdag::obs {

namespace trace_detail {

bool enabled_slow();

struct TraceArg {
  const char* key;
  std::uint64_t value;
};

// All emitters no-op unless a session is active. `epoch` guards against a
// span opened in one session closing in another (the E would be unmatched).
std::uint64_t begin_span(const char* name, std::initializer_list<TraceArg> args);
void end_span(const char* name, std::uint64_t epoch, const TraceArg* args,
              std::size_t num_args);
void flow_start(const char* name, std::uint64_t flow_id);
void flow_finish(const char* name, std::uint64_t flow_id);
void instant(const char* name, std::initializer_list<TraceArg> args);
void counter_event(const char* name, std::uint64_t value);
void thread_name_event(const std::string& name);

}  // namespace trace_detail

inline bool tracing_enabled() {
#ifdef SPECDAG_OBS_DISABLED
  return false;
#else
  return trace_detail::enabled_slow();
#endif
}

// Starts buffering events; stop_trace() writes them to `path` and clears the
// buffer. One session at a time (start while active restarts the buffer).
void start_trace(const std::string& path);
// Ends the session and writes the file. Returns false (and emits a warning
// log) if the file could not be written. No-op when no session is active.
bool stop_trace();

// Labels the calling thread in the trace viewer (an `M` metadata event) and
// in future instant events. Safe to call when tracing is off.
void set_thread_name(const std::string& name);

// RAII duration event. `name` must be a string literal (stored by pointer).
//
//   obs::ScopedSpan span("prepare", {{"round", round}, {"client", id}});
//   ...
//   span.arg("tx", published_id);  // attached to the closing E event
class ScopedSpan {
 public:
  using Arg = trace_detail::TraceArg;

  explicit ScopedSpan(const char* name, std::initializer_list<Arg> args = {})
#ifndef SPECDAG_OBS_DISABLED
      : name_(name), active_(tracing_enabled()) {
    if (active_) epoch_ = trace_detail::begin_span(name_, args);
  }
#else
  {
    (void)name;
    (void)args;
  }
#endif

  ~ScopedSpan() {
#ifndef SPECDAG_OBS_DISABLED
    if (active_) {
      trace_detail::end_span(name_, epoch_, end_args_, num_end_args_);
    }
#endif
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a key/value to the closing event (Perfetto merges B and E args
  // into one slice). Useful for results only known at scope exit.
  void arg(const char* key, std::uint64_t value) {
#ifndef SPECDAG_OBS_DISABLED
    if (active_ && num_end_args_ < kMaxEndArgs) {
      end_args_[num_end_args_++] = Arg{key, value};
    }
#else
    (void)key;
    (void)value;
#endif
  }

 private:
#ifndef SPECDAG_OBS_DISABLED
  static constexpr std::size_t kMaxEndArgs = 3;
  const char* name_;
  bool active_;
  std::uint64_t epoch_ = 0;
  Arg end_args_[kMaxEndArgs];
  std::size_t num_end_args_ = 0;
#endif
};

}  // namespace specdag::obs
