#include "scenario/attacks.hpp"

#include "metrics/dag_metrics.hpp"

namespace specdag::scenario {
namespace {

// Deterministic fork tag for the attacker's RNG — distinct from every tag
// used by the simulators and the dynamics schedules.
constexpr std::uint64_t kAttackerTag = 0xA77ACC;

}  // namespace

AttackController::AttackController(const AttackSpec& spec, std::uint64_t seed,
                                   std::size_t num_clients)
    : spec_(spec),
      // First id outside the honest range: community/pureness metrics and
      // partition visibility masks already treat out-of-range publishers as
      // cluster-less externals.
      attacker_id_(static_cast<int>(num_clients)),
      attacker_rng_(Rng(seed).fork(kAttackerTag)) {}

std::size_t AttackController::run_random_weights(std::size_t unit, dag::Dag& dag) {
  const RandomWeightsAttackSpec& attack = spec_.random_weights;
  if (!attack.active_at(unit)) return 0;
  if (!attacker_) {
    fl::RandomWeightAttackerConfig config;
    config.transactions_per_round = 1;  // the budget loop controls the rate
    config.weight_stddev = attack.weight_stddev;
    config.num_parents = attack.num_parents;
    attacker_ = std::make_unique<fl::RandomWeightAttacker>(
        attacker_id_, dag.weights(dag::kGenesisTx)->size(), config, attacker_rng_);
  }
  budget_ += attack.rate;
  std::size_t published = 0;
  while (budget_ >= 1.0) {
    attacker_->attack(dag, unit);
    budget_ -= 1.0;
    ++published;
  }
  total_published_ += published;
  return published;
}

bool AttackController::measure_at(std::size_t unit) const { return spec_.measure_at(unit); }

LabelFlipProbe AttackController::probe_label_flip(core::SpecializingDag& net,
                                                  const data::FederatedDataset& dataset,
                                                  nn::Sequential& probe) {
  LabelFlipProbe result;
  std::size_t benign = 0;
  for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
    const data::ClientData& client = dataset.clients[i];
    if (client.poisoned) continue;
    const dag::TxId reference = net.consensus_reference(static_cast<int>(i));
    const dag::WeightsPtr weights = net.dag().weights(reference);
    result.flip_rate += fl::flip_rate(probe, *weights, client, spec_.label_flip.class_a,
                                      spec_.label_flip.class_b);
    result.approved_poisoned +=
        static_cast<double>(metrics::approved_poisoned_count(net.dag(), reference));
    ++benign;
  }
  if (benign > 0) {
    result.flip_rate /= static_cast<double>(benign);
    result.approved_poisoned /= static_cast<double>(benign);
  }
  return result;
}

double AttackController::junk_reference_fraction(core::SpecializingDag& net,
                                                 std::size_t num_clients) {
  if (num_clients == 0) return 0.0;
  std::size_t junk = 0;
  for (std::size_t i = 0; i < num_clients; ++i) {
    const dag::TxId reference = net.consensus_reference(static_cast<int>(i));
    if (net.dag().publisher(reference) == attacker_id_) ++junk;
  }
  return static_cast<double>(junk) / static_cast<double>(num_clients);
}

}  // namespace specdag::scenario
