// Declarative adversary schedules for the scenario engine (paper §4.4 and
// §5.3.4 threat models). An `attacks` block makes "who attacks when" spec
// data instead of bench-main orchestration:
//
//   "attacks": {
//     "metrics_every": 1,                    // measure flip/poison metrics
//                                            // every N rounds (0 = off)
//     "random_weights": {                    // §4.4 junk-transaction attack
//       "rate": 1.0,                         // attacker transactions per round
//       "weight_stddev": 0.1, "num_parents": 2,
//       "start_round": 10, "stop_round": 0   // active in [start, stop); 0 = forever
//     },
//     "label_flip": {                        // §5.3.4 flipped-label poisoning
//       "fraction": 0.2,                     // poisoned fraction of clients
//       "class_a": 3, "class_b": 8,
//       "start_round": 40, "stop_round": 0   // labels restored at stop_round
//     }
//   }
//
// Both windows use the same round/virtual-time units as the `dynamics`
// block. The label-flip event at `start_round` fires before that unit runs
// (its clients train on forged labels from the first attacked unit); the
// random-weights attacker publishes its junk after each in-window unit's
// training, so junk first influences walks from the following unit. Either
// way a run with an attack window is bit-identical to an attack-free run up
// to `start_round` (the attacker draws from its own forked RNG stream).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/specializing_dag.hpp"
#include "fl/attacker.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::scenario {

// Random-weight junk transactions (paper §4.4, first threat model). The
// attacker publishes via the uniformly random walk under an id outside the
// honest client range, so community/pureness metrics skip its edges.
struct RandomWeightsAttackSpec {
  double rate = 0.0;  // attacker transactions per round (fractions accumulate)
  double weight_stddev = 0.1;
  std::size_t num_parents = 2;
  std::size_t start_round = 0;
  std::size_t stop_round = 0;  // 0 = active until the run ends

  bool enabled() const { return rate > 0.0; }
  bool active_at(std::size_t unit) const {
    return enabled() && unit >= start_round && (stop_round == 0 || unit < stop_round);
  }
};

// Flipped-label poisoning (paper §5.3.4): at `start_round` the labels
// class_a <-> class_b of a seed-derived `fraction` of the clients are
// exchanged in train and test data; at `stop_round` (0 = never) the flip is
// reverted. Poisoned clients are unaware and keep training/steering their
// tip selection by the forged labels.
struct LabelFlipAttackSpec {
  double fraction = 0.0;
  int class_a = 3;
  int class_b = 8;
  std::size_t start_round = 0;
  std::size_t stop_round = 0;

  bool enabled() const { return fraction > 0.0; }
  bool started_by(std::size_t unit) const { return enabled() && unit >= start_round; }
};

struct AttackSpec {
  // Measure the label-flip evaluation metrics (benign flip rate on the
  // targeted classes, poisoned-approval counts) every N units from
  // `label_flip.start_round` on. The measurement walks each benign client's
  // consensus reference — part of the experiment protocol, exactly like the
  // paper's Figure 12/13 probes.
  std::size_t metrics_every = 0;
  RandomWeightsAttackSpec random_weights;
  LabelFlipAttackSpec label_flip;

  bool any() const { return random_weights.enabled() || label_flip.enabled(); }

  // True when the label-flip probes are scheduled at `unit` — the single
  // source of the measurement cadence for the DAG and baseline runners. The
  // probe schedule is independent of `label_flip.fraction`, so a clean
  // control run measures the identical schedule (the Figure 12 p=0 curve),
  // and it continues past `stop_round` so the series exposes recovery after
  // the labels heal. The summary means only aggregate in-window points.
  bool measure_at(std::size_t unit) const {
    if (metrics_every == 0 || unit < label_flip.start_round) return false;
    // Junk-only runs have no flip to probe; the walks would cost a full
    // benign-client sweep per round for a meaningless metric.
    if (random_weights.enabled() && !label_flip.enabled()) return false;
    return (unit - label_flip.start_round) % metrics_every == 0;
  }
};

// Per-measurement label-flip metrics over the benign clients.
struct LabelFlipProbe {
  double flip_rate = 0.0;          // mean misprediction a<->b on benign test sets
  double approved_poisoned = 0.0;  // mean poisoned transactions in the consensus past cone
};

// Drives the random-weight attacker against a running DAG simulation and
// evaluates the label-flip probes. One controller per run; its RNG is forked
// from the run seed so attack traffic never perturbs the training streams.
class AttackController {
 public:
  AttackController(const AttackSpec& spec, std::uint64_t seed, std::size_t num_clients);

  // Publishes the junk transactions due at `unit` (fractional rates carry a
  // budget across units). Returns the number published. The attacker is
  // created on first use, sized to the genesis payload.
  std::size_t run_random_weights(std::size_t unit, dag::Dag& dag);

  // True when the label-flip metrics should be measured at `unit`.
  bool measure_at(std::size_t unit) const;

  // Figure 12/13 probes: walks every benign client's consensus reference and
  // evaluates the flip rate of the referenced model plus the poisoned
  // transactions it approves. Uses the clients' own walk configuration.
  LabelFlipProbe probe_label_flip(core::SpecializingDag& net,
                                  const data::FederatedDataset& dataset, nn::Sequential& probe);

  // The id attacker transactions publish under (outside the client range).
  int attacker_id() const { return attacker_id_; }
  std::size_t total_published() const { return total_published_; }

  // Fraction of clients whose consensus reference is an attacker transaction
  // (the §4.4 takeover indicator). Walks every client once.
  double junk_reference_fraction(core::SpecializingDag& net, std::size_t num_clients);

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  AttackSpec spec_;
  int attacker_id_;
  Rng attacker_rng_;
  std::unique_ptr<fl::RandomWeightAttacker> attacker_;
  double budget_ = 0.0;
  std::size_t total_published_ = 0;
};

}  // namespace specdag::scenario
