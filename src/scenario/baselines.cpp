#include "scenario/baselines.hpp"

#include <stdexcept>

namespace specdag::scenario {
namespace {

constexpr std::uint64_t kGossipSelectTag = 0x6055B;

}  // namespace

BaselineBackend::BaselineBackend(data::FederatedDataset dataset, std::uint64_t seed)
    : dataset_(std::move(dataset)), seed_(seed) {
  dataset_.validate();
}

std::vector<int> BaselineBackend::apply_poisoning(double p, int class_a, int class_b) {
  // data::kPoisonForkTag: the same victim set as a DAG run of this seed.
  Rng poison_rng = Rng(seed_).fork(data::kPoisonForkTag);
  poison_class_a_ = class_a;
  poison_class_b_ = class_b;
  return data::poison_fraction(dataset_, p, class_a, class_b, poison_rng);
}

void BaselineBackend::revert_poisoning() {
  data::revert_poisoning(dataset_, poison_class_a_, poison_class_b_);
}

FedAvgBackend::FedAvgBackend(data::FederatedDataset dataset, const nn::ModelFactory& factory,
                             fl::TrainConfig train, double proximal_mu,
                             std::size_t clients_per_round, std::uint64_t seed)
    : BaselineBackend(std::move(dataset), seed),
      server_(factory, fl::FedServerConfig{train, proximal_mu, /*weight_by_samples=*/true},
              Rng(seed)),
      probe_(factory()),
      clients_per_round_(clients_per_round) {
  if (clients_per_round_ == 0 || clients_per_round_ > dataset_.clients.size()) {
    throw std::invalid_argument("FedAvgBackend: bad clients_per_round");
  }
}

std::vector<fl::EvalResult> FedAvgBackend::run_round() {
  return server_.run_round(dataset_, clients_per_round_).client_evals;
}

double FedAvgBackend::mean_benign_flip_rate(int class_a, int class_b) {
  double sum = 0.0;
  std::size_t benign = 0;
  for (const auto& client : dataset_.clients) {
    if (client.poisoned) continue;
    sum += fl::flip_rate(probe_, server_.global_weights(), client, class_a, class_b);
    ++benign;
  }
  return benign > 0 ? sum / static_cast<double>(benign) : 0.0;
}

double FedAvgBackend::mean_inference_accuracy() {
  double sum = 0.0;
  for (const auto& client : dataset_.clients) {
    sum += fl::evaluate_weights_on_test(probe_, server_.global_weights(), client).accuracy;
  }
  return sum / static_cast<double>(dataset_.clients.size());
}

GossipBackend::GossipBackend(data::FederatedDataset dataset, const nn::ModelFactory& factory,
                             fl::TrainConfig train, std::size_t clients_per_round,
                             std::uint64_t seed)
    : BaselineBackend(std::move(dataset), seed),
      net_(&dataset_, factory, fl::GossipConfig{train}, Rng(seed)),
      probe_(factory()),
      select_rng_(Rng(seed).fork(kGossipSelectTag)),
      clients_per_round_(clients_per_round) {
  if (clients_per_round_ == 0 || clients_per_round_ > dataset_.clients.size()) {
    throw std::invalid_argument("GossipBackend: bad clients_per_round");
  }
}

std::vector<fl::EvalResult> GossipBackend::run_round() {
  const std::vector<std::size_t> active =
      select_rng_.sample_without_replacement(dataset_.clients.size(), clients_per_round_);
  return net_.run_round(active);
}

double GossipBackend::mean_benign_flip_rate(int class_a, int class_b) {
  double sum = 0.0;
  std::size_t benign = 0;
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    if (dataset_.clients[i].poisoned) continue;
    sum += fl::flip_rate(probe_, net_.client_weights(i), dataset_.clients[i], class_a, class_b);
    ++benign;
  }
  return benign > 0 ? sum / static_cast<double>(benign) : 0.0;
}

double GossipBackend::mean_inference_accuracy() {
  double sum = 0.0;
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    sum += fl::evaluate_weights_on_test(probe_, net_.client_weights(i), dataset_.clients[i])
               .accuracy;
  }
  return sum / static_cast<double>(dataset_.clients.size());
}

}  // namespace specdag::scenario
