// Non-DAG algorithm backends for the scenario runner.
//
// The paper's headline claims are comparative — the accuracy-aware DAG vs
// FedAvg/FedProx (Figures 9-11) and vs gossip learning (§3.2) — so the
// runner treats "which algorithm runs" as spec data: every backend executes
// the same dataset preset, round count, and seed behind the same
// ScenarioResult surface, which makes DAG-vs-baseline sweeps a one-axis
// grid. DAG runs keep their specialized paths in runner.cpp; this file
// provides the centralized (FedAvg/FedProx) and gossip backends.
#pragma once

#include <memory>

#include "data/poisoning.hpp"
#include "fl/fed_server.hpp"
#include "fl/gossip.hpp"

namespace specdag::scenario {

// One per-round step of a baseline: the per-selected-client evaluations the
// paper plots (FedAvg: the distributed global model before local training;
// gossip: the post-training local model).
class BaselineBackend {
 public:
  virtual ~BaselineBackend() = default;

  // Runs one round over `clients_per_round` sampled clients.
  virtual std::vector<fl::EvalResult> run_round() = 0;

  // Mean flipped-prediction rate (classes a<->b) over the benign clients'
  // inference models — the baseline analogue of the DAG's Figure 12 probe.
  virtual double mean_benign_flip_rate(int class_a, int class_b) = 0;

  // Mean accuracy over *every* client of the model it would use for
  // inference (the analogue of the DAG's consensus evaluation).
  virtual double mean_inference_accuracy() = 0;

  // Label-flip attack hooks with the same semantics as the simulators':
  // poison a seed-derived fraction, revert restores the original labels.
  std::vector<int> apply_poisoning(double p, int class_a, int class_b);
  void revert_poisoning();

  const data::FederatedDataset& dataset() const { return dataset_; }

 protected:
  BaselineBackend(data::FederatedDataset dataset, std::uint64_t seed);

  data::FederatedDataset dataset_;  // owned: poisoning mutates client shards
  std::uint64_t seed_;

 private:
  int poison_class_a_ = 0;
  int poison_class_b_ = 0;
};

// FedAvg (McMahan et al.) / FedProx (Li et al., mu > 0). Wraps fl::FedServer
// with its own client sampling, so a backend round is bit-identical to
// calling FedServer::run_round(dataset, clients_per_round) directly with the
// same seed — the parity the tests pin down.
class FedAvgBackend final : public BaselineBackend {
 public:
  FedAvgBackend(data::FederatedDataset dataset, const nn::ModelFactory& factory,
                fl::TrainConfig train, double proximal_mu, std::size_t clients_per_round,
                std::uint64_t seed);

  std::vector<fl::EvalResult> run_round() override;
  double mean_benign_flip_rate(int class_a, int class_b) override;
  double mean_inference_accuracy() override;

  const fl::FedServer& server() const { return server_; }

 private:
  fl::FedServer server_;
  nn::Sequential probe_;
  std::size_t clients_per_round_;
};

// Gossip learning (paper §3.2): decentralized averaging with a uniformly
// random peer, no ledger.
class GossipBackend final : public BaselineBackend {
 public:
  GossipBackend(data::FederatedDataset dataset, const nn::ModelFactory& factory,
                fl::TrainConfig train, std::size_t clients_per_round, std::uint64_t seed);

  std::vector<fl::EvalResult> run_round() override;
  double mean_benign_flip_rate(int class_a, int class_b) override;
  double mean_inference_accuracy() override;

 private:
  fl::GossipNetwork net_;
  nn::Sequential probe_;
  Rng select_rng_;
  std::size_t clients_per_round_;
};

}  // namespace specdag::scenario
