#include "scenario/config.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace specdag::scenario {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError("JSON error at offset " + std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      for (const auto& [existing, unused] : members) {
        if (existing == key) fail("duplicate key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(elements));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string result;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return result;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        result += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': result += '"'; break;
        case '\\': result += '\\'; break;
        case '/': result += '/'; break;
        case 'b': result += '\b'; break;
        case 'f': result += '\f'; break;
        case 'n': result += '\n'; break;
        case 'r': result += '\r'; break;
        case 't': result += '\t'; break;
        case 'u': result += parse_unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned int code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs are not supported");
    // UTF-8 encode (BMP only).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &consumed);
    } catch (const std::exception&) {
      fail("invalid number \"" + token + "\"");
    }
    if (consumed != token.size() || !std::isfinite(value)) {
      fail("invalid number \"" + token + "\"");
    }
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double value) {
  // Integral values print without a fractional part so specs stay readable
  // and uint round trips are exact up to 2^53.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, value);
    if (std::stod(probe) == value) {
      out += probe;
      return;
    }
  }
  out += buf;
}

}  // namespace

Json::Json(double value) : type_(Type::kNumber), number_(value) {
  if (!std::isfinite(value)) throw JsonError("Json: non-finite number");
}

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw JsonError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("expected a boolean");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw JsonError("expected a number");
  return number_;
}

std::int64_t Json::as_int() const {
  const double v = as_number();
  if (v != std::floor(v)) throw JsonError("expected an integer");
  return static_cast<std::int64_t>(v);
}

std::uint64_t Json::as_uint() const {
  const double v = as_number();
  if (v != std::floor(v) || v < 0.0 || v >= 18446744073709551616.0) {
    throw JsonError("expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw JsonError("expected a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) throw JsonError("expected an array");
  return array_;
}

Json::Array& Json::as_array() {
  if (type_ != Type::kArray) throw JsonError("expected an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) throw JsonError("expected an object");
  return object_;
}

Json::Object& Json::as_object() {
  if (type_ != Type::kObject) throw JsonError("expected an object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(const std::string& key, Json value) {
  for (auto& [k, v] : as_object()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

void Json::set_path(const std::string& dotted_path, Json value) {
  const std::size_t dot = dotted_path.find('.');
  if (dot == std::string::npos) {
    set(dotted_path, std::move(value));
    return;
  }
  const std::string head = dotted_path.substr(0, dot);
  const std::string tail = dotted_path.substr(dot + 1);
  for (auto& [k, v] : as_object()) {
    if (k == head) {
      v.set_path(tail, std::move(value));
      return;
    }
  }
  Json child = make_object();
  child.set_path(tail, std::move(value));
  object_.emplace_back(head, std::move(child));
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v ? v->as_bool() : fallback;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v ? v->as_number() : fallback;
}

std::uint64_t Json::uint_or(const std::string& key, std::uint64_t fallback) const {
  const Json* v = find(key);
  return v ? v->as_uint() : fallback;
}

std::string Json::string_or(const std::string& key, const std::string& fallback) const {
  const Json* v = find(key);
  return v ? v->as_string() : fallback;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kNumber: return a.number_ == b.number_;
    case Json::Type::kString: return a.string_ == b.string_;
    case Json::Type::kArray: return a.array_ == b.array_;
    case Json::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

namespace {

void dump_value(std::string& out, const Json& value, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (value.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: dump_number(out, value.as_number()); break;
    case Json::Type::kString: dump_string(out, value.as_string()); break;
    case Json::Type::kArray: {
      const auto& elements = value.as_array();
      if (elements.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        dump_value(out, elements[i], indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Json::Type::kObject: {
      const auto& members = value.as_object();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        dump_string(out, members[i].first);
        out += indent > 0 ? ": " : ":";
        dump_value(out, members[i].second, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(out, *this, indent, 0);
  return out;
}

}  // namespace specdag::scenario
