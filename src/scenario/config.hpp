// Dependency-free JSON-subset parser and writer for scenario specs.
//
// Supports the JSON the scenario engine needs — null, booleans, finite
// numbers, strings (with the standard escapes, \uXXXX limited to the BMP),
// arrays and objects — and nothing else: no comments, no NaN/Infinity, no
// duplicate-key tolerance. Objects preserve insertion order so a parse ->
// dump -> parse round trip is the identity on the value level.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace specdag::scenario {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value);
  Json(int value) : Json(static_cast<double>(value)) {}
  // Integers above 2^53 would be silently rounded by the double
  // representation; refusing them keeps every stored integer exact.
  Json(std::uint64_t value) : Json(checked_integer(value)) {}
  template <typename T,
            typename = std::enable_if_t<std::is_same_v<T, std::size_t> &&
                                        !std::is_same_v<std::size_t, std::uint64_t>>>
  Json(T value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json make_object() { return Json(Object{}); }
  static Json make_array() { return Json(Array{}); }

  // Parses a complete document; trailing non-whitespace is an error.
  // Throws JsonError with a byte offset on malformed input.
  static Json parse(const std::string& text);
  static Json parse_file(const std::string& path);

  // Serializes the value. indent > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Checked accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;   // requires an integral number
  std::uint64_t as_uint() const;  // requires a non-negative integral number
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  // Object helpers. find() returns nullptr when the key is absent.
  const Json* find(const std::string& key) const;
  void set(const std::string& key, Json value);  // insert or overwrite
  // Sets a dotted path ("client.train.batch_size"), creating intermediate
  // objects as needed — the sweep executor applies grid axes through this.
  void set_path(const std::string& dotted_path, Json value);

  // Typed lookups with defaults, for tolerant spec deserialization.
  bool bool_or(const std::string& key, bool fallback) const;
  double number_or(const std::string& key, double fallback) const;
  std::uint64_t uint_or(const std::string& key, std::uint64_t fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  static double checked_integer(std::uint64_t value) {
    if (value > (std::uint64_t{1} << 53)) {
      throw JsonError("integer " + std::to_string(value) +
                      " cannot be represented exactly as a JSON number");
    }
    return static_cast<double>(value);
  }

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace specdag::scenario
