#include "scenario/registry.hpp"

#include <stdexcept>

namespace specdag::scenario {
namespace {

std::vector<ScenarioSpec> make_builtins() {
  std::vector<ScenarioSpec> scenarios;

  {
    // The Figure 5/6 baseline: three class-group clusters, accuracy-biased
    // walks with the paper's alpha = 10 sweet spot.
    ScenarioSpec spec;
    spec.name = "fmnist-clustered";
    spec.description = "FMNIST-clustered baseline (paper Figures 5/6 regime)";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fmnist-relaxed";
    spec.description = "Relaxed clustering: 15-20% foreign-cluster data (Figure 8)";
    spec.dataset = DatasetPreset::kFmnistRelaxed;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "poets";
    spec.description = "Poets next-char LSTM, two language clusters (paper SS5.1.2)";
    spec.dataset = DatasetPreset::kPoets;
    spec.rounds = 30;
    spec.client.train = {1, 35, 10, 0.8};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fedprox-async";
    spec.description = "FedProx synthetic(0.5,0.5) on the event-driven simulator";
    spec.dataset = DatasetPreset::kFedproxSynthetic;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 30;  // virtual-time horizon
    spec.broadcast_latency = 0.5;
    spec.client.train = {2, 20, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // New workload: delayed broadcast on the round simulator (SS5.3.5
    // network caveat; previously the ablation_visibility_delay bench).
    ScenarioSpec spec;
    spec.name = "visibility-delay";
    spec.description = "Slow broadcast: transactions become visible 3 rounds late";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.visibility_delay_rounds = 3;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // New workload: client churn. A third of the network leaves at round 10
    // and rejoins at round 25; specialization must survive the gap.
    ScenarioSpec spec;
    spec.name = "churn";
    spec.description = "Client churn: 30% leave at round 10, rejoin at round 25";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.churn = {0.3, 10, 25};
    scenarios.push_back(spec);
  }
  {
    // New workload: heavy-tailed device speeds on the async simulator. The
    // fast majority keeps publishing while stragglers contribute stale
    // updates at Pareto-distributed intervals.
    ScenarioSpec spec;
    spec.name = "stragglers";
    spec.description = "Stragglers: 30% of clients on 6x Pareto(1.5) training clocks";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 30;
    spec.broadcast_latency = 0.5;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.stragglers = {0.3, 6.0, 1.5};
    scenarios.push_back(spec);
  }
  {
    // New workload: the §5.3.5 / Figure 15 scalability regime at paper
    // scale — 2000 concurrently training clients on the event-driven
    // simulator. Depth-sampled walk starts bound the walk cost (Popov's
    // 15-25 window) and the payload store keeps memory sub-linear: deltas
    // against the averaged parents plus a small materialization LRU.
    // Run with store.delta=false to measure the full-vector baseline.
    ScenarioSpec spec;
    spec.name = "scale-2k";
    spec.description = "2000 async clients, delta-encoded payload store (SS5.3.5 scale)";
    spec.dataset = DatasetPreset::kFmnistByAuthor;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 3;  // virtual-time horizon: ~3 training steps per client
    spec.broadcast_latency = 0.3;
    spec.num_clients = 2000;
    spec.samples_per_client = 30;
    spec.client.selector = fl::SelectorKind::kWeighted;
    spec.client.alpha = 1.0;
    spec.client.walk_start = tipsel::WalkStart::kDepthSampled;
    // One light SGD step per publication: the workload stresses transaction
    // throughput and memory, not learning progress, and small local updates
    // are the regime where delta encoding pays (converged deployments).
    spec.client.train = {1, 1, 10, 0.0005};
    spec.store.delta = true;
    // Encode deltas off the commit path (PR 5): the codec was the commit
    // phase's dominant cost at this scale. `specdag run scale-2k
    // --sync-encode` restores inline encoding; results are bit-identical
    // either way.
    spec.store.async_encode = true;
    // Longer delta chains before an anchor: at this scale raw anchors are
    // the dominant resident cost, and the 93%+ LRU hit rate keeps the
    // deeper reconstruction cheap.
    spec.store.anchor_interval = 16;
    spec.store.lru_bytes = std::size_t{16} << 20;
    scenarios.push_back(spec);
  }
  {
    // New workload: a network partition aligned with the data clusters from
    // round 5 to round 25. During the partition each cluster trains on its
    // own sub-DAG; after healing the walks must reconcile the lineages.
    ScenarioSpec spec;
    spec.name = "partition";
    spec.description = "Network partition by cluster, rounds 5-25, then heals";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.partition = {3, true, 5, 25};
    scenarios.push_back(spec);
  }

  // --- paper figures and tables (formerly hand-rolled bench mains) --------
  // Each scenario is the base configuration of one figure/table; the thin
  // drivers under bench/ sweep the remaining axis (dataset, algorithm,
  // alpha, ...) over these bases.
  {
    // Figure 9: per-client accuracy distributions, DAG vs FedAvg. The driver
    // flips `algorithm` and `dataset`; the recorded per-client accuracies
    // supply the quartile boxes.
    ScenarioSpec spec;
    spec.name = "fig9-fedavg-vs-dag";
    spec.description = "Figure 9 base: per-client accuracy distributions (DAG side)";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 100;
    spec.record_client_accuracies = true;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // Figures 10/11: accuracy and loss per round on the FedProx synthetic
    // dataset; the driver runs algorithm in {dag, fedavg, fedprox}.
    ScenarioSpec spec;
    spec.name = "fig10-11-fedprox";
    spec.description = "Figures 10/11 base: synthetic(0.5,0.5), DAG vs FedAvg vs FedProx";
    spec.dataset = DatasetPreset::kFedproxSynthetic;
    spec.rounds = 100;
    spec.proximal_mu = 1.0;  // the FedProx paper's mu for this dataset
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // Figures 12/13/14: flipped-label poisoning on the author split. Clean
    // for the first half, 3<->8 flipped for 20% of clients in the second;
    // the flip-rate / poisoned-approval probes run every round of the
    // attack phase. The driver sweeps the fraction and the tip selector.
    ScenarioSpec spec;
    spec.name = "fig12-14-poisoning";
    spec.description = "Figures 12-14: mid-run flipped-label poisoning (3<->8, 20%)";
    spec.dataset = DatasetPreset::kFmnistByAuthor;
    spec.rounds = 80;
    spec.client.train = {1, 10, 10, 0.05};
    spec.attacks.label_flip = {0.2, 3, 8, 40, 0};
    spec.attacks.metrics_every = 1;
    scenarios.push_back(spec);
  }
  {
    // Figure 15: walk cost vs concurrently active clients. Depth-sampled
    // walk starts (Popov's 15-25) and no cross-round evaluation cache, so
    // every walk pays its full cost; the driver sweeps clients_per_round.
    ScenarioSpec spec;
    spec.name = "fig15-scalability";
    spec.description = "Figure 15: biased-walk cost, depth-sampled starts, no eval cache";
    spec.dataset = DatasetPreset::kFmnistByAuthor;
    spec.rounds = 50;
    spec.clients_per_round = 10;
    spec.num_clients = 60;
    spec.samples_per_client = 80;
    spec.client.walk_start = tipsel::WalkStart::kDepthSampled;
    spec.client.start_depth_min = 15;
    spec.client.start_depth_max = 25;
    spec.client.persistent_accuracy_cache = false;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // Table 2: approval pureness after training; the driver also runs the
    // poets and cifar presets over this base.
    ScenarioSpec spec;
    spec.name = "table2-pureness";
    spec.description = "Table 2 base: approval pureness after 100 rounds";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 100;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }

  // --- ablations ----------------------------------------------------------
  {
    // Broadcast latency vs specialization on the event-driven simulator:
    // zero latency collapses the tip set towards a chain; the driver sweeps
    // the latency from 0 upward.
    ScenarioSpec spec;
    spec.name = "ablation-async-latency";
    spec.description = "Ablation: async broadcast latency sustains DAG width";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 30;
    spec.broadcast_latency = 0.3;
    spec.num_clients = 15;
    spec.samples_per_client = 100;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // Decentralized alternatives on clustered non-IID data; the driver runs
    // algorithm in {dag, gossip, fedavg}.
    ScenarioSpec spec;
    spec.name = "ablation-baselines";
    spec.description = "Ablation: DAG vs gossip learning vs FedAvg on clustered data";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 80;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // Approvals per transaction (paper: 2); the driver sweeps num_parents.
    ScenarioSpec spec;
    spec.name = "ablation-num-parents";
    spec.description = "Ablation: approvals per transaction (paper fixes 2)";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 80;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // Partial-layer training (paper future work): the base freezes the
    // feature layers and trains only the classifier head; the driver
    // compares against freeze_prefix_params = 0.
    ScenarioSpec spec;
    spec.name = "ablation-partial-training";
    spec.description = "Ablation: head-only training vs full training";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 80;
    spec.client.train = {1, 10, 10, 0.05};
    spec.client.train.freeze_prefix_params = 2;
    scenarios.push_back(spec);
  }
  {
    // The publish-if-better gate (paper §4.1); the driver compares gate off.
    ScenarioSpec spec;
    spec.name = "ablation-publish-gate";
    spec.description = "Ablation: the publish-if-better gate filters regressions";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 80;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // Random-weights attack (paper §4.4): one junk transaction per round
    // from round 0; the driver sweeps the rate. evaluate_consensus supplies
    // the honest-consensus accuracy, the attack summary the junk-reference
    // takeover fraction.
    ScenarioSpec spec;
    spec.name = "ablation-random-weights";
    spec.description = "Ablation: random-weight junk transactions vs the accuracy walk";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 60;
    spec.evaluate_consensus = true;
    spec.client.train = {1, 10, 10, 0.05};
    spec.attacks.random_weights = {1.0, 0.1, 2, 0, 0};
    scenarios.push_back(spec);
  }

  {
    // Perf workload: cumulative-weight-biased walks on a DAG that keeps
    // growing (the gate is off, so every prepare publishes). Training is one
    // tiny SGD step — wall clock is dominated by tip selection, which makes
    // this the regression canary for the incremental weight index and the
    // parallel prepare phase. CI runs it as the perf smoke; scale it up with
    // --rounds/--clients/--threads for real measurements.
    ScenarioSpec spec;
    spec.name = "walk-bench";
    spec.description = "Perf: weighted walks on a growing DAG (weight-index canary)";
    spec.dataset = DatasetPreset::kFmnistByAuthor;
    spec.rounds = 25;
    spec.clients_per_round = 20;
    spec.num_clients = 40;
    spec.samples_per_client = 30;
    spec.client.selector = fl::SelectorKind::kWeighted;
    spec.client.alpha = 1.0;
    spec.client.publish_gate = false;
    spec.client.train = {1, 1, 10, 0.0005};
    scenarios.push_back(spec);
  }

  // --- CI smokes ----------------------------------------------------------
  {
    // Tiny adversarial run for CI: label flip mid-run with per-round probes.
    ScenarioSpec spec;
    spec.name = "poisoning-smoke";
    spec.description = "CI smoke: tiny label-flip attack with per-round probes";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 6;
    spec.clients_per_round = 3;
    spec.num_clients = 6;
    spec.samples_per_client = 40;
    spec.client.train = {1, 4, 8, 0.05};
    spec.attacks.label_flip = {0.34, 3, 8, 2, 0};
    spec.attacks.metrics_every = 1;
    scenarios.push_back(spec);
  }
  {
    // Tiny baseline run for CI: the fedavg backend behind the runner.
    ScenarioSpec spec;
    spec.name = "fedavg-smoke";
    spec.description = "CI smoke: tiny FedAvg run through the scenario runner";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.algorithm = AlgorithmKind::kFedAvg;
    spec.rounds = 5;
    spec.clients_per_round = 3;
    spec.num_clients = 6;
    spec.samples_per_client = 40;
    spec.evaluate_consensus = true;
    spec.client.train = {1, 4, 8, 0.05};
    scenarios.push_back(spec);
  }

  for (const ScenarioSpec& spec : scenarios) spec.validate();
  return scenarios;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> scenarios = make_builtins();
  return scenarios;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ScenarioSpec get_scenario(const std::string& name) {
  if (const ScenarioSpec* spec = find_scenario(name)) return *spec;
  std::string known;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("unknown scenario \"" + name + "\" (known: " + known + ")");
}

}  // namespace specdag::scenario
