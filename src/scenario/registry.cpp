#include "scenario/registry.hpp"

#include <stdexcept>

namespace specdag::scenario {
namespace {

std::vector<ScenarioSpec> make_builtins() {
  std::vector<ScenarioSpec> scenarios;

  {
    // The Figure 5/6 baseline: three class-group clusters, accuracy-biased
    // walks with the paper's alpha = 10 sweet spot.
    ScenarioSpec spec;
    spec.name = "fmnist-clustered";
    spec.description = "FMNIST-clustered baseline (paper Figures 5/6 regime)";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fmnist-relaxed";
    spec.description = "Relaxed clustering: 15-20% foreign-cluster data (Figure 8)";
    spec.dataset = DatasetPreset::kFmnistRelaxed;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "poets";
    spec.description = "Poets next-char LSTM, two language clusters (paper SS5.1.2)";
    spec.dataset = DatasetPreset::kPoets;
    spec.rounds = 30;
    spec.client.train = {1, 35, 10, 0.8};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fedprox-async";
    spec.description = "FedProx synthetic(0.5,0.5) on the event-driven simulator";
    spec.dataset = DatasetPreset::kFedproxSynthetic;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 30;  // virtual-time horizon
    spec.broadcast_latency = 0.5;
    spec.client.train = {2, 20, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // New workload: delayed broadcast on the round simulator (SS5.3.5
    // network caveat; previously the ablation_visibility_delay bench).
    ScenarioSpec spec;
    spec.name = "visibility-delay";
    spec.description = "Slow broadcast: transactions become visible 3 rounds late";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.visibility_delay_rounds = 3;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // New workload: client churn. A third of the network leaves at round 10
    // and rejoins at round 25; specialization must survive the gap.
    ScenarioSpec spec;
    spec.name = "churn";
    spec.description = "Client churn: 30% leave at round 10, rejoin at round 25";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.churn = {0.3, 10, 25};
    scenarios.push_back(spec);
  }
  {
    // New workload: heavy-tailed device speeds on the async simulator. The
    // fast majority keeps publishing while stragglers contribute stale
    // updates at Pareto-distributed intervals.
    ScenarioSpec spec;
    spec.name = "stragglers";
    spec.description = "Stragglers: 30% of clients on 6x Pareto(1.5) training clocks";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 30;
    spec.broadcast_latency = 0.5;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.stragglers = {0.3, 6.0, 1.5};
    scenarios.push_back(spec);
  }
  {
    // New workload: a network partition aligned with the data clusters from
    // round 5 to round 25. During the partition each cluster trains on its
    // own sub-DAG; after healing the walks must reconcile the lineages.
    ScenarioSpec spec;
    spec.name = "partition";
    spec.description = "Network partition by cluster, rounds 5-25, then heals";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.partition = {3, true, 5, 25};
    scenarios.push_back(spec);
  }

  for (const ScenarioSpec& spec : scenarios) spec.validate();
  return scenarios;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> scenarios = make_builtins();
  return scenarios;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ScenarioSpec get_scenario(const std::string& name) {
  if (const ScenarioSpec* spec = find_scenario(name)) return *spec;
  std::string known;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("unknown scenario \"" + name + "\" (known: " + known + ")");
}

}  // namespace specdag::scenario
