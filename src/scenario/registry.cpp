#include "scenario/registry.hpp"

#include <stdexcept>

namespace specdag::scenario {
namespace {

std::vector<ScenarioSpec> make_builtins() {
  std::vector<ScenarioSpec> scenarios;

  {
    // The Figure 5/6 baseline: three class-group clusters, accuracy-biased
    // walks with the paper's alpha = 10 sweet spot.
    ScenarioSpec spec;
    spec.name = "fmnist-clustered";
    spec.description = "FMNIST-clustered baseline (paper Figures 5/6 regime)";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fmnist-relaxed";
    spec.description = "Relaxed clustering: 15-20% foreign-cluster data (Figure 8)";
    spec.dataset = DatasetPreset::kFmnistRelaxed;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "poets";
    spec.description = "Poets next-char LSTM, two language clusters (paper SS5.1.2)";
    spec.dataset = DatasetPreset::kPoets;
    spec.rounds = 30;
    spec.client.train = {1, 35, 10, 0.8};
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "fedprox-async";
    spec.description = "FedProx synthetic(0.5,0.5) on the event-driven simulator";
    spec.dataset = DatasetPreset::kFedproxSynthetic;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 30;  // virtual-time horizon
    spec.broadcast_latency = 0.5;
    spec.client.train = {2, 20, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // New workload: delayed broadcast on the round simulator (SS5.3.5
    // network caveat; previously the ablation_visibility_delay bench).
    ScenarioSpec spec;
    spec.name = "visibility-delay";
    spec.description = "Slow broadcast: transactions become visible 3 rounds late";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.visibility_delay_rounds = 3;
    spec.client.train = {1, 10, 10, 0.05};
    scenarios.push_back(spec);
  }
  {
    // New workload: client churn. A third of the network leaves at round 10
    // and rejoins at round 25; specialization must survive the gap.
    ScenarioSpec spec;
    spec.name = "churn";
    spec.description = "Client churn: 30% leave at round 10, rejoin at round 25";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.churn = {0.3, 10, 25};
    scenarios.push_back(spec);
  }
  {
    // New workload: heavy-tailed device speeds on the async simulator. The
    // fast majority keeps publishing while stragglers contribute stale
    // updates at Pareto-distributed intervals.
    ScenarioSpec spec;
    spec.name = "stragglers";
    spec.description = "Stragglers: 30% of clients on 6x Pareto(1.5) training clocks";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 30;
    spec.broadcast_latency = 0.5;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.stragglers = {0.3, 6.0, 1.5};
    scenarios.push_back(spec);
  }
  {
    // New workload: the §5.3.5 / Figure 15 scalability regime at paper
    // scale — 2000 concurrently training clients on the event-driven
    // simulator. Depth-sampled walk starts bound the walk cost (Popov's
    // 15-25 window) and the payload store keeps memory sub-linear: deltas
    // against the averaged parents plus a small materialization LRU.
    // Run with store.delta=false to measure the full-vector baseline.
    ScenarioSpec spec;
    spec.name = "scale-2k";
    spec.description = "2000 async clients, delta-encoded payload store (SS5.3.5 scale)";
    spec.dataset = DatasetPreset::kFmnistByAuthor;
    spec.simulator = SimKind::kAsync;
    spec.rounds = 3;  // virtual-time horizon: ~3 training steps per client
    spec.broadcast_latency = 0.3;
    spec.num_clients = 2000;
    spec.samples_per_client = 30;
    spec.client.selector = fl::SelectorKind::kWeighted;
    spec.client.alpha = 1.0;
    spec.client.walk_start = tipsel::WalkStart::kDepthSampled;
    // One light SGD step per publication: the workload stresses transaction
    // throughput and memory, not learning progress, and small local updates
    // are the regime where delta encoding pays (converged deployments).
    spec.client.train = {1, 1, 10, 0.0005};
    spec.store.delta = true;
    // Longer delta chains before an anchor: at this scale raw anchors are
    // the dominant resident cost, and the 93%+ LRU hit rate keeps the
    // deeper reconstruction cheap.
    spec.store.anchor_interval = 16;
    spec.store.lru_bytes = std::size_t{16} << 20;
    scenarios.push_back(spec);
  }
  {
    // New workload: a network partition aligned with the data clusters from
    // round 5 to round 25. During the partition each cluster trains on its
    // own sub-DAG; after healing the walks must reconcile the lineages.
    ScenarioSpec spec;
    spec.name = "partition";
    spec.description = "Network partition by cluster, rounds 5-25, then heals";
    spec.dataset = DatasetPreset::kFmnistClustered;
    spec.rounds = 40;
    spec.client.train = {1, 10, 10, 0.05};
    spec.dynamics.partition = {3, true, 5, 25};
    scenarios.push_back(spec);
  }

  for (const ScenarioSpec& spec : scenarios) spec.validate();
  return scenarios;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> scenarios = make_builtins();
  return scenarios;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ScenarioSpec get_scenario(const std::string& name) {
  if (const ScenarioSpec* spec = find_scenario(name)) return *spec;
  std::string known;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("unknown scenario \"" + name + "\" (known: " + known + ")");
}

}  // namespace specdag::scenario
