// Named built-in scenarios: the paper's figure experiments as data, plus the
// network-dynamics workloads (churn, stragglers, partition) the paper flags
// as future work (§5.3.5). `specdag list` prints this registry; benches and
// examples pull their base configuration from it instead of hard-coding.
#pragma once

#include "scenario/spec.hpp"

namespace specdag::scenario {

// All built-ins, in display order. Each spec validates and is runnable at
// CPU-bench scale out of the box.
const std::vector<ScenarioSpec>& builtin_scenarios();

// nullptr when no built-in has that name.
const ScenarioSpec* find_scenario(const std::string& name);

// The named built-in, or throws std::invalid_argument listing valid names.
ScenarioSpec get_scenario(const std::string& name);

}  // namespace specdag::scenario
