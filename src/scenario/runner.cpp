#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "dag/export.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "scenario/baselines.hpp"
#include "metrics/client_graph.hpp"
#include "metrics/community.hpp"
#include "metrics/dag_metrics.hpp"
#include "sim/async_simulator.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "snapshot/checkpoint.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace specdag::scenario {
namespace {

// Deterministic fork tags for the dynamics schedules. Distinct from every
// tag used inside the simulators so dynamics never perturb the training
// streams.
constexpr std::uint64_t kChurnTag = 0xC4DA;
constexpr std::uint64_t kStragglerTag = 0x57A6;

sim::ExperimentPreset build_preset(const ScenarioSpec& spec) {
  const sim::PresetOptions options{spec.seed, spec.paper_scale};
  sim::ExperimentPreset preset;
  switch (spec.dataset) {
    case DatasetPreset::kFmnistClustered: preset = sim::fmnist_clustered_preset(options); break;
    case DatasetPreset::kFmnistRelaxed: preset = sim::fmnist_relaxed_preset(options); break;
    case DatasetPreset::kFmnistByAuthor: preset = sim::fmnist_by_author_preset(options); break;
    case DatasetPreset::kPoets: preset = sim::poets_preset(options); break;
    case DatasetPreset::kCifar: preset = sim::cifar_preset(options); break;
    case DatasetPreset::kFedproxSynthetic: preset = sim::fedprox_synthetic_preset(options); break;
  }

  // Dataset-size overrides regenerate the shards with the same element
  // shape, so the preset's model factory stays valid.
  if (spec.num_clients > 0 || spec.samples_per_client > 0) {
    if (spec.dataset == DatasetPreset::kFedproxSynthetic) {
      data::FedProxSyntheticConfig config;
      config.seed = spec.seed;
      if (spec.num_clients > 0) config.num_clients = spec.num_clients;
      preset.dataset = data::make_fedprox_synthetic(config);
    } else {
      data::SyntheticDigitsConfig config;
      config.seed = spec.seed;
      if (spec.dataset == DatasetPreset::kFmnistRelaxed) {
        config.relax_min = 0.15;
        config.relax_max = 0.20;
      }
      if (spec.num_clients > 0) config.num_clients = spec.num_clients;
      if (spec.samples_per_client > 0) config.samples_per_client = spec.samples_per_client;
      preset.dataset = spec.dataset == DatasetPreset::kFmnistByAuthor
                           ? data::make_fmnist_by_author(config)
                           : data::make_fmnist_clustered(config);
    }
  }
  return preset;
}

// The seed-derived set of clients that churns out of the network.
std::vector<int> churn_targets(const ScenarioSpec& spec, std::size_t num_clients) {
  const auto count = static_cast<std::size_t>(
      std::floor(spec.dynamics.churn.fraction * static_cast<double>(num_clients)));
  if (count == 0) return {};
  Rng rng = Rng(spec.seed).fork(kChurnTag);
  std::vector<int> targets;
  for (std::size_t idx : rng.sample_without_replacement(num_clients, count)) {
    targets.push_back(static_cast<int>(idx));
  }
  return targets;
}

std::vector<int> partition_groups(const ScenarioSpec& spec,
                                  const data::FederatedDataset& dataset) {
  const std::size_t num_groups = spec.dynamics.partition.num_groups;
  std::vector<int> groups(dataset.clients.size());
  for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
    if (spec.dynamics.partition.by_cluster && dataset.clients[i].true_cluster >= 0) {
      groups[i] = dataset.clients[i].true_cluster % static_cast<int>(num_groups);
    } else {
      groups[i] = static_cast<int>(i % num_groups);
    }
  }
  return groups;
}

// Heavy-tailed training clocks for the straggler workload.
std::vector<sim::AsyncClientProfile> straggler_profiles(const ScenarioSpec& spec,
                                                        std::size_t num_clients) {
  std::vector<sim::AsyncClientProfile> profiles(num_clients);
  if (!spec.dynamics.stragglers.enabled()) return profiles;
  const auto count = static_cast<std::size_t>(
      std::ceil(spec.dynamics.stragglers.fraction * static_cast<double>(num_clients)));
  Rng rng = Rng(spec.seed).fork(kStragglerTag);
  for (std::size_t idx : rng.sample_without_replacement(num_clients, count)) {
    // Pareto(shape) with scale 1: x = (1 - u)^(-1/shape) >= 1. Shape <= 2
    // gives the infinite-variance tails that model real devices dropping in
    // and out of charge/connectivity.
    const double u = rng.uniform();
    const double pareto = std::pow(1.0 - u, -1.0 / spec.dynamics.stragglers.pareto_shape);
    profiles[idx].mean_step_interval = spec.dynamics.stragglers.slowdown * pareto;
  }
  return profiles;
}

// Fires the churn/partition events scheduled for `unit` (a round index or a
// virtual-time boundary — both simulators expose the same hook API).
template <typename Simulator>
void apply_dynamics_at(const ScenarioSpec& spec, const std::vector<int>& churned,
                       std::size_t unit, Simulator& simulator) {
  const ChurnSpec& churn = spec.dynamics.churn;
  if (churn.enabled()) {
    if (unit == churn.leave_round) {
      for (int id : churned) simulator.set_client_active(id, false);
    }
    if (churn.rejoin_round != 0 && unit == churn.rejoin_round) {
      for (int id : churned) simulator.set_client_active(id, true);
    }
  }
  const PartitionSpec& partition = spec.dynamics.partition;
  if (partition.enabled()) {
    if (unit == partition.start_round) {
      simulator.begin_partition(partition_groups(spec, simulator.dataset()));
    }
    if (partition.heal_round != 0 && unit == partition.heal_round) {
      simulator.heal_partition();
    }
  }
}

// Fires the label-flip schedule for `unit`. `target` is either simulator or
// a BaselineBackend — all three expose the same poisoning hooks.
template <typename Target>
void apply_label_flip_at(const ScenarioSpec& spec, std::size_t unit, Target& target,
                         ScenarioResult& result) {
  const LabelFlipAttackSpec& flip = spec.attacks.label_flip;
  if (!flip.enabled()) return;
  if (unit == flip.start_round) {
    result.poisoned_clients =
        target.apply_poisoning(flip.fraction, flip.class_a, flip.class_b).size();
  }
  if (flip.stop_round != 0 && unit == flip.stop_round) target.revert_poisoning();
}

// Checkpoint/resume/replay plumbing shared by the two DAG loops. `restore`
// (when set) seeds the run from a loaded checkpoint instead of unit 0;
// `stop_unit` lets replay_scenario stop before the spec horizon (0 = run to
// spec.rounds); `finalize` is off for replays, which only need the series.
struct RunControl {
  const snapshot::LoadedCheckpoint* restore = nullptr;
  std::size_t stop_unit = 0;
  bool finalize = true;
};

// Replays the label-flip schedule for every unit before `resume_unit`, so
// the dataset (flipped labels, poisoned flags) matches what the checkpointed
// run saw. Pure: the victim set derives from the seed alone. Runs BEFORE
// restore_state — the flips invalidate eval-cache entries, and the restore
// then installs the checkpoint's cache wholesale.
template <typename Simulator>
void replay_label_flips(const ScenarioSpec& spec, std::size_t resume_unit, Simulator& simulator,
                        ScenarioResult& result) {
  for (std::size_t unit = 0; unit < resume_unit; ++unit) {
    apply_label_flip_at(spec, unit, simulator, result);
  }
}

// Writes the periodic checkpoint due after `completed` units (no-op unless
// the spec schedules one there).
template <typename Simulator>
void maybe_write_checkpoint(const ScenarioSpec& spec, std::size_t completed,
                            const ScenarioResult& result, Simulator& simulator,
                            AttackController& attacks) {
  const CheckpointSpec& checkpoint = spec.checkpoint;
  if (!checkpoint.enabled() || completed % checkpoint.every_n_rounds != 0) return;
  std::filesystem::create_directories(checkpoint.dir);
  snapshot::write_checkpoint(snapshot::checkpoint_path(checkpoint.dir, completed), spec,
                             completed, result, simulator, attacks);
  snapshot::prune_checkpoints(checkpoint.dir, checkpoint.keep_last);
}

// Attack steps shared by the round and async DAG loops: publish the junk
// transactions due this unit, then run the label-flip probes when scheduled.
void run_attack_step(std::size_t unit, AttackController& attacks, core::SpecializingDag& net,
                     const data::FederatedDataset& dataset,
                     std::optional<nn::Sequential>& probe, const nn::ModelFactory& factory,
                     ScenarioPoint& point) {
  point.attacker_transactions = attacks.run_random_weights(unit, net.dag());
  if (!attacks.measure_at(unit)) return;
  if (!probe) probe.emplace(factory());
  const LabelFlipProbe measured = attacks.probe_label_flip(net, dataset, *probe);
  point.has_attack_metrics = true;
  point.flip_rate = measured.flip_rate;
  point.approved_poisoned = measured.approved_poisoned;
}

// One raw-vs-delta residency sample for the store time series (queue depth
// of the async encode pipeline, raw/delta entry split, resident bytes).
StoreResidencyPoint sample_store_residency(std::size_t round, const dag::Dag& dag) {
  const store::StoreStats stats = dag.store().stats();
  StoreResidencyPoint point;
  point.round = round;
  point.pending_encodes = stats.pending_encodes;
  point.raw_payloads = stats.anchors + stats.pending_encodes;
  point.delta_payloads = stats.deltas;
  point.resident_bytes = stats.resident_payload_bytes;
  return point;
}

// Per-round obs sampling on the run's own context (installed by ObsSession
// before the simulator is built, so Registry::snapshot() resolves to it).
// The context starts from zero; snapshot deltas still attribute per round,
// and stay correct even with other runs executing concurrently — each run
// only ever sees its own context's cells. Snapshots happen outside the
// simulators' timed sections, so summary.perf stays comparable.
class ObsRoundSampler {
 public:
  ObsRoundSampler() : enabled_(obs::metrics_enabled()) {
    if (enabled_) {
      begin_ = obs::Registry::snapshot();
      previous_ = begin_;
    }
  }

  void sample_round(std::size_t round, ScenarioResult& result) {
    if (!enabled_) return;
    obs::MetricsSnapshot now = obs::Registry::snapshot();
    result.obs_series.push_back({round, now.delta_from(previous_)});
    previous_ = std::move(now);
  }

  // Whole-run totals; call after the store's drain barrier so background
  // encode work between the last round sample and quiescence is included.
  void finish(ScenarioResult& result) {
    if (!enabled_) return;
    result.obs_enabled = true;
    result.obs_totals = obs::Registry::snapshot().delta_from(begin_);
  }

 private:
  bool enabled_;
  obs::MetricsSnapshot begin_;
  obs::MetricsSnapshot previous_;
};

// Attribution-drift check (run after perf and obs totals are final): the
// context-local pool.prepare busy time and summary.perf's phase busy time
// measure the same work from two sides — the pool's task clock and the
// simulator's per-phase timers. If tasks leaked into another run's context
// (or a defunct one), the two diverge. Warn, never abort: both sides are
// wall-clock measurements with legitimate scheduling noise, so the
// tolerance is deliberately loose.
void warn_on_obs_perf_skew(const ScenarioResult& result) {
  if (!result.obs_enabled || result.prepare_threads <= 1) return;
  const double busy_s =
      static_cast<double>(result.obs_totals.counter("pool.prepare.busy_nanos")) * 1e-9;
  const double idle_s =
      static_cast<double>(result.obs_totals.counter("pool.prepare.idle_nanos")) * 1e-9;
  const double phase_busy_s =
      result.perf.tipsel_seconds + result.perf.train_seconds + result.perf.eval_seconds;
  if (busy_s <= 0.0 || phase_busy_s <= 0.0) return;  // pool unused or no samples
  const double tolerance = std::max(0.5, 0.35 * phase_busy_s);
  if (std::abs(busy_s - phase_busy_s) > tolerance) {
    SPECDAG_LOG(Warn) << "obs: pool.prepare busy time (" << busy_s << "s busy, " << idle_s
                      << "s idle) does not reconcile with summary.perf phase busy time ("
                      << phase_busy_s << "s, utilization "
                      << result.perf.utilization(result.prepare_threads)
                      << ") — per-run obs attribution may be skewed";
  }
}

double tail_mean_accuracy(const std::vector<ScenarioPoint>& series) {
  if (series.empty()) return 0.0;
  const std::size_t tail = std::max<std::size_t>(1, series.size() / 10);
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = series.size() - tail; i < series.size(); ++i) {
    sum += series[i].mean_accuracy;
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

std::vector<std::size_t> cluster_sizes(const data::FederatedDataset& dataset) {
  std::map<int, std::size_t> sizes;
  for (const auto& client : dataset.clients) {
    if (client.true_cluster >= 0) ++sizes[client.true_cluster];
  }
  std::vector<std::size_t> result;
  for (const auto& [cluster, size] : sizes) result.push_back(size);
  return result;
}

// Louvain community metrics for one series point (Figure 5 curves).
void fill_community_metrics(const ScenarioSpec& spec, const data::FederatedDataset& dataset,
                            const dag::Dag& dag, std::size_t unit, ScenarioPoint& point) {
  const std::size_t every = spec.community_metrics_every;
  if (every == 0 || point.round % every != 0) return;
  const metrics::ClientGraph graph = metrics::build_client_graph(dag, dataset.clients.size());
  Rng rng = Rng(spec.seed).fork(0x10CA0000ULL + unit);
  const metrics::LouvainResult louvain = metrics::louvain(graph, rng);
  std::vector<int> true_clusters;
  for (const auto& client : dataset.clients) true_clusters.push_back(client.true_cluster);
  point.has_community_metrics = true;
  point.modularity = louvain.modularity;
  point.communities = louvain.num_communities;
  point.misclassification =
      metrics::misclassification_fraction(louvain.partition, true_clusters);
}

// Shared final-metrics computation over the (finished) DAG network.
void finalize_result(const ScenarioSpec& spec, const data::FederatedDataset& dataset,
                     const nn::ModelFactory& factory, core::SpecializingDag& net,
                     AttackController& attacks, const RunOptions& options,
                     ScenarioResult& result) {
  std::vector<int> true_clusters;
  for (const auto& client : dataset.clients) true_clusters.push_back(client.true_cluster);

  result.clients = dataset.clients.size();
  result.dag_size = net.dag().size();
  result.final_accuracy = tail_mean_accuracy(result.series);
  result.pureness = metrics::approval_pureness(net.dag(), true_clusters).pureness;
  const std::vector<std::size_t> sizes = cluster_sizes(dataset);
  result.base_pureness = sizes.empty() ? 0.0 : metrics::base_pureness(sizes);

  const metrics::ClientGraph graph = metrics::build_client_graph(net.dag(), dataset.clients.size());
  Rng louvain_rng = Rng(spec.seed).fork(0x10CA);
  const metrics::LouvainResult louvain = metrics::louvain(graph, louvain_rng);
  result.modularity = louvain.modularity;
  result.communities = louvain.num_communities;

  result.attacker_transactions = attacks.total_published();
  if (spec.attacks.random_weights.enabled()) {
    result.junk_reference_fraction =
        attacks.junk_reference_fraction(net, dataset.clients.size());
  }
  if (spec.attacks.label_flip.enabled()) {
    // Figure 14: how the (still-)poisoned clients distribute over the
    // Louvain-inferred communities. Empty when the attack was reverted.
    std::map<int, std::pair<std::size_t, std::size_t>> per_community;
    bool any_poisoned = false;
    for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
      auto& [benign, poisoned] = per_community[louvain.partition[i]];
      if (dataset.clients[i].poisoned) {
        ++poisoned;
        any_poisoned = true;
      } else {
        ++benign;
      }
    }
    if (any_poisoned) {
      for (const auto& [community, counts] : per_community) {
        result.poison_communities.push_back(counts);
      }
    }
  }

  const metrics::DagWeightSummary weights = metrics::dag_weight_summary(net.dag());
  result.mean_cumulative_weight = weights.mean_cumulative_weight;
  result.tips = weights.tips;

  if (spec.evaluate_consensus) {
    nn::Sequential replica = factory();
    double sum = 0.0;
    for (std::size_t i = 0; i < dataset.clients.size(); ++i) {
      const nn::WeightVector consensus = net.consensus_weights(static_cast<int>(i));
      sum += fl::evaluate_weights_on_test(replica, consensus, dataset.clients[i]).accuracy;
    }
    result.consensus_accuracy = sum / static_cast<double>(dataset.clients.size());
  }

  result.store_stats = net.dag().store().stats();
  result.eval_cache_stats = net.eval_cache()->stats();

  if (!options.export_dot.empty()) {
    dag::DotOptions dot;
    dot.client_clusters = true_clusters;
    dag::save_dot(options.export_dot, net.dag(), dot);
  }
  if (!options.export_jsonl.empty()) {
    dag::save_jsonl(options.export_jsonl, net.dag());
  }
}

ScenarioResult run_round_scenario(const ScenarioSpec& spec, sim::ExperimentPreset preset,
                                  const RunOptions& options, const RunControl& control) {
  ScenarioResult result;
  const std::size_t num_clients = preset.dataset.clients.size();

  sim::SimulatorConfig config;
  config.client = spec.client;
  config.rounds = spec.rounds;
  config.clients_per_round = std::min(spec.clients_per_round, num_clients);
  config.parallel_prepare = spec.parallel_prepare;
  config.threads = spec.threads;
  config.visibility_delay_rounds = spec.visibility_delay_rounds;
  config.seed = spec.seed;
  config.store = spec.store;
  // The runner only consumes run_round()'s return value; keeping every
  // round's trained payloads alive would defeat the payload store.
  config.keep_history = false;

  sim::DagSimulator simulator(std::move(preset.dataset), preset.factory, config);

  const std::vector<int> churned = churn_targets(spec, num_clients);
  AttackController attacks(spec.attacks, spec.seed, num_clients);
  std::optional<nn::Sequential> probe;
  ObsRoundSampler obs_sampler;

  std::size_t start_unit = 0;
  if (control.restore != nullptr) {
    result = control.restore->partial;
    replay_label_flips(spec, control.restore->completed_units, simulator, result);
    snapshot::restore_state(*control.restore, simulator, attacks);
    start_unit = control.restore->completed_units;
  }
  const std::size_t stop_unit = control.stop_unit == 0 ? spec.rounds : control.stop_unit;

  for (std::size_t round = start_unit; round < stop_unit; ++round) {
    apply_dynamics_at(spec, churned, round, simulator);
    apply_label_flip_at(spec, round, simulator, result);

    const sim::RoundRecord& record = simulator.run_round();
    ScenarioPoint point;
    point.round = round + 1;
    point.mean_accuracy = record.mean_trained_accuracy();
    point.mean_loss = record.mean_trained_loss();
    point.publishes = record.publish_count();
    point.active_clients = simulator.active_client_count();
    point.partitioned = simulator.partitioned();
    point.mean_walk_seconds = record.mean_walk_seconds();
    if (!record.results.empty()) {
      double evals = 0.0;
      for (const auto& r : record.results) {
        evals += static_cast<double>(r.walk_stats.evaluations);
        if (spec.record_client_accuracies) {
          point.client_accuracies.push_back(r.trained_eval.accuracy);
        }
      }
      point.mean_walk_evaluations = evals / static_cast<double>(record.results.size());
    }
    run_attack_step(round, attacks, simulator.network(), simulator.dataset(), probe,
                    preset.factory, point);
    point.dag_size = simulator.dag().size();
    fill_community_metrics(spec, simulator.dataset(), simulator.dag(), round + 1, point);
    result.series.push_back(point);
    result.store_series.push_back(sample_store_residency(round + 1, simulator.dag()));
    obs_sampler.sample_round(round + 1, result);
    maybe_write_checkpoint(spec, round + 1, result, simulator, attacks);
  }

  // Barrier: let queued async encodes settle so the final store stats (and
  // delta_ratio) match a synchronous run of the same spec.
  simulator.dag().store().drain();
  obs_sampler.finish(result);
  result.perf = simulator.perf();
  result.prepare_threads = simulator.prepare_threads();
  if (control.finalize) {
    finalize_result(spec, simulator.dataset(), preset.factory, simulator.network(), attacks,
                    options, result);
    // The store's own measurement covers every encode site (inline commits,
    // background workers, attacker-published payloads), so it supersedes the
    // commit-section sampling accumulated by the simulator.
    result.perf.encode_seconds = result.store_stats.encode_seconds;
    warn_on_obs_perf_skew(result);
  }
  return result;
}

ScenarioResult run_async_scenario(const ScenarioSpec& spec, sim::ExperimentPreset preset,
                                  const RunOptions& options, const RunControl& control) {
  ScenarioResult result;
  const std::size_t num_clients = preset.dataset.clients.size();

  sim::AsyncSimulatorConfig config;
  config.client = spec.client;
  config.broadcast_latency = spec.broadcast_latency;
  config.seed = spec.seed;
  config.threads = spec.parallel_prepare ? spec.threads : 1;
  config.store = spec.store;

  sim::AsyncDagSimulator simulator(std::move(preset.dataset), preset.factory, config,
                                   straggler_profiles(spec, num_clients));

  const std::vector<int> churned = churn_targets(spec, num_clients);
  AttackController attacks(spec.attacks, spec.seed, num_clients);
  std::optional<nn::Sequential> probe;
  ObsRoundSampler obs_sampler;

  std::size_t start_unit = 0;
  if (control.restore != nullptr) {
    result = control.restore->partial;
    replay_label_flips(spec, control.restore->completed_units, simulator, result);
    snapshot::restore_state(*control.restore, simulator, attacks);
    start_unit = control.restore->completed_units;
  }
  const std::size_t stop_unit = control.stop_unit == 0 ? spec.rounds : control.stop_unit;

  std::size_t previous_dag_size = simulator.dag().size();
  for (std::size_t unit = start_unit; unit < stop_unit; ++unit) {
    // Dynamics and attacks fire at virtual-time boundaries, mirroring the
    // round-based schedule ("round" == one unit of virtual time).
    apply_dynamics_at(spec, churned, unit, simulator);
    apply_label_flip_at(spec, unit, simulator, result);

    const std::vector<sim::AsyncStepRecord> records =
        simulator.run_until(static_cast<double>(unit + 1));
    ScenarioPoint point;
    point.round = unit + 1;
    if (!records.empty()) {
      double acc = 0.0, loss = 0.0, walk_seconds = 0.0, walk_evals = 0.0;
      for (const auto& record : records) {
        acc += record.result.trained_eval.accuracy;
        loss += record.result.trained_eval.loss;
        walk_seconds += record.result.walk_stats.seconds;
        walk_evals += static_cast<double>(record.result.walk_stats.evaluations);
        if (spec.record_client_accuracies) {
          point.client_accuracies.push_back(record.result.trained_eval.accuracy);
        }
      }
      point.mean_accuracy = acc / static_cast<double>(records.size());
      point.mean_loss = loss / static_cast<double>(records.size());
      point.mean_walk_seconds = walk_seconds / static_cast<double>(records.size());
      point.mean_walk_evaluations = walk_evals / static_cast<double>(records.size());
    }
    // Honest publications of this unit; the attacker's junk is counted
    // separately in attacker_transactions.
    point.publishes = simulator.dag().size() - previous_dag_size;
    run_attack_step(unit, attacks, simulator.network(), simulator.dataset(), probe,
                    preset.factory, point);
    point.dag_size = simulator.dag().size();
    previous_dag_size = point.dag_size;
    point.active_clients = simulator.active_client_count();
    point.partitioned = simulator.partitioned();
    fill_community_metrics(spec, simulator.dataset(), simulator.dag(), unit + 1, point);
    result.series.push_back(point);
    result.store_series.push_back(sample_store_residency(unit + 1, simulator.dag()));
    obs_sampler.sample_round(unit + 1, result);
    maybe_write_checkpoint(spec, unit + 1, result, simulator, attacks);
  }

  // Barrier: let queued async encodes settle so the final store stats (and
  // delta_ratio) match a synchronous run of the same spec.
  simulator.dag().store().drain();
  obs_sampler.finish(result);
  result.perf = simulator.perf();
  result.prepare_threads = simulator.prepare_threads();
  if (control.finalize) {
    finalize_result(spec, simulator.dataset(), preset.factory, simulator.network(), attacks,
                    options, result);
    // The store's own measurement covers every encode site (inline commits,
    // background workers, attacker-published payloads), so it supersedes the
    // commit-section sampling accumulated by the simulator.
    result.perf.encode_seconds = result.store_stats.encode_seconds;
    warn_on_obs_perf_skew(result);
  }
  return result;
}

// FedAvg/FedProx/gossip behind the same series/summary surface: identical
// dataset preset, rounds, and seed as a DAG run of the same spec, so one
// sweep axis flips the algorithm.
ScenarioResult run_baseline_scenario(const ScenarioSpec& spec, sim::ExperimentPreset preset,
                                     const RunOptions& options) {
  if (!options.export_dot.empty() || !options.export_jsonl.empty()) {
    throw std::invalid_argument("scenario: the " + to_string(spec.algorithm) +
                                " baseline builds no DAG to export");
  }
  ScenarioResult result;
  const std::size_t num_clients = preset.dataset.clients.size();
  const std::size_t per_round = std::min(spec.clients_per_round, num_clients);

  std::unique_ptr<BaselineBackend> backend;
  switch (spec.algorithm) {
    case AlgorithmKind::kFedAvg:
      backend = std::make_unique<FedAvgBackend>(std::move(preset.dataset), preset.factory,
                                                spec.client.train, /*proximal_mu=*/0.0,
                                                per_round, spec.seed);
      break;
    case AlgorithmKind::kFedProx:
      backend = std::make_unique<FedAvgBackend>(std::move(preset.dataset), preset.factory,
                                                spec.client.train, spec.proximal_mu, per_round,
                                                spec.seed);
      break;
    case AlgorithmKind::kGossip:
      backend = std::make_unique<GossipBackend>(std::move(preset.dataset), preset.factory,
                                                spec.client.train, per_round, spec.seed);
      break;
    case AlgorithmKind::kDag:
      throw std::logic_error("run_baseline_scenario: dag is not a baseline");
  }

  const LabelFlipAttackSpec& flip = spec.attacks.label_flip;
  for (std::size_t round = 0; round < spec.rounds; ++round) {
    apply_label_flip_at(spec, round, *backend, result);

    const std::vector<fl::EvalResult> evals = backend->run_round();
    ScenarioPoint point;
    point.round = round + 1;
    if (!evals.empty()) {
      double acc = 0.0, loss = 0.0;
      for (const auto& eval : evals) {
        acc += eval.accuracy;
        loss += eval.loss;
        if (spec.record_client_accuracies) point.client_accuracies.push_back(eval.accuracy);
      }
      point.mean_accuracy = acc / static_cast<double>(evals.size());
      point.mean_loss = loss / static_cast<double>(evals.size());
    }
    point.active_clients = num_clients;
    if (spec.attacks.measure_at(round)) {
      point.has_attack_metrics = true;
      point.flip_rate = backend->mean_benign_flip_rate(flip.class_a, flip.class_b);
    }
    result.series.push_back(std::move(point));
  }

  result.clients = num_clients;
  result.final_accuracy = tail_mean_accuracy(result.series);
  if (spec.evaluate_consensus) {
    result.consensus_accuracy = backend->mean_inference_accuracy();
  }
  return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) { return run_scenario(spec, RunOptions{}); }

namespace {

// Scopes an obs context to one run: the session OWNS a fresh obs::Context
// (metrics flag from the spec, its own trace buffer) and installs it as the
// calling thread's active context for the whole run. ThreadPool propagates
// it into posted tasks, so pool workers attribute to this run too — which
// is what lets a parallel sweep run many sessions concurrently, each with
// correct summary.obs and its own trace file.
//
// The destructor runs after the dispatched scenario returned — by then the
// simulators (and their worker pools) are destroyed, so no span is left
// open in the trace file — and then *closes* the context: any straggler
// task still recording into it is counted and warned about (see
// Context::note_late_record) instead of silently skewing reported numbers.
class ObsSession {
 public:
  explicit ObsSession(const ObsSpec& spec)
      : context_(spec.metrics), scope_(&context_), tracing_(!spec.trace.empty()) {
    if (tracing_) context_.start_trace(spec.trace);
  }

  ~ObsSession() {
    if (tracing_) context_.stop_trace();
    context_.close();
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  obs::Context& context() { return context_; }

 private:
  obs::Context context_;
  obs::ContextScope scope_;
  bool tracing_;
};

// Shared body of run_scenario / resume_scenario / replay_scenario: the only
// difference between a fresh run and a resumed one is the RunControl carrying
// the restored state and loop bounds.
ScenarioResult run_scenario_impl(const ScenarioSpec& spec, const RunOptions& options,
                                 const RunControl& control) {
  spec.validate();
  Timer timer;
  ObsSession obs_session(spec.obs);
  sim::ExperimentPreset preset = build_preset(spec);

  ScenarioResult result;
  if (spec.algorithm != AlgorithmKind::kDag) {
    result = run_baseline_scenario(spec, std::move(preset), options);
  } else {
    result = spec.simulator == SimKind::kRound
                 ? run_round_scenario(spec, std::move(preset), options, control)
                 : run_async_scenario(spec, std::move(preset), options, control);
  }
  result.scenario = spec.name;
  result.seed = spec.seed;
  result.simulator = to_string(spec.simulator);
  result.algorithm = to_string(spec.algorithm);
  result.rounds = spec.rounds;
  result.attacked = spec.attacks.any();
  // Attack-phase means over the measured points (Figures 12/13 headline
  // numbers, independent of the backend). Probes taken after the label-flip
  // window healed stay in the series (recovery data) but are excluded here.
  const std::size_t flip_stop = spec.attacks.label_flip.stop_round;
  double flip_sum = 0.0, poison_sum = 0.0;
  std::size_t measured = 0, poison_measured = 0;
  for (const ScenarioPoint& point : result.series) {
    if (!point.has_attack_metrics) continue;
    if (flip_stop != 0 && point.round - 1 >= flip_stop) continue;
    flip_sum += point.flip_rate;
    ++measured;
    if (point.approved_poisoned >= 0.0) {
      poison_sum += point.approved_poisoned;
      ++poison_measured;
    }
  }
  if (measured > 0) result.mean_flip_rate = flip_sum / static_cast<double>(measured);
  if (poison_measured > 0) {
    result.mean_approved_poisoned = poison_sum / static_cast<double>(poison_measured);
  }
  result.wall_seconds = timer.elapsed_seconds();
  if (!spec.obs.metrics_out.empty()) {
    if (result.obs_enabled) {
      if (!obs::write_prometheus_file(spec.obs.metrics_out, result.obs_totals)) {
        SPECDAG_LOG(Warn) << "failed to write metrics file: " << spec.obs.metrics_out;
      }
    } else {
      SPECDAG_LOG(Warn) << "obs.metrics_out requested but no metrics were collected "
                           "(metrics disabled, compiled out, or baseline algorithm); "
                           "skipping " << spec.obs.metrics_out;
    }
  }
  return result;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOptions& options) {
  return run_scenario_impl(spec, options, RunControl{});
}

ScenarioResult resume_scenario(const std::string& checkpoint_path,
                               const ResumeOverrides& overrides) {
  return resume_scenario(checkpoint_path, RunOptions{}, overrides);
}

ScenarioResult resume_scenario(const std::string& checkpoint_path, const RunOptions& options,
                               const ResumeOverrides& overrides) {
  snapshot::LoadedCheckpoint loaded = snapshot::load_checkpoint(checkpoint_path);
  ScenarioSpec spec = loaded.spec;
  if (overrides.has_threads) spec.threads = overrides.threads;
  if (loaded.completed_units > spec.rounds) {
    throw snapshot::SnapshotError("snapshot: checkpoint covers " +
                                  std::to_string(loaded.completed_units) +
                                  " units but the spec runs only " +
                                  std::to_string(spec.rounds));
  }
  RunControl control;
  control.restore = &loaded;
  return run_scenario_impl(spec, options, control);
}

ScenarioResult replay_scenario(const std::string& checkpoint_path, std::size_t first_round,
                               std::size_t last_round, const ResumeOverrides& overrides) {
  snapshot::LoadedCheckpoint loaded = snapshot::load_checkpoint(checkpoint_path);
  ScenarioSpec spec = loaded.spec;
  if (overrides.has_threads) spec.threads = overrides.threads;
  // A replay is a read-only re-execution: never write new checkpoints or obs
  // files from it.
  spec.checkpoint = CheckpointSpec{};
  spec.obs.trace.clear();
  spec.obs.metrics_out.clear();
  if (first_round == 0 || first_round > last_round) {
    throw std::invalid_argument("replay: rounds window must be 1-based and non-empty");
  }
  if (last_round > spec.rounds) {
    throw std::invalid_argument("replay: window ends at round " + std::to_string(last_round) +
                                " but the scenario has only " + std::to_string(spec.rounds) +
                                " rounds");
  }
  if (first_round <= loaded.completed_units) {
    throw std::invalid_argument("replay: checkpoint already covers round " +
                                std::to_string(first_round) +
                                "; pick an earlier checkpoint to replay it");
  }
  RunControl control;
  control.restore = &loaded;
  control.stop_unit = last_round;
  control.finalize = false;
  ScenarioResult result = run_scenario_impl(spec, RunOptions{}, control);
  // Keep only the requested window (the checkpoint's partial series covers
  // everything before first_round).
  const auto outside = [&](std::size_t round) {
    return round < first_round || round > last_round;
  };
  std::erase_if(result.series, [&](const ScenarioPoint& p) { return outside(p.round); });
  std::erase_if(result.store_series,
                [&](const StoreResidencyPoint& p) { return outside(p.round); });
  return result;
}

// Compact JSON for one histogram snapshot: count/sum/mean plus bucket-upper-
// bound quantiles (exact bucket counts stay in memory only — the exponential
// bounds make p50/p99/max readable without shipping 65 buckets per metric).
Json histogram_to_json(const obs::HistogramSnapshot& snapshot) {
  Json json = Json::make_object();
  json.set("count", snapshot.count);
  json.set("sum", snapshot.sum);
  json.set("mean", snapshot.mean());
  json.set("p50", snapshot.quantile_upper_bound(0.5));
  json.set("p99", snapshot.quantile_upper_bound(0.99));
  json.set("max", snapshot.max_upper_bound());
  return json;
}

Json metrics_snapshot_to_json(const obs::MetricsSnapshot& snapshot) {
  Json json = Json::make_object();
  Json counters = Json::make_object();
  for (const auto& [name, value] : snapshot.counters) counters.set(name, value);
  json.set("counters", std::move(counters));
  Json histograms = Json::make_object();
  for (const auto& [name, hist] : snapshot.histograms) {
    histograms.set(name, histogram_to_json(hist));
  }
  json.set("histograms", std::move(histograms));
  return json;
}

namespace {

// One series point as a JSON object (shared by the summary's series array
// and the JSONL stream).
Json point_to_json(const ScenarioPoint& point) {
  Json row = Json::make_object();
  row.set("round", point.round);
  row.set("mean_accuracy", point.mean_accuracy);
  row.set("mean_loss", point.mean_loss);
  row.set("publishes", point.publishes);
  row.set("dag_size", point.dag_size);
  row.set("active_clients", point.active_clients);
  if (point.partitioned) row.set("partitioned", true);
  if (point.mean_walk_seconds > 0.0) {
    row.set("mean_walk_seconds", point.mean_walk_seconds);
    row.set("mean_walk_evaluations", point.mean_walk_evaluations);
  }
  if (point.attacker_transactions > 0) {
    row.set("attacker_transactions", point.attacker_transactions);
  }
  if (point.has_attack_metrics) {
    row.set("flip_rate", point.flip_rate);
    if (point.approved_poisoned >= 0.0) row.set("approved_poisoned", point.approved_poisoned);
  }
  if (!point.client_accuracies.empty()) {
    Json accuracies = Json::make_array();
    for (double accuracy : point.client_accuracies) {
      accuracies.as_array().push_back(Json(accuracy));
    }
    row.set("client_accuracies", std::move(accuracies));
  }
  if (point.has_community_metrics) {
    row.set("modularity", point.modularity);
    row.set("communities", point.communities);
    row.set("misclassification", point.misclassification);
  }
  return row;
}

}  // namespace

Json result_to_json(const ScenarioResult& result, bool include_series) {
  Json json = Json::make_object();
  json.set("scenario", result.scenario);
  json.set("seed", result.seed);
  json.set("simulator", result.simulator);
  json.set("algorithm", result.algorithm);
  json.set("rounds", result.rounds);
  json.set("clients", result.clients);

  Json summary = Json::make_object();
  summary.set("final_accuracy", result.final_accuracy);
  if (result.consensus_accuracy >= 0.0) {
    summary.set("consensus_accuracy", result.consensus_accuracy);
  }
  summary.set("wall_seconds", result.wall_seconds);

  // DAG-structure metrics only exist for the dag algorithm (every DAG run
  // holds at least the genesis transaction).
  if (result.dag_size > 0) {
    summary.set("dag_size", result.dag_size);
    summary.set("pureness", result.pureness);
    summary.set("base_pureness", result.base_pureness);
    summary.set("modularity", result.modularity);
    summary.set("communities", result.communities);
    summary.set("mean_cumulative_weight", result.mean_cumulative_weight);
    summary.set("tips", result.tips);

    Json store = Json::make_object();
    store.set("payloads", result.store_stats.payloads);
    store.set("anchors", result.store_stats.anchors);
    store.set("deltas", result.store_stats.deltas);
    store.set("dedup_hits", result.store_stats.dedup_hits);
    store.set("resident_payload_bytes", result.store_stats.resident_payload_bytes);
    store.set("full_payload_bytes", result.store_stats.full_payload_bytes);
    store.set("delta_ratio", result.store_stats.delta_ratio());
    store.set("lru_bytes", result.store_stats.lru_bytes);
    store.set("lru_entries", result.store_stats.lru_entries);
    store.set("lru_hit_rate", result.store_stats.lru_hit_rate());
    store.set("decoded_payloads", result.store_stats.decoded_payloads);
    // Async encode pipeline: pending_encodes is 0 after the runner's drain
    // barrier; the peak and the per-point residency array show how deep the
    // queue ran and how the raw-vs-delta split evolved during the run.
    store.set("pending_encodes", result.store_stats.pending_encodes);
    store.set("peak_pending_encodes", result.store_stats.peak_pending_encodes);
    store.set("async_encoded", result.store_stats.async_encoded);
    if (!result.store_series.empty()) {
      Json residency = Json::make_array();
      for (const StoreResidencyPoint& sample : result.store_series) {
        Json row = Json::make_object();
        row.set("round", sample.round);
        row.set("pending_encodes", sample.pending_encodes);
        row.set("raw_payloads", sample.raw_payloads);
        row.set("delta_payloads", sample.delta_payloads);
        row.set("resident_bytes", sample.resident_bytes);
        residency.as_array().push_back(std::move(row));
      }
      store.set("residency", std::move(residency));
    }
    summary.set("store", std::move(store));

    Json eval_cache = Json::make_object();
    eval_cache.set("hits", result.eval_cache_stats.hits);
    eval_cache.set("misses", result.eval_cache_stats.misses);
    eval_cache.set("entries", result.eval_cache_stats.entries);
    eval_cache.set("hit_rate", result.eval_cache_stats.hit_rate());
    eval_cache.set("invalidations", result.eval_cache_stats.invalidations);
    summary.set("eval_cache", std::move(eval_cache));

    // Per-phase timing breakdown of the simulation (see sim/perf.hpp):
    // tipsel/train/eval are aggregate busy seconds over the prepared
    // clients, commit is serialized wall time.
    if (result.perf.prepares > 0) {
      Json perf = Json::make_object();
      perf.set("tipsel_seconds", result.perf.tipsel_seconds);
      perf.set("train_seconds", result.perf.train_seconds);
      perf.set("eval_seconds", result.perf.eval_seconds);
      perf.set("commit_seconds", result.perf.commit_seconds);
      perf.set("encode_seconds", result.perf.encode_seconds);
      perf.set("total_seconds", result.perf.total_seconds);
      perf.set("prepares", result.perf.prepares);
      perf.set("commits", result.perf.commits);
      perf.set("threads", result.prepare_threads);
      // Busy-time sum over (wall x threads): normalizes the busy/wall bucket
      // mix into one comparable number across thread counts.
      perf.set("utilization",
               result.perf.utilization(std::max<std::size_t>(1, result.prepare_threads)));
      summary.set("perf", std::move(perf));
    }

    // Obs metrics rollup (src/obs): whole-run registry deltas plus the
    // per-round samples. Timing-dependent, so it lives here in the summary
    // (like store.residency), never in the per-point series/JSONL.
    if (result.obs_enabled) {
      Json obs = metrics_snapshot_to_json(result.obs_totals);
      if (!result.obs_series.empty()) {
        Json rounds = Json::make_array();
        for (const ObsRoundPoint& sample : result.obs_series) {
          Json row = Json::make_object();
          row.set("round", sample.round);
          Json counters = Json::make_object();
          for (const auto& [name, value] : sample.delta.counters) {
            if (value > 0) counters.set(name, value);
          }
          row.set("counters", std::move(counters));
          rounds.as_array().push_back(std::move(row));
        }
        obs.set("rounds", std::move(rounds));
      }
      summary.set("obs", std::move(obs));
    }
  }

  if (result.attacked) {
    Json attack = Json::make_object();
    attack.set("attacker_transactions", result.attacker_transactions);
    if (result.junk_reference_fraction >= 0.0) {
      attack.set("junk_reference_fraction", result.junk_reference_fraction);
    }
    attack.set("poisoned_clients", result.poisoned_clients);
    if (result.mean_flip_rate >= 0.0) attack.set("mean_flip_rate", result.mean_flip_rate);
    if (result.mean_approved_poisoned >= 0.0) {
      attack.set("mean_approved_poisoned", result.mean_approved_poisoned);
    }
    if (!result.poison_communities.empty()) {
      Json communities = Json::make_array();
      for (const auto& [benign, poisoned] : result.poison_communities) {
        Json row = Json::make_object();
        row.set("benign", benign);
        row.set("poisoned", poisoned);
        communities.as_array().push_back(std::move(row));
      }
      attack.set("poison_communities", std::move(communities));
    }
    summary.set("attack", std::move(attack));
  }

  json.set("summary", std::move(summary));

  if (include_series) {
    Json series = Json::make_array();
    for (const ScenarioPoint& point : result.series) {
      series.as_array().push_back(point_to_json(point));
    }
    json.set("series", std::move(series));
  }
  return json;
}

void write_series_csv(const ScenarioResult& result, const std::string& path) {
  CsvWriter csv(path, {"round", "mean_accuracy", "mean_loss", "publishes", "dag_size",
                       "active_clients", "partitioned", "attacker_transactions", "flip_rate",
                       "approved_poisoned"});
  for (const ScenarioPoint& point : result.series) {
    csv.row({std::to_string(point.round), std::to_string(point.mean_accuracy),
             std::to_string(point.mean_loss), std::to_string(point.publishes),
             std::to_string(point.dag_size), std::to_string(point.active_clients),
             point.partitioned ? "1" : "0", std::to_string(point.attacker_transactions),
             point.has_attack_metrics ? std::to_string(point.flip_rate) : "",
             point.has_attack_metrics && point.approved_poisoned >= 0.0
                 ? std::to_string(point.approved_poisoned)
                 : ""});
  }
}

void write_series_jsonl(const ScenarioResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_series_jsonl: cannot open " + path);
  write_series_jsonl(result, out);
}

void write_series_jsonl(const ScenarioResult& result, std::ostream& out) {
  for (const ScenarioPoint& point : result.series) {
    Json row = point_to_json(point);
    row.set("scenario", result.scenario);
    row.set("algorithm", result.algorithm);
    row.set("seed", result.seed);
    out << row.dump() << "\n";
  }
}

}  // namespace specdag::scenario
