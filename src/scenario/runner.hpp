// Executes a ScenarioSpec: builds the dataset/model from the preset, runs
// the requested simulator (round-based or event-driven), applies the
// dynamics schedule (churn / stragglers / partition) at the configured
// times, and returns a structured result — a per-round series plus final
// DAG/learning metrics. Results serialize to JSON for the sweep executor's
// JSONL sink and to CSV for plotting.
#pragma once

#include <iosfwd>

#include "obs/metrics.hpp"
#include "scenario/spec.hpp"
#include "sim/perf.hpp"
#include "store/eval_cache.hpp"

namespace specdag::scenario {

// One series point: a round (round simulator) or one unit of virtual time
// (async simulator).
struct ScenarioPoint {
  std::size_t round = 0;
  double mean_accuracy = 0.0;   // trained-model accuracy of the active clients
  double mean_loss = 0.0;
  std::size_t publishes = 0;    // transactions that entered the DAG
  std::size_t dag_size = 0;
  std::size_t active_clients = 0;
  bool partitioned = false;
  // Walk instrumentation (DAG algorithm only; the Figure 15 cost data).
  double mean_walk_seconds = 0.0;
  double mean_walk_evaluations = 0.0;
  // Junk transactions the random-weights attacker published this unit.
  std::size_t attacker_transactions = 0;
  // Label-flip probes, filled every spec.attacks.metrics_every-th unit from
  // the attack start (Figures 12/13). approved_poisoned is -1 for the
  // baseline backends (no DAG to count approvals in).
  bool has_attack_metrics = false;
  double flip_rate = 0.0;
  double approved_poisoned = -1.0;
  // Per-active-client accuracies (spec.record_client_accuracies — Figure 9
  // distribution data).
  std::vector<double> client_accuracies;
  // Filled on every spec.community_metrics_every-th point (Figure 5 curves).
  bool has_community_metrics = false;
  double modularity = 0.0;
  std::size_t communities = 0;
  double misclassification = 0.0;  // Louvain partition vs ground-truth clusters
};

// Payload-store residency sampled at one series point: how much of the
// store still sits raw (anchors + payloads awaiting their async encode)
// versus delta-encoded, and how deep the encode queue is. With synchronous
// encoding pending_encodes is always 0. Reported under summary.store as
// `residency` — deliberately kept out of the per-point series/JSONL, which
// stays bit-identical between sync and async encoding.
struct StoreResidencyPoint {
  std::size_t round = 0;
  std::size_t pending_encodes = 0;
  std::size_t raw_payloads = 0;    // anchors + pending entries
  std::size_t delta_payloads = 0;
  std::size_t resident_bytes = 0;
};

// Per-round delta of the obs metrics registry (walk counts, cache hit/miss,
// store interns, pool busy time — see src/obs/metrics.hpp). Like store
// residency, these are timing-dependent and live under summary.obs.rounds,
// never in the per-point series/JSONL (which must stay bit-identical with
// obs on or off at any thread count).
struct ObsRoundPoint {
  std::size_t round = 0;
  obs::MetricsSnapshot delta;
};

struct ScenarioResult {
  std::string scenario;
  std::uint64_t seed = 0;
  std::string simulator;
  std::string algorithm;  // dag | fedavg | fedprox | gossip
  std::size_t rounds = 0;
  std::size_t clients = 0;

  // Final metrics.
  std::size_t dag_size = 0;
  double final_accuracy = 0.0;  // mean over the last 10% of rounds
  double pureness = 0.0;
  double base_pureness = 0.0;   // random-approval baseline (1/k for equal clusters)
  double modularity = 0.0;
  std::size_t communities = 0;
  double mean_cumulative_weight = 0.0;
  std::size_t tips = 0;
  double consensus_accuracy = -1.0;  // -1 unless spec.evaluate_consensus
  double wall_seconds = 0.0;

  // Attack outcome summary (meaningful only when spec.attacks.any()).
  bool attacked = false;
  std::size_t attacker_transactions = 0;   // total junk published
  double junk_reference_fraction = -1.0;   // clients whose consensus ref is junk
  std::size_t poisoned_clients = 0;
  // Means over the probes inside the label-flip window [start, stop) only;
  // post-heal probes remain in the series but are excluded here.
  double mean_flip_rate = -1.0;
  double mean_approved_poisoned = -1.0;
  // (benign, poisoned) client counts per Louvain community — the Figure 14
  // distribution. Filled when clients are still poisoned at the end.
  std::vector<std::pair<std::size_t, std::size_t>> poison_communities;

  // Model-store and evaluation-cache statistics of the run (delta encoding
  // effectiveness, materialization LRU, sharded cache hit rates). Sampled
  // after the runner's drain() barrier, so pending_encodes is 0 and
  // delta_ratio matches a synchronous run of the same spec.
  store::StoreStats store_stats;
  store::EvalCacheStats eval_cache_stats;
  // Raw-vs-delta residency and encode-queue depth over time (one sample per
  // series point; DAG algorithm only).
  std::vector<StoreResidencyPoint> store_series;

  // Per-phase timing breakdown (tipsel / train / eval / commit) and the
  // worker count the prepare phase ran with (DAG algorithm only; the
  // baselines have no walk/commit phases to break down).
  sim::PhaseTimings perf;
  std::size_t prepare_threads = 0;

  // Obs metrics attributed to this run: whole-run registry delta plus the
  // per-round samples (DAG algorithm only; empty when spec.obs.metrics is
  // off or obs is compiled out). Serialized as summary.obs.
  bool obs_enabled = false;
  obs::MetricsSnapshot obs_totals;
  std::vector<ObsRoundPoint> obs_series;

  std::vector<ScenarioPoint> series;
};

// Side outputs of a run (empty string = skip).
struct RunOptions {
  std::string export_dot;    // write the final DAG as Graphviz DOT
  std::string export_jsonl;  // write the final DAG as a JSONL transaction log
};

ScenarioResult run_scenario(const ScenarioSpec& spec);
ScenarioResult run_scenario(const ScenarioSpec& spec, const RunOptions& options);

// Safe overrides when resuming/replaying a checkpoint: only knobs that are
// bit-identical by construction (thread counts) may deviate from the spec
// embedded in the checkpoint — everything semantic comes from the file.
struct ResumeOverrides {
  bool has_threads = false;
  std::size_t threads = 0;
};

// Continues a run from a checkpoint written by the `checkpoint` spec block:
// rebuilds the simulator from the embedded spec, replays the pre-checkpoint
// label-flip schedule into the dataset, restores the saved state, and runs
// the remaining units. The returned result (series, JSONL, final accuracies,
// delta_ratio) is bit-identical to the uninterrupted run at any thread
// count. Checkpointing itself continues per the embedded spec, so a resumed
// run stays crash-safe.
ScenarioResult resume_scenario(const std::string& checkpoint_path,
                               const ResumeOverrides& overrides = {});
ScenarioResult resume_scenario(const std::string& checkpoint_path, const RunOptions& options,
                               const ResumeOverrides& overrides);

// Deterministically re-executes the window [first_round, last_round] (1-based
// series rounds, inclusive) from a checkpoint covering rounds up to
// first_round - 1 or earlier. Returns only the window's series points —
// bit-identical to the same rounds of the original run. Computes no final
// metrics and writes no checkpoints or obs files.
ScenarioResult replay_scenario(const std::string& checkpoint_path, std::size_t first_round,
                               std::size_t last_round, const ResumeOverrides& overrides = {});

// {"scenario": ..., "summary": {...}} plus a "series" array when requested.
Json result_to_json(const ScenarioResult& result, bool include_series = false);

// Obs snapshot serialization, shared by summary.obs and the sweep
// aggregator's sweep.obs footer: {"counters": {...}, "histograms":
// {name: {count,sum,mean,p50,p99,max}, ...}}.
Json metrics_snapshot_to_json(const obs::MetricsSnapshot& snapshot);
Json histogram_to_json(const obs::HistogramSnapshot& snapshot);

// Writes the series as CSV (round, mean_accuracy, mean_loss, publishes,
// dag_size, active_clients, partitioned, attacker_transactions, flip_rate,
// approved_poisoned).
void write_series_csv(const ScenarioResult& result, const std::string& path);

// Streams the series as JSONL: one self-contained line per point carrying
// the scenario/algorithm/seed context plus every per-round metric (incl.
// the attack fields) — the format the CI smoke runs assert and archive.
// The stream is bit-identical across store.async_encode / thread settings
// (volatile store sampling lives in summary.store, not here).
void write_series_jsonl(const ScenarioResult& result, const std::string& path);
void write_series_jsonl(const ScenarioResult& result, std::ostream& out);

}  // namespace specdag::scenario
