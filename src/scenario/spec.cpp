#include "scenario/spec.hpp"

#include <stdexcept>

namespace specdag::scenario {
namespace {

void check_known_keys(const Json& json, std::initializer_list<const char*> known,
                      const char* context) {
  for (const auto& [key, value] : json.as_object()) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      throw JsonError(std::string("unknown key \"") + key + "\" in " + context);
    }
  }
}

fl::SelectorKind selector_from_string(const std::string& name) {
  if (name == "accuracy") return fl::SelectorKind::kAccuracy;
  if (name == "random") return fl::SelectorKind::kRandom;
  if (name == "weighted") return fl::SelectorKind::kWeighted;
  throw JsonError("unknown selector \"" + name + "\"");
}

std::string selector_to_string(fl::SelectorKind kind) {
  switch (kind) {
    case fl::SelectorKind::kAccuracy: return "accuracy";
    case fl::SelectorKind::kRandom: return "random";
    case fl::SelectorKind::kWeighted: return "weighted";
  }
  throw JsonError("invalid selector kind");
}

tipsel::Normalization normalization_from_string(const std::string& name) {
  if (name == "standard") return tipsel::Normalization::kStandard;
  if (name == "dynamic") return tipsel::Normalization::kDynamic;
  throw JsonError("unknown normalization \"" + name + "\"");
}

std::string normalization_to_string(tipsel::Normalization normalization) {
  return normalization == tipsel::Normalization::kStandard ? "standard" : "dynamic";
}

tipsel::WalkStart walk_start_from_string(const std::string& name) {
  if (name == "genesis") return tipsel::WalkStart::kGenesis;
  if (name == "depth") return tipsel::WalkStart::kDepthSampled;
  throw JsonError("unknown walk_start \"" + name + "\"");
}

std::string walk_start_to_string(tipsel::WalkStart start) {
  return start == tipsel::WalkStart::kGenesis ? "genesis" : "depth";
}

fl::TrainConfig train_from_json(const Json& json) {
  check_known_keys(json,
                   {"local_epochs", "local_batches", "batch_size", "learning_rate",
                    "freeze_prefix_params", "batch"},
                   "client.train");
  fl::TrainConfig train;
  train.local_epochs = static_cast<std::size_t>(json.uint_or("local_epochs", train.local_epochs));
  train.local_batches =
      static_cast<std::size_t>(json.uint_or("local_batches", train.local_batches));
  train.batch_size = static_cast<std::size_t>(json.uint_or("batch_size", train.batch_size));
  train.learning_rate = json.number_or("learning_rate", train.learning_rate);
  train.freeze_prefix_params =
      static_cast<std::size_t>(json.uint_or("freeze_prefix_params", train.freeze_prefix_params));
  train.batch = static_cast<std::size_t>(json.uint_or("batch", train.batch));
  return train;
}

Json train_to_json(const fl::TrainConfig& train) {
  Json json = Json::make_object();
  json.set("local_epochs", train.local_epochs);
  json.set("local_batches", train.local_batches);
  json.set("batch_size", train.batch_size);
  json.set("learning_rate", train.learning_rate);
  if (train.freeze_prefix_params > 0) json.set("freeze_prefix_params", train.freeze_prefix_params);
  if (train.batch != fl::TrainConfig{}.batch) json.set("batch", train.batch);
  return json;
}

fl::DagClientConfig client_from_json(const Json& json, fl::DagClientConfig client) {
  check_known_keys(json,
                   {"alpha", "selector", "normalization", "num_parents", "walk_start",
                    "start_depth_min", "start_depth_max", "publish_gate", "publish_if_equal",
                    "reference_walks", "persistent_accuracy_cache", "train"},
                   "client");
  client.alpha = json.number_or("alpha", client.alpha);
  client.selector = selector_from_string(json.string_or("selector", selector_to_string(client.selector)));
  client.normalization = normalization_from_string(
      json.string_or("normalization", normalization_to_string(client.normalization)));
  client.num_parents = static_cast<std::size_t>(json.uint_or("num_parents", client.num_parents));
  client.walk_start =
      walk_start_from_string(json.string_or("walk_start", walk_start_to_string(client.walk_start)));
  client.start_depth_min =
      static_cast<std::size_t>(json.uint_or("start_depth_min", client.start_depth_min));
  client.start_depth_max =
      static_cast<std::size_t>(json.uint_or("start_depth_max", client.start_depth_max));
  client.publish_gate = json.bool_or("publish_gate", client.publish_gate);
  client.publish_if_equal = json.bool_or("publish_if_equal", client.publish_if_equal);
  client.reference_walks =
      static_cast<std::size_t>(json.uint_or("reference_walks", client.reference_walks));
  client.persistent_accuracy_cache =
      json.bool_or("persistent_accuracy_cache", client.persistent_accuracy_cache);
  if (const Json* train = json.find("train")) client.train = train_from_json(*train);
  return client;
}

Json client_to_json(const fl::DagClientConfig& client) {
  Json json = Json::make_object();
  json.set("alpha", client.alpha);
  json.set("selector", selector_to_string(client.selector));
  json.set("normalization", normalization_to_string(client.normalization));
  json.set("num_parents", client.num_parents);
  json.set("walk_start", walk_start_to_string(client.walk_start));
  json.set("start_depth_min", client.start_depth_min);
  json.set("start_depth_max", client.start_depth_max);
  json.set("publish_gate", client.publish_gate);
  json.set("publish_if_equal", client.publish_if_equal);
  json.set("reference_walks", client.reference_walks);
  json.set("persistent_accuracy_cache", client.persistent_accuracy_cache);
  json.set("train", train_to_json(client.train));
  return json;
}

DynamicsSpec dynamics_from_json(const Json& json) {
  check_known_keys(json, {"churn", "stragglers", "partition"}, "dynamics");
  DynamicsSpec dynamics;
  if (const Json* churn = json.find("churn")) {
    check_known_keys(*churn, {"fraction", "leave_round", "rejoin_round"}, "dynamics.churn");
    dynamics.churn.fraction = churn->number_or("fraction", 0.0);
    dynamics.churn.leave_round = static_cast<std::size_t>(churn->uint_or("leave_round", 0));
    dynamics.churn.rejoin_round = static_cast<std::size_t>(churn->uint_or("rejoin_round", 0));
  }
  if (const Json* stragglers = json.find("stragglers")) {
    check_known_keys(*stragglers, {"fraction", "slowdown", "pareto_shape"},
                     "dynamics.stragglers");
    dynamics.stragglers.fraction = stragglers->number_or("fraction", 0.0);
    dynamics.stragglers.slowdown = stragglers->number_or("slowdown", 4.0);
    dynamics.stragglers.pareto_shape = stragglers->number_or("pareto_shape", 1.5);
  }
  if (const Json* partition = json.find("partition")) {
    check_known_keys(*partition, {"num_groups", "by_cluster", "start_round", "heal_round"},
                     "dynamics.partition");
    dynamics.partition.num_groups = static_cast<std::size_t>(partition->uint_or("num_groups", 0));
    dynamics.partition.by_cluster = partition->bool_or("by_cluster", false);
    dynamics.partition.start_round = static_cast<std::size_t>(partition->uint_or("start_round", 0));
    dynamics.partition.heal_round = static_cast<std::size_t>(partition->uint_or("heal_round", 0));
  }
  return dynamics;
}

AttackSpec attacks_from_json(const Json& json) {
  check_known_keys(json, {"metrics_every", "random_weights", "label_flip"}, "attacks");
  AttackSpec attacks;
  attacks.metrics_every =
      static_cast<std::size_t>(json.uint_or("metrics_every", attacks.metrics_every));
  if (const Json* junk = json.find("random_weights")) {
    check_known_keys(*junk,
                     {"rate", "weight_stddev", "num_parents", "start_round", "stop_round"},
                     "attacks.random_weights");
    RandomWeightsAttackSpec& spec = attacks.random_weights;
    spec.rate = junk->number_or("rate", spec.rate);
    spec.weight_stddev = junk->number_or("weight_stddev", spec.weight_stddev);
    spec.num_parents = static_cast<std::size_t>(junk->uint_or("num_parents", spec.num_parents));
    spec.start_round = static_cast<std::size_t>(junk->uint_or("start_round", spec.start_round));
    spec.stop_round = static_cast<std::size_t>(junk->uint_or("stop_round", spec.stop_round));
  }
  if (const Json* flip = json.find("label_flip")) {
    check_known_keys(*flip,
                     {"fraction", "class_a", "class_b", "start_round", "stop_round"},
                     "attacks.label_flip");
    LabelFlipAttackSpec& spec = attacks.label_flip;
    spec.fraction = flip->number_or("fraction", spec.fraction);
    spec.class_a = static_cast<int>(flip->uint_or("class_a", static_cast<std::uint64_t>(spec.class_a)));
    spec.class_b = static_cast<int>(flip->uint_or("class_b", static_cast<std::uint64_t>(spec.class_b)));
    spec.start_round = static_cast<std::size_t>(flip->uint_or("start_round", spec.start_round));
    spec.stop_round = static_cast<std::size_t>(flip->uint_or("stop_round", spec.stop_round));
  }
  return attacks;
}

Json attacks_to_json(const AttackSpec& attacks) {
  Json json = Json::make_object();
  if (attacks.metrics_every > 0) json.set("metrics_every", attacks.metrics_every);
  if (attacks.random_weights.enabled()) {
    Json junk = Json::make_object();
    junk.set("rate", attacks.random_weights.rate);
    junk.set("weight_stddev", attacks.random_weights.weight_stddev);
    junk.set("num_parents", attacks.random_weights.num_parents);
    junk.set("start_round", attacks.random_weights.start_round);
    junk.set("stop_round", attacks.random_weights.stop_round);
    json.set("random_weights", std::move(junk));
  }
  if (attacks.label_flip.enabled()) {
    Json flip = Json::make_object();
    flip.set("fraction", attacks.label_flip.fraction);
    flip.set("class_a", static_cast<std::uint64_t>(attacks.label_flip.class_a));
    flip.set("class_b", static_cast<std::uint64_t>(attacks.label_flip.class_b));
    flip.set("start_round", attacks.label_flip.start_round);
    flip.set("stop_round", attacks.label_flip.stop_round);
    json.set("label_flip", std::move(flip));
  }
  return json;
}

store::StoreConfig store_from_json(const Json& json, store::StoreConfig store) {
  check_known_keys(json,
                   {"delta", "async_encode", "encode_threads", "anchor_interval", "lru_mb",
                    "eval_cache_shards"},
                   "store");
  store.delta = json.bool_or("delta", store.delta);
  store.async_encode = json.bool_or("async_encode", store.async_encode);
  store.encode_threads =
      static_cast<std::size_t>(json.uint_or("encode_threads", store.encode_threads));
  store.anchor_interval =
      static_cast<std::size_t>(json.uint_or("anchor_interval", store.anchor_interval));
  store.lru_bytes =
      static_cast<std::size_t>(json.uint_or("lru_mb", store.lru_bytes >> 20)) << 20;
  store.eval_cache_shards =
      static_cast<std::size_t>(json.uint_or("eval_cache_shards", store.eval_cache_shards));
  return store;
}

Json store_to_json(const store::StoreConfig& store) {
  Json json = Json::make_object();
  json.set("delta", store.delta);
  json.set("async_encode", store.async_encode);
  json.set("encode_threads", store.encode_threads);
  json.set("anchor_interval", store.anchor_interval);
  json.set("lru_mb", store.lru_bytes >> 20);
  json.set("eval_cache_shards", store.eval_cache_shards);
  return json;
}

ObsSpec obs_from_json(const Json& json, ObsSpec obs) {
  check_known_keys(json, {"metrics", "trace", "metrics_out"}, "obs");
  obs.metrics = json.bool_or("metrics", obs.metrics);
  obs.trace = json.string_or("trace", obs.trace);
  obs.metrics_out = json.string_or("metrics_out", obs.metrics_out);
  return obs;
}

Json obs_to_json(const ObsSpec& obs) {
  Json json = Json::make_object();
  if (!obs.metrics) json.set("metrics", false);
  if (!obs.trace.empty()) json.set("trace", obs.trace);
  if (!obs.metrics_out.empty()) json.set("metrics_out", obs.metrics_out);
  return json;
}

CheckpointSpec checkpoint_from_json(const Json& json) {
  check_known_keys(json, {"every_n_rounds", "dir", "keep_last"}, "checkpoint");
  CheckpointSpec checkpoint;
  checkpoint.every_n_rounds =
      static_cast<std::size_t>(json.uint_or("every_n_rounds", checkpoint.every_n_rounds));
  checkpoint.dir = json.string_or("dir", checkpoint.dir);
  checkpoint.keep_last = static_cast<std::size_t>(json.uint_or("keep_last", checkpoint.keep_last));
  return checkpoint;
}

Json checkpoint_to_json(const CheckpointSpec& checkpoint) {
  Json json = Json::make_object();
  json.set("every_n_rounds", checkpoint.every_n_rounds);
  json.set("dir", checkpoint.dir);
  if (checkpoint.keep_last > 0) json.set("keep_last", checkpoint.keep_last);
  return json;
}

Json dynamics_to_json(const DynamicsSpec& dynamics) {
  Json json = Json::make_object();
  if (dynamics.churn.enabled()) {
    Json churn = Json::make_object();
    churn.set("fraction", dynamics.churn.fraction);
    churn.set("leave_round", dynamics.churn.leave_round);
    churn.set("rejoin_round", dynamics.churn.rejoin_round);
    json.set("churn", std::move(churn));
  }
  if (dynamics.stragglers.enabled()) {
    Json stragglers = Json::make_object();
    stragglers.set("fraction", dynamics.stragglers.fraction);
    stragglers.set("slowdown", dynamics.stragglers.slowdown);
    stragglers.set("pareto_shape", dynamics.stragglers.pareto_shape);
    json.set("stragglers", std::move(stragglers));
  }
  if (dynamics.partition.enabled()) {
    Json partition = Json::make_object();
    partition.set("num_groups", dynamics.partition.num_groups);
    partition.set("by_cluster", dynamics.partition.by_cluster);
    partition.set("start_round", dynamics.partition.start_round);
    partition.set("heal_round", dynamics.partition.heal_round);
    json.set("partition", std::move(partition));
  }
  return json;
}

}  // namespace

std::string to_string(SimKind kind) {
  return kind == SimKind::kRound ? "round" : "async";
}

std::string to_string(DatasetPreset preset) {
  switch (preset) {
    case DatasetPreset::kFmnistClustered: return "fmnist-clustered";
    case DatasetPreset::kFmnistRelaxed: return "fmnist-relaxed";
    case DatasetPreset::kFmnistByAuthor: return "fmnist-by-author";
    case DatasetPreset::kPoets: return "poets";
    case DatasetPreset::kCifar: return "cifar";
    case DatasetPreset::kFedproxSynthetic: return "fedprox-synthetic";
  }
  throw JsonError("invalid dataset preset");
}

std::string to_string(AlgorithmKind algorithm) {
  switch (algorithm) {
    case AlgorithmKind::kDag: return "dag";
    case AlgorithmKind::kFedAvg: return "fedavg";
    case AlgorithmKind::kFedProx: return "fedprox";
    case AlgorithmKind::kGossip: return "gossip";
  }
  throw JsonError("invalid algorithm kind");
}

SimKind sim_kind_from_string(const std::string& name) {
  if (name == "round") return SimKind::kRound;
  if (name == "async") return SimKind::kAsync;
  throw JsonError("unknown simulator \"" + name + "\" (expected \"round\" or \"async\")");
}

AlgorithmKind algorithm_from_string(const std::string& name) {
  if (name == "dag") return AlgorithmKind::kDag;
  if (name == "fedavg") return AlgorithmKind::kFedAvg;
  if (name == "fedprox") return AlgorithmKind::kFedProx;
  if (name == "gossip") return AlgorithmKind::kGossip;
  throw JsonError("unknown algorithm \"" + name +
                  "\" (expected dag, fedavg, fedprox, or gossip)");
}

DatasetPreset dataset_preset_from_string(const std::string& name) {
  if (name == "fmnist-clustered") return DatasetPreset::kFmnistClustered;
  if (name == "fmnist-relaxed") return DatasetPreset::kFmnistRelaxed;
  if (name == "fmnist-by-author") return DatasetPreset::kFmnistByAuthor;
  if (name == "poets") return DatasetPreset::kPoets;
  if (name == "cifar") return DatasetPreset::kCifar;
  if (name == "fedprox-synthetic") return DatasetPreset::kFedproxSynthetic;
  throw JsonError("unknown dataset preset \"" + name + "\"");
}

void ScenarioSpec::validate() const {
  if (rounds == 0) throw std::invalid_argument("scenario: rounds must be > 0");
  if (seed > (std::uint64_t{1} << 53)) {
    throw std::invalid_argument(
        "scenario: seed must be <= 2^53 so it round-trips exactly through JSON");
  }
  if (simulator == SimKind::kRound && dynamics.stragglers.enabled()) {
    throw std::invalid_argument(
        "scenario: stragglers need the async simulator (round-based execution "
        "has no per-client rates)");
  }
  if (simulator == SimKind::kRound && clients_per_round == 0) {
    throw std::invalid_argument("scenario: clients_per_round must be > 0");
  }
  if (broadcast_latency < 0.0) {
    throw std::invalid_argument("scenario: negative broadcast_latency");
  }
  if (dynamics.churn.enabled()) {
    if (dynamics.churn.fraction >= 1.0) {
      throw std::invalid_argument("scenario: churn.fraction must be < 1 (someone must stay)");
    }
    if (dynamics.churn.rejoin_round != 0 &&
        dynamics.churn.rejoin_round <= dynamics.churn.leave_round) {
      throw std::invalid_argument("scenario: churn.rejoin_round must be after leave_round");
    }
  }
  if (dynamics.stragglers.enabled()) {
    if (dynamics.stragglers.fraction > 1.0 || dynamics.stragglers.slowdown <= 0.0 ||
        dynamics.stragglers.pareto_shape <= 0.0) {
      throw std::invalid_argument("scenario: bad straggler parameters");
    }
  }
  if (dynamics.partition.enabled() &&
      dynamics.partition.heal_round != 0 &&
      dynamics.partition.heal_round <= dynamics.partition.start_round) {
    throw std::invalid_argument("scenario: partition.heal_round must be after start_round");
  }
  if (algorithm != AlgorithmKind::kDag) {
    if (simulator != SimKind::kRound) {
      throw std::invalid_argument(
          "scenario: the " + to_string(algorithm) +
          " baseline runs in synchronous rounds (simulator must be \"round\")");
    }
    if (dynamics.any()) {
      throw std::invalid_argument(
          "scenario: dynamics (churn/stragglers/partition) are DAG-network "
          "workloads; the baselines do not model them");
    }
    if (attacks.random_weights.enabled()) {
      throw std::invalid_argument(
          "scenario: the random-weights attack publishes DAG transactions; "
          "it requires algorithm \"dag\"");
    }
    if (community_metrics_every > 0) {
      throw std::invalid_argument(
          "scenario: community metrics derive from the DAG's approval graph; "
          "they require algorithm \"dag\"");
    }
  }
  if (algorithm == AlgorithmKind::kFedProx && proximal_mu <= 0.0) {
    throw std::invalid_argument("scenario: fedprox requires proximal_mu > 0");
  }
  if (attacks.random_weights.enabled()) {
    const RandomWeightsAttackSpec& junk = attacks.random_weights;
    if (junk.rate < 0.0 || junk.weight_stddev <= 0.0 || junk.num_parents == 0) {
      throw std::invalid_argument("scenario: bad random_weights attack parameters");
    }
    if (junk.stop_round != 0 && junk.stop_round <= junk.start_round) {
      throw std::invalid_argument(
          "scenario: random_weights.stop_round must be after start_round");
    }
  }
  if (attacks.label_flip.enabled()) {
    const LabelFlipAttackSpec& flip = attacks.label_flip;
    if (flip.fraction >= 1.0) {
      throw std::invalid_argument(
          "scenario: label_flip.fraction must be < 1 (someone must stay benign)");
    }
    if (flip.class_a == flip.class_b) {
      throw std::invalid_argument("scenario: label_flip classes must differ");
    }
    if (flip.stop_round != 0 && flip.stop_round <= flip.start_round) {
      throw std::invalid_argument("scenario: label_flip.stop_round must be after start_round");
    }
  }
  if (store.anchor_interval == 0) {
    throw std::invalid_argument("scenario: store.anchor_interval must be > 0");
  }
  if (store.eval_cache_shards == 0) {
    throw std::invalid_argument("scenario: store.eval_cache_shards must be > 0");
  }
  if (store.delta && store.lru_bytes < (std::size_t{1} << 20)) {
    // Without a real materialization cache every cold delta read re-decodes
    // its whole base cone — pathological at any scale worth running.
    throw std::invalid_argument("scenario: store.lru_mb must be >= 1 when delta is on");
  }
  if (checkpoint.enabled()) {
    if (checkpoint.dir.empty()) {
      throw std::invalid_argument(
          "scenario: checkpoint.dir is required when checkpointing is enabled");
    }
    if (algorithm != AlgorithmKind::kDag) {
      throw std::invalid_argument(
          "scenario: checkpoints capture DAG run state; they require algorithm \"dag\"");
    }
  }
  if (num_clients > 0 || samples_per_client > 0) {
    const bool resizable = dataset == DatasetPreset::kFmnistClustered ||
                           dataset == DatasetPreset::kFmnistRelaxed ||
                           dataset == DatasetPreset::kFmnistByAuthor ||
                           dataset == DatasetPreset::kFedproxSynthetic;
    if (!resizable) {
      throw std::invalid_argument(
          "scenario: num_clients/samples_per_client overrides are only supported "
          "for the fmnist and fedprox-synthetic presets");
    }
    if (samples_per_client > 0 && dataset == DatasetPreset::kFedproxSynthetic) {
      throw std::invalid_argument(
          "scenario: fedprox-synthetic draws per-client sample counts from its "
          "lognormal; only num_clients can be overridden");
    }
  }
}

ScenarioSpec spec_from_json(const Json& json) {
  check_known_keys(json,
                   {"name", "description", "dataset", "paper_scale", "simulator", "rounds",
                    "clients_per_round", "visibility_delay_rounds", "broadcast_latency",
                    "num_clients", "samples_per_client", "seed", "parallel_prepare", "threads",
                    "evaluate_consensus", "community_metrics_every", "client", "dynamics",
                    "store", "algorithm", "proximal_mu", "attacks",
                    "record_client_accuracies", "obs", "checkpoint"},
                   "scenario");
  ScenarioSpec spec;
  spec.name = json.string_or("name", spec.name);
  spec.description = json.string_or("description", spec.description);
  spec.dataset = dataset_preset_from_string(json.string_or("dataset", to_string(spec.dataset)));
  spec.paper_scale = json.bool_or("paper_scale", spec.paper_scale);
  spec.simulator = sim_kind_from_string(json.string_or("simulator", to_string(spec.simulator)));
  spec.rounds = static_cast<std::size_t>(json.uint_or("rounds", spec.rounds));
  spec.clients_per_round =
      static_cast<std::size_t>(json.uint_or("clients_per_round", spec.clients_per_round));
  spec.visibility_delay_rounds = static_cast<std::size_t>(
      json.uint_or("visibility_delay_rounds", spec.visibility_delay_rounds));
  spec.broadcast_latency = json.number_or("broadcast_latency", spec.broadcast_latency);
  spec.num_clients = static_cast<std::size_t>(json.uint_or("num_clients", spec.num_clients));
  spec.samples_per_client =
      static_cast<std::size_t>(json.uint_or("samples_per_client", spec.samples_per_client));
  spec.seed = json.uint_or("seed", spec.seed);
  spec.parallel_prepare = json.bool_or("parallel_prepare", spec.parallel_prepare);
  spec.threads = static_cast<std::size_t>(json.uint_or("threads", spec.threads));
  spec.evaluate_consensus = json.bool_or("evaluate_consensus", spec.evaluate_consensus);
  spec.community_metrics_every = static_cast<std::size_t>(
      json.uint_or("community_metrics_every", spec.community_metrics_every));
  spec.algorithm = algorithm_from_string(json.string_or("algorithm", to_string(spec.algorithm)));
  spec.proximal_mu = json.number_or("proximal_mu", spec.proximal_mu);
  spec.record_client_accuracies =
      json.bool_or("record_client_accuracies", spec.record_client_accuracies);
  if (const Json* attacks = json.find("attacks")) {
    spec.attacks = attacks_from_json(*attacks);
  }
  if (const Json* client = json.find("client")) {
    spec.client = client_from_json(*client, spec.client);
  }
  if (const Json* dynamics = json.find("dynamics")) {
    spec.dynamics = dynamics_from_json(*dynamics);
  }
  if (const Json* store = json.find("store")) {
    spec.store = store_from_json(*store, spec.store);
  }
  if (const Json* obs = json.find("obs")) {
    spec.obs = obs_from_json(*obs, spec.obs);
  }
  if (const Json* checkpoint = json.find("checkpoint")) {
    spec.checkpoint = checkpoint_from_json(*checkpoint);
  }
  spec.validate();
  return spec;
}

Json spec_to_json(const ScenarioSpec& spec) {
  Json json = Json::make_object();
  json.set("name", spec.name);
  if (!spec.description.empty()) json.set("description", spec.description);
  json.set("dataset", to_string(spec.dataset));
  if (spec.paper_scale) json.set("paper_scale", true);
  json.set("simulator", to_string(spec.simulator));
  json.set("rounds", spec.rounds);
  if (spec.simulator == SimKind::kRound) {
    json.set("clients_per_round", spec.clients_per_round);
    if (spec.visibility_delay_rounds > 0) {
      json.set("visibility_delay_rounds", spec.visibility_delay_rounds);
    }
  } else {
    json.set("broadcast_latency", spec.broadcast_latency);
  }
  if (spec.num_clients > 0) json.set("num_clients", spec.num_clients);
  if (spec.samples_per_client > 0) json.set("samples_per_client", spec.samples_per_client);
  json.set("seed", spec.seed);
  if (!spec.parallel_prepare) json.set("parallel_prepare", false);
  if (spec.threads > 0) json.set("threads", spec.threads);
  if (spec.evaluate_consensus) json.set("evaluate_consensus", true);
  if (spec.community_metrics_every > 0) {
    json.set("community_metrics_every", spec.community_metrics_every);
  }
  if (spec.algorithm != AlgorithmKind::kDag) {
    json.set("algorithm", to_string(spec.algorithm));
    if (spec.algorithm == AlgorithmKind::kFedProx) json.set("proximal_mu", spec.proximal_mu);
  }
  if (spec.record_client_accuracies) json.set("record_client_accuracies", true);
  // metrics_every alone is meaningful: a clean control run probing the
  // label-flip schedule without an attack.
  if (spec.attacks.any() || spec.attacks.metrics_every > 0) {
    json.set("attacks", attacks_to_json(spec.attacks));
  }
  json.set("client", client_to_json(spec.client));
  if (spec.dynamics.any()) json.set("dynamics", dynamics_to_json(spec.dynamics));
  json.set("store", store_to_json(spec.store));
  // Only non-default obs settings are emitted, keeping existing golden
  // outputs (and specs that never heard of obs) byte-stable.
  if (!spec.obs.metrics || !spec.obs.trace.empty() || !spec.obs.metrics_out.empty()) {
    json.set("obs", obs_to_json(spec.obs));
  }
  // Same byte-stability rule: the checkpoint block only appears when on.
  if (spec.checkpoint.enabled()) {
    json.set("checkpoint", checkpoint_to_json(spec.checkpoint));
  }
  return json;
}

}  // namespace specdag::scenario
