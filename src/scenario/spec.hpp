// Declarative description of one experiment: dataset preset, model (implied
// by the preset), simulator kind and hyperparameters, tip-selection/client
// configuration, and a `dynamics` block for network-dynamics workloads
// (churn, stragglers, partitions). A spec is plain data — parse it from
// JSON, tweak it programmatically, hand it to scenario::run_scenario().
//
// JSON schema (all keys optional unless noted; defaults in ScenarioSpec):
//   {
//     "name": "my-experiment",
//     "dataset": "fmnist-clustered" | "fmnist-relaxed" | "fmnist-by-author"
//              | "poets" | "cifar" | "fedprox-synthetic",
//     "simulator": "round" | "async",
//     "rounds": 40,                  // async: virtual-time horizon
//     "clients_per_round": 10,       // round simulator only
//     "visibility_delay_rounds": 0,  // round simulator only
//     "broadcast_latency": 0.5,     // async simulator only
//     "num_clients": 0,              // 0 = preset default (fmnist/fedprox)
//     "samples_per_client": 0,       // 0 = preset default (fmnist only)
//     "seed": 42,
//     "threads": 0,                  // prepare workers: 0 = hardware, 1 = serial
//     "client": {
//       "alpha": 10, "selector": "accuracy" | "random" | "weighted",
//       "normalization": "standard" | "dynamic", "num_parents": 2,
//       "walk_start": "genesis" | "depth", "start_depth_min": 15,
//       "start_depth_max": 25, "publish_gate": true,
//       "publish_if_equal": true, "reference_walks": 1,
//       "train": {"local_epochs": 1, "local_batches": 10,
//                  "batch_size": 10, "learning_rate": 0.05,
//                  "batch": 16}   // fused-executor lanes; 0 = scalar path
//     },
//     "dynamics": {
//       "churn":      {"fraction": 0.3, "leave_round": 10, "rejoin_round": 25},
//       "stragglers": {"fraction": 0.3, "slowdown": 6, "pareto_shape": 1.5},
//       "partition":  {"num_groups": 3, "by_cluster": true,
//                      "start_round": 5, "heal_round": 25}
//     },
//     "store": {            // model payload store (src/store)
//       "delta": true,      // delta-encode payloads (false = full vectors)
//       "async_encode": false,  // encode deltas on background workers
//       "encode_threads": 1,    // encode pool size (0 = hardware threads)
//       "anchor_interval": 8, "lru_mb": 64, "eval_cache_shards": 16
//     },
//     "algorithm": "dag" | "fedavg" | "fedprox" | "gossip",
//     "proximal_mu": 1.0,            // fedprox only
//     "attacks": {                   // adversary schedules (attacks.hpp)
//       "metrics_every": 1,
//       "random_weights": {"rate": 1.0, "weight_stddev": 0.1,
//                           "num_parents": 2, "start_round": 10, "stop_round": 0},
//       "label_flip": {"fraction": 0.2, "class_a": 3, "class_b": 8,
//                       "start_round": 40, "stop_round": 0}
//     },
//     "record_client_accuracies": false,  // per-client accuracy distributions
//     "community_metrics_every": 0,  // track Louvain metrics every N rounds
//     "obs": {                       // observability (src/obs)
//       "metrics": true,             // counters/histograms -> summary.obs
//       "trace": ""                  // Perfetto trace output path ("" = off)
//     },
//     "checkpoint": {                // periodic run snapshots (src/snapshot)
//       "every_n_rounds": 5,         // 0 = checkpointing off
//       "dir": "ckpt",               // required when enabled
//       "keep_last": 2               // prune older checkpoints; 0 = keep all
//     }
//   }
#pragma once

#include "fl/dag_client.hpp"
#include "scenario/attacks.hpp"
#include "scenario/config.hpp"
#include "store/model_store.hpp"

namespace specdag::scenario {

enum class SimKind { kRound, kAsync };

// Which learning algorithm the runner executes. kDag is the paper's
// contribution; the rest are the comparison baselines of Figures 9-11 and
// §3.2, run behind the same ScenarioResult surface (see baselines.hpp).
enum class AlgorithmKind { kDag, kFedAvg, kFedProx, kGossip };

enum class DatasetPreset {
  kFmnistClustered,
  kFmnistRelaxed,
  kFmnistByAuthor,
  kPoets,
  kCifar,
  kFedproxSynthetic,
};

// Client churn: at `leave_round` a seed-derived `fraction` of the clients
// leaves the network; at `rejoin_round` (0 = never) they rejoin.
struct ChurnSpec {
  double fraction = 0.0;
  std::size_t leave_round = 0;
  std::size_t rejoin_round = 0;

  bool enabled() const { return fraction > 0.0; }
};

// Stragglers (async simulator only): a seed-derived `fraction` of the
// clients gets a heavy-tailed training clock — mean step interval
// slowdown * Pareto(pareto_shape) (scale 1), so a shape near 1 produces the
// extreme laggards real federated deployments see.
struct StragglerSpec {
  double fraction = 0.0;
  double slowdown = 4.0;
  double pareto_shape = 1.5;

  bool enabled() const { return fraction > 0.0; }
};

// Network partition: from `start_round` until `heal_round` the clients are
// split into `num_groups` groups that cannot see each other's new
// transactions. `by_cluster` groups by ground-truth cluster (modeling a
// geo-partition aligned with data distribution); otherwise round-robin.
struct PartitionSpec {
  std::size_t num_groups = 0;
  bool by_cluster = false;
  std::size_t start_round = 0;
  std::size_t heal_round = 0;

  bool enabled() const { return num_groups > 1; }
};

struct DynamicsSpec {
  ChurnSpec churn;
  StragglerSpec stragglers;
  PartitionSpec partition;

  bool any() const {
    return churn.enabled() || stragglers.enabled() || partition.enabled();
  }
};

// Observability controls (src/obs). Metrics are on by default — they are
// cheap and feed summary.obs; tracing writes a Chrome trace-event /
// Perfetto-compatible JSON file and is enabled by giving it a path (the
// `specdag run --trace` flag sets the same field). Neither affects results:
// runs are bit-identical with any combination of these.
struct ObsSpec {
  bool metrics = true;
  std::string trace;        // empty = no trace
  // Prometheus text-exposition export of the run's metric totals (the
  // `specdag run --metrics-out` flag sets the same field). Empty = no file.
  std::string metrics_out;
};

// Periodic checkpointing (src/snapshot): every `every_n_rounds` completed
// units the runner drains the store's async encode pipeline (the quiescent
// point) and writes <dir>/checkpoint-NNNNNN.ckpt — a versioned, checksummed
// snapshot of the full run state plus the spec itself, so
// `specdag run --resume <ckpt>` continues the run bit-exactly from there.
struct CheckpointSpec {
  std::size_t every_n_rounds = 0;  // 0 = checkpointing off
  std::string dir;                 // required when enabled
  std::size_t keep_last = 0;       // prune older checkpoint files; 0 = keep all

  bool enabled() const { return every_n_rounds > 0; }
};

struct ScenarioSpec {
  std::string name = "unnamed";
  std::string description;
  DatasetPreset dataset = DatasetPreset::kFmnistClustered;
  bool paper_scale = false;
  SimKind simulator = SimKind::kRound;
  // Round simulator: number of rounds. Async simulator: virtual-time
  // horizon (the runner records one series point per unit of virtual time).
  std::size_t rounds = 40;
  std::size_t clients_per_round = 10;
  std::size_t visibility_delay_rounds = 0;
  double broadcast_latency = 0.5;
  // Dataset-size overrides; 0 keeps the preset default. Supported for the
  // fmnist presets (both) and fedprox-synthetic (num_clients only).
  std::size_t num_clients = 0;
  std::size_t samples_per_client = 0;
  std::uint64_t seed = 42;
  bool parallel_prepare = true;
  // Worker threads for the simulators' parallel prepare phase (round: the
  // per-round client batch; async: serially-equivalent step batches).
  // 0 = one per hardware thread, 1 = serial. Bit-identical results across
  // values — this is a wall-clock knob, not a semantic one.
  std::size_t threads = 0;
  // Evaluate every client's personalized consensus model at the end (one
  // biased walk + test-set evaluation per client — the expensive metric).
  bool evaluate_consensus = false;
  // When > 0, every N-th series point additionally carries Louvain community
  // metrics over the client graph (modularity, #communities,
  // misclassification vs ground-truth clusters) — the Figure 5 curves.
  std::size_t community_metrics_every = 0;
  // Which algorithm runs the experiment. Non-DAG backends require the round
  // simulator and support dataset presets, label-flip attacks, and the
  // record_client_accuracies distributions, but no DAG-specific knobs
  // (dynamics, store, random-weight attacks, community metrics).
  AlgorithmKind algorithm = AlgorithmKind::kDag;
  double proximal_mu = 1.0;  // FedProx proximal term (fedprox backend only)
  // Record the per-client trained/evaluated accuracies of every series point
  // (the Figure 9 distribution data). Off by default: it grows the series by
  // one double per active client per round.
  bool record_client_accuracies = false;
  fl::DagClientConfig client;
  DynamicsSpec dynamics;
  // Adversary schedules: mid-run random-weight junk and flipped-label
  // poisoning with start/stop windows (see scenario/attacks.hpp).
  AttackSpec attacks;
  // Model payload store: delta encoding, materialization LRU, eval-cache
  // sharding (see src/store/model_store.hpp).
  store::StoreConfig store;
  // Observability: metrics rollup and optional Perfetto trace (src/obs).
  ObsSpec obs;
  // Periodic run snapshots for crash-safe resume and deterministic replay
  // (src/snapshot).
  CheckpointSpec checkpoint;

  // Throws std::invalid_argument when the combination is not runnable
  // (e.g. stragglers on the round simulator).
  void validate() const;
};

// Enum <-> string helpers (throw JsonError on unknown names).
std::string to_string(SimKind kind);
std::string to_string(DatasetPreset preset);
std::string to_string(AlgorithmKind algorithm);
SimKind sim_kind_from_string(const std::string& name);
DatasetPreset dataset_preset_from_string(const std::string& name);
AlgorithmKind algorithm_from_string(const std::string& name);

// Deserialization rejects unknown keys (typo safety for experiment configs).
ScenarioSpec spec_from_json(const Json& json);
Json spec_to_json(const ScenarioSpec& spec);

}  // namespace specdag::scenario
