#include "scenario/sweep.hpp"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "scenario/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace specdag::scenario {

std::size_t SweepSpec::num_runs() const {
  std::size_t runs = repeats;
  for (const SweepAxis& axis : axes) runs *= axis.values.size();
  return runs;
}

SweepSpec sweep_from_json(const Json& json) {
  for (const auto& [key, value] : json.as_object()) {
    if (key != "base" && key != "axes" && key != "repeats" && key != "out" &&
        key != "threads" && key != "derive_seeds") {
      throw JsonError("unknown key \"" + key + "\" in sweep grid");
    }
  }
  SweepSpec sweep;
  const Json* base = json.find("base");
  if (base == nullptr) throw JsonError("sweep grid needs a \"base\" spec");
  if (base->is_string()) {
    sweep.base = spec_to_json(get_scenario(base->as_string()));
  } else {
    // Validate eagerly so a broken base fails before any run starts.
    (void)spec_from_json(*base);
    sweep.base = *base;
  }
  if (const Json* axes = json.find("axes")) {
    for (const auto& [path, values] : axes->as_object()) {
      if (values.as_array().empty()) {
        throw JsonError("sweep axis \"" + path + "\" has no values");
      }
      sweep.axes.push_back({path, values.as_array()});
    }
  }
  sweep.repeats = static_cast<std::size_t>(json.uint_or("repeats", 1));
  if (sweep.repeats == 0) throw JsonError("sweep repeats must be > 0");
  sweep.out_path = json.string_or("out", sweep.out_path);
  sweep.threads = static_cast<std::size_t>(json.uint_or("threads", 0));
  sweep.derive_seeds = json.bool_or("derive_seeds", true);
  if (sweep.num_runs() == 0) throw JsonError("sweep grid is empty");
  return sweep;
}

std::vector<std::pair<Json, std::uint64_t>> expand_grid(const SweepSpec& sweep) {
  const std::uint64_t base_seed = sweep.base.uint_or("seed", 42);
  std::vector<std::pair<Json, std::uint64_t>> runs;
  std::vector<std::size_t> index(sweep.axes.size(), 0);
  for (std::size_t run = 0; run < sweep.num_runs(); ++run) {
    Json params = Json::make_object();
    for (std::size_t axis = 0; axis < sweep.axes.size(); ++axis) {
      params.set(sweep.axes[axis].path, sweep.axes[axis].values[index[axis]]);
    }
    // Derived per-run seed: decorrelated runs, reproducible from the base
    // seed alone, recorded in every output line. Confined to 53 bits so the
    // value round-trips exactly through JSON numbers.
    const std::uint64_t seed =
        sweep.derive_seeds
            ? splitmix64(base_seed + 0x5EED0000ULL + run) & ((std::uint64_t{1} << 53) - 1)
            : base_seed;
    runs.emplace_back(std::move(params), seed);
    // Odometer increment over the axes (repeats spin the whole grid again).
    for (std::size_t axis = sweep.axes.size(); axis-- > 0;) {
      if (++index[axis] < sweep.axes[axis].values.size()) break;
      index[axis] = 0;
    }
  }
  return runs;
}

std::vector<SweepRun> run_sweep(const SweepSpec& sweep, std::ostream* progress) {
  const std::vector<std::pair<Json, std::uint64_t>> grid = expand_grid(sweep);

  const std::filesystem::path out_path(sweep.out_path);
  if (out_path.has_parent_path()) std::filesystem::create_directories(out_path.parent_path());
  std::ofstream out(sweep.out_path);
  if (!out) throw std::runtime_error("sweep: cannot open " + sweep.out_path);

  std::vector<SweepRun> results(grid.size());
  std::mutex sink_mutex;

  std::size_t threads = sweep.threads > 0 ? sweep.threads : std::thread::hardware_concurrency();
  threads = std::max<std::size_t>(1, std::min(threads, grid.size()));

  // Obs state is process-global (cumulative registry, one trace session):
  // with concurrent runs, per-run snapshot deltas would include every other
  // in-flight run's counters and trace sessions would clobber each other.
  // Reject explicit trace requests up front and disable per-run metrics
  // sampling in run_one; summary.obs is only emitted by serial sweeps.
  const bool parallel = threads > 1;
  if (parallel) {
    bool wants_trace = false;
    if (const Json* obs = sweep.base.find("obs")) {
      wants_trace = !obs->string_or("trace", "").empty();
    }
    for (const auto& [params, seed] : grid) {
      (void)seed;
      if (const Json* trace = params.find("obs.trace")) {
        wants_trace = wants_trace || !trace->as_string().empty();
      }
      if (const Json* obs = params.find("obs")) {
        wants_trace = wants_trace || !obs->string_or("trace", "").empty();
      }
    }
    if (wants_trace) {
      throw std::invalid_argument(
          "sweep: obs.trace requires threads=1 (the trace session is process-global "
          "and cannot attribute events to one of several concurrent runs)");
    }
  }

  auto run_one = [&](std::size_t run_index) {
    Json spec_json = sweep.base;
    for (const auto& [path, value] : grid[run_index].first.as_object()) {
      spec_json.set_path(path, value);
    }
    spec_json.set("seed", grid[run_index].second);
    // One simulator thread per run; the sweep already saturates the pool.
    spec_json.set("parallel_prepare", false);
    // See the parallel-obs note above: registry deltas cannot be attributed
    // to one of several concurrent runs, so drop per-run sampling rather
    // than emit summary.obs polluted by other in-flight runs.
    if (parallel) spec_json.set_path("obs.metrics", false);
    ScenarioSpec spec = spec_from_json(spec_json);
    ScenarioResult result = run_scenario(spec);

    Json line = Json::make_object();
    line.set("run", run_index);
    line.set("seed", grid[run_index].second);
    line.set("params", grid[run_index].first);
    line.set("result", result_to_json(result));

    {
      std::lock_guard<std::mutex> lock(sink_mutex);
      out << line.dump() << '\n';
      out.flush();
      if (progress != nullptr) {
        *progress << "[" << (run_index + 1) << "/" << grid.size() << "] " << spec.name
                  << " params=" << grid[run_index].first.dump()
                  << " final_accuracy=" << result.final_accuracy << "\n";
      }
    }
    results[run_index] = SweepRun{run_index, grid[run_index].second,
                                 grid[run_index].first, std::move(result)};
  };

  if (threads == 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) run_one(i);
  } else {
    // Each run's ObsSession saves/restores the global metrics flag; with
    // concurrent destructors the last restore wins, which can leave the
    // flag in a run's mid-sweep state. Re-assert the pre-sweep value.
    const bool metrics_before = obs::metrics_enabled();
    {
      ThreadPool pool(threads);
      pool.parallel_for(grid.size(), run_one);
    }
    obs::set_metrics_enabled(metrics_before);
  }
  return results;
}

}  // namespace specdag::scenario
