#include "scenario/sweep.hpp"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "scenario/registry.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace specdag::scenario {

std::size_t SweepSpec::num_runs() const {
  std::size_t runs = repeats;
  for (const SweepAxis& axis : axes) runs *= axis.values.size();
  return runs;
}

SweepSpec sweep_from_json(const Json& json) {
  for (const auto& [key, value] : json.as_object()) {
    if (key != "base" && key != "axes" && key != "repeats" && key != "out" &&
        key != "threads" && key != "derive_seeds" && key != "trace_dir" &&
        key != "metrics_out") {
      throw JsonError("unknown key \"" + key + "\" in sweep grid");
    }
  }
  SweepSpec sweep;
  const Json* base = json.find("base");
  if (base == nullptr) throw JsonError("sweep grid needs a \"base\" spec");
  if (base->is_string()) {
    sweep.base = spec_to_json(get_scenario(base->as_string()));
  } else {
    // Validate eagerly so a broken base fails before any run starts.
    (void)spec_from_json(*base);
    sweep.base = *base;
  }
  if (const Json* axes = json.find("axes")) {
    for (const auto& [path, values] : axes->as_object()) {
      if (values.as_array().empty()) {
        throw JsonError("sweep axis \"" + path + "\" has no values");
      }
      sweep.axes.push_back({path, values.as_array()});
    }
  }
  sweep.repeats = static_cast<std::size_t>(json.uint_or("repeats", 1));
  if (sweep.repeats == 0) throw JsonError("sweep repeats must be > 0");
  sweep.out_path = json.string_or("out", sweep.out_path);
  sweep.threads = static_cast<std::size_t>(json.uint_or("threads", 0));
  sweep.derive_seeds = json.bool_or("derive_seeds", true);
  sweep.trace_dir = json.string_or("trace_dir", sweep.trace_dir);
  sweep.metrics_out = json.string_or("metrics_out", sweep.metrics_out);
  if (sweep.num_runs() == 0) throw JsonError("sweep grid is empty");
  return sweep;
}

std::vector<std::pair<Json, std::uint64_t>> expand_grid(const SweepSpec& sweep) {
  const std::uint64_t base_seed = sweep.base.uint_or("seed", 42);
  std::vector<std::pair<Json, std::uint64_t>> runs;
  std::vector<std::size_t> index(sweep.axes.size(), 0);
  for (std::size_t run = 0; run < sweep.num_runs(); ++run) {
    Json params = Json::make_object();
    for (std::size_t axis = 0; axis < sweep.axes.size(); ++axis) {
      params.set(sweep.axes[axis].path, sweep.axes[axis].values[index[axis]]);
    }
    // Derived per-run seed: decorrelated runs, reproducible from the base
    // seed alone, recorded in every output line. Confined to 53 bits so the
    // value round-trips exactly through JSON numbers.
    const std::uint64_t seed =
        sweep.derive_seeds
            ? splitmix64(base_seed + 0x5EED0000ULL + run) & ((std::uint64_t{1} << 53) - 1)
            : base_seed;
    runs.emplace_back(std::move(params), seed);
    // Odometer increment over the axes (repeats spin the whole grid again).
    for (std::size_t axis = sweep.axes.size(); axis-- > 0;) {
      if (++index[axis] < sweep.axes[axis].values.size()) break;
      index[axis] = 0;
    }
  }
  return runs;
}

namespace {

// The sweep-level obs aggregate: all per-run totals merged (counters sum,
// histograms merge bucket-wise — exact because every context uses the same
// fixed bucket layout), plus the same merge restricted to each axis value.
// Written as the JSONL footer line {"sweep": {...}} and, when requested,
// exported as Prometheus text.
Json build_sweep_footer(const SweepSpec& sweep, const std::vector<SweepRun>& results,
                        std::size_t reused, obs::MetricsSnapshot& aggregate, bool& any_obs) {
  aggregate = obs::MetricsSnapshot{};
  any_obs = false;
  std::size_t obs_runs = 0;
  for (const SweepRun& run : results) {
    if (!run.result.obs_enabled) continue;
    any_obs = true;
    ++obs_runs;
    aggregate.merge(run.result.obs_totals);
  }

  Json footer = Json::make_object();
  footer.set("runs", results.size());
  if (reused > 0) footer.set("reused", reused);
  if (any_obs) {
    footer.set("obs_runs", obs_runs);
    footer.set("obs", metrics_snapshot_to_json(aggregate));
    // Per-axis totals: for each axis value, the merge over the runs that
    // used it — the "how does obs load scale along this axis" view without
    // re-reading every line.
    Json axes = Json::make_object();
    for (const SweepAxis& axis : sweep.axes) {
      std::map<std::string, obs::MetricsSnapshot> by_value;
      for (const SweepRun& run : results) {
        if (!run.result.obs_enabled) continue;
        const Json* value = run.params.find(axis.path);
        if (value == nullptr) continue;
        by_value[value->dump()].merge(run.result.obs_totals);
      }
      Json axis_json = Json::make_object();
      for (const auto& [value, snapshot] : by_value) {
        axis_json.set(value, metrics_snapshot_to_json(snapshot));
      }
      axes.set(axis.path, std::move(axis_json));
    }
    footer.set("axes", std::move(axes));
  }
  Json line = Json::make_object();
  line.set("sweep", std::move(footer));
  return line;
}

// Reads a crash-interrupted sweep's manifest: per-run JSONL lines written by
// the previous invocation. Lines are validated against the expanded grid
// (index range, seed, params) so a changed grid is rejected instead of
// silently mixing results; unparsable lines (the torn tail of a crashed
// write) are skipped. Returns the number of reused runs.
std::size_t read_manifest(const std::string& manifest_path,
                          const std::vector<std::pair<Json, std::uint64_t>>& grid,
                          std::vector<std::string>& lines) {
  std::ifstream in(manifest_path);
  if (!in) return 0;
  std::size_t reused = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json parsed;
    try {
      parsed = Json::parse(line);
    } catch (const std::exception&) {
      continue;  // torn line from a crash mid-write
    }
    const Json* run = parsed.find("run");
    const Json* seed = parsed.find("seed");
    const Json* params = parsed.find("params");
    if (run == nullptr || seed == nullptr || params == nullptr) continue;
    const std::uint64_t index = run->as_uint();
    if (index >= grid.size() || seed->as_uint() != grid[index].second ||
        params->dump() != grid[index].first.dump()) {
      throw std::invalid_argument("sweep: " + manifest_path +
                                  " does not match this grid (run " + std::to_string(index) +
                                  " differs); delete it or fix the grid to resume");
    }
    if (lines[index].empty()) ++reused;
    lines[index] = line;
  }
  return reused;
}

}  // namespace

std::vector<SweepRun> run_sweep(const SweepSpec& sweep, std::ostream* progress) {
  const std::vector<std::pair<Json, std::uint64_t>> grid = expand_grid(sweep);

  const std::filesystem::path out_path(sweep.out_path);
  if (out_path.has_parent_path()) std::filesystem::create_directories(out_path.parent_path());
  if (!sweep.trace_dir.empty()) std::filesystem::create_directories(sweep.trace_dir);

  // Crash-safe orchestration: completed runs append to the manifest as they
  // finish; the final out file is only assembled (in run-index order) once
  // every run is in. An interrupted sweep restarts with `resume=true` and
  // re-executes only the runs missing from the manifest.
  const std::string manifest_path = sweep.out_path + ".partial";
  std::vector<std::string> lines(grid.size());
  std::size_t reused = 0;
  if (sweep.resume) {
    reused = read_manifest(manifest_path, grid, lines);
    if (reused > 0) {
      SPECDAG_LOG(Info) << "sweep: resuming, " << reused << "/" << grid.size()
                        << " runs reused from " << manifest_path;
    }
  }
  std::ofstream manifest(manifest_path, sweep.resume ? std::ios::app : std::ios::trunc);
  if (!manifest) throw std::runtime_error("sweep: cannot open " + manifest_path);

  std::vector<SweepRun> results(grid.size());
  std::mutex sink_mutex;

  std::size_t threads = sweep.threads > 0 ? sweep.threads : std::thread::hardware_concurrency();
  threads = std::max<std::size_t>(1, std::min(threads, grid.size()));
  const bool parallel = threads > 1;

  // Per-run obs contexts attribute metrics and traces correctly at any
  // thread count; the only remaining hazard is several runs writing the
  // SAME trace file concurrently via a fixed obs.trace path. trace_dir is
  // the supported spelling (one file per run index).
  if (parallel && sweep.trace_dir.empty()) {
    bool fixed_trace = false;
    if (const Json* obs = sweep.base.find("obs")) {
      fixed_trace = !obs->string_or("trace", "").empty();
    }
    for (const auto& [params, seed] : grid) {
      (void)seed;
      if (const Json* trace = params.find("obs.trace")) {
        fixed_trace = fixed_trace || !trace->as_string().empty();
      }
      if (const Json* obs = params.find("obs")) {
        fixed_trace = fixed_trace || !obs->string_or("trace", "").empty();
      }
    }
    if (fixed_trace) {
      throw std::invalid_argument(
          "sweep: a fixed obs.trace path with threads>1 would have concurrent runs "
          "overwrite one file; set \"trace_dir\" instead (per-run run-<idx>.trace.json)");
    }
  }

  auto run_one = [&](std::size_t run_index) {
    results[run_index].run_index = run_index;
    results[run_index].seed = grid[run_index].second;
    results[run_index].params = grid[run_index].first;
    if (!lines[run_index].empty()) return;  // reused from the manifest

    Json spec_json = sweep.base;
    for (const auto& [path, value] : grid[run_index].first.as_object()) {
      spec_json.set_path(path, value);
    }
    spec_json.set("seed", grid[run_index].second);
    // One simulator thread per run; the sweep already saturates the pool.
    spec_json.set("parallel_prepare", false);
    if (!sweep.trace_dir.empty()) {
      const std::filesystem::path trace_path =
          std::filesystem::path(sweep.trace_dir) /
          ("run-" + std::to_string(run_index) + ".trace.json");
      spec_json.set_path("obs.trace", Json(trace_path.string()));
    }
    // When the base spec checkpoints, every run gets its own checkpoint
    // directory — per-run checkpoints make an interrupted run inside a sweep
    // resumable without colliding with its siblings.
    if (const Json* checkpoint = spec_json.find("checkpoint")) {
      const std::string dir = checkpoint->string_or("dir", "");
      if (!dir.empty()) {
        const std::filesystem::path run_dir =
            std::filesystem::path(dir) / ("run-" + std::to_string(run_index));
        spec_json.set_path("checkpoint.dir", Json(run_dir.string()));
      }
    }
    ScenarioSpec spec = spec_from_json(spec_json);
    ScenarioResult result = run_scenario(spec);

    Json line = Json::make_object();
    line.set("run", run_index);
    line.set("seed", grid[run_index].second);
    line.set("params", grid[run_index].first);
    line.set("result", result_to_json(result));

    {
      std::lock_guard<std::mutex> lock(sink_mutex);
      lines[run_index] = line.dump();
      manifest << lines[run_index] << '\n';
      manifest.flush();
      if (progress != nullptr) {
        *progress << "[" << (run_index + 1) << "/" << grid.size() << "] " << spec.name
                  << " params=" << grid[run_index].first.dump()
                  << " final_accuracy=" << result.final_accuracy << "\n";
      }
    }
    results[run_index].result = std::move(result);
  };

  if (!parallel) {
    for (std::size_t i = 0; i < grid.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(threads);
    pool.parallel_for(grid.size(), run_one);
  }

  // Every run is in: assemble the final out file in run-index order, append
  // the footer (the merged sweep.obs aggregate plus per-axis totals; readers
  // distinguish it from run lines by the "sweep" key), then drop the
  // manifest — its job is done.
  std::ofstream out(sweep.out_path);
  if (!out) throw std::runtime_error("sweep: cannot open " + sweep.out_path);
  for (const std::string& line : lines) out << line << '\n';
  obs::MetricsSnapshot aggregate;
  bool any_obs = false;
  const Json footer = build_sweep_footer(sweep, results, reused, aggregate, any_obs);
  out << footer.dump() << '\n';
  out.flush();
  manifest.close();
  {
    std::error_code ec;
    std::filesystem::remove(manifest_path, ec);
  }
  if (!sweep.metrics_out.empty()) {
    if (any_obs) {
      if (!obs::write_prometheus_file(sweep.metrics_out, aggregate)) {
        SPECDAG_LOG(Warn) << "sweep: failed to write metrics file: " << sweep.metrics_out;
      }
    } else {
      SPECDAG_LOG(Warn) << "sweep: metrics_out requested but no run collected obs "
                           "metrics; skipping " << sweep.metrics_out;
    }
  }
  return results;
}

}  // namespace specdag::scenario
