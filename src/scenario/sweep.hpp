// Sweep executor: fans a grid of scenario specs across the thread pool and
// streams one JSONL line per completed run.
//
// Grid JSON:
//   {
//     "base": "churn" | { ...inline scenario spec... },
//     "axes": { "client.alpha": [1, 10, 100], "rounds": [20, 40] },
//     "repeats": 1,
//     "out": "results/sweep.jsonl",
//     "threads": 0,           // 0 = hardware concurrency
//     "trace_dir": "traces",  // optional: per-run Perfetto trace files
//     "metrics_out": "sweep.prom"  // optional: aggregate Prometheus export
//   }
//
// Axis keys are dotted paths into the scenario-spec JSON; the grid is the
// cartesian product of all axes times `repeats`. Every run gets a seed
// derived deterministically from the base spec's seed and its run index
// (recorded in the output), and runs with parallel_prepare disabled — the
// sweep parallelizes across runs, not inside them.
//
// Each run owns an obs::Context (see src/obs/context.hpp), so every JSONL
// line carries that run's own summary.obs even at threads > 1, and
// trace_dir gives each run its own trace file. After the last run, a footer
// line {"sweep": {"runs": N, "obs": {...}, "axes": {...}}} records the
// merged aggregate (counters summed, histograms merged bucket-wise) plus
// per-axis-value totals.
#pragma once

#include "scenario/runner.hpp"

namespace specdag::scenario {

struct SweepAxis {
  std::string path;          // dotted path into the spec JSON
  std::vector<Json> values;  // one grid dimension
};

struct SweepSpec {
  Json base;  // scenario-spec JSON (already resolved if it named a built-in)
  std::vector<SweepAxis> axes;
  std::size_t repeats = 1;
  std::string out_path = "results/sweep.jsonl";
  std::size_t threads = 0;  // 0 = hardware concurrency
  // Per-run derived seeds (default) give decorrelated repeats; disable to
  // run every grid point with the base seed — an ablation where the axis is
  // the only difference between runs.
  bool derive_seeds = true;
  // Non-empty: every run writes a Perfetto trace to
  // <trace_dir>/run-<index>.trace.json (per-run obs contexts make this safe
  // at any thread count).
  std::string trace_dir;
  // Non-empty: the sweep-level obs aggregate (all runs merged) is exported
  // as Prometheus text exposition to this path.
  std::string metrics_out;
  // Reuse finished runs recorded in <out_path>.partial by an interrupted
  // invocation of the same grid and execute only the rest (the `--resume`
  // CLI flag). The manifest is validated against this grid — a changed
  // base/axes/seed derivation is rejected rather than silently mixed.
  bool resume = false;

  // Total number of runs in the grid.
  std::size_t num_runs() const;
};

// Parses and validates a grid document; resolves a string "base" through
// the registry.
SweepSpec sweep_from_json(const Json& json);

struct SweepRun {
  std::size_t run_index = 0;
  std::uint64_t seed = 0;
  Json params;  // the axis values of this grid point
  ScenarioResult result;
};

// Expands the grid without running it (what `specdag sweep --dry-run`
// prints): per run the resolved params and derived seed.
std::vector<std::pair<Json, std::uint64_t>> expand_grid(const SweepSpec& sweep);

// Runs the whole grid. Completed runs stream to `<out_path>.partial` (one
// JSON object per line, flushed per run — the crash-safe manifest `resume`
// reads); on success the final `out_path` is written in run-index order and
// the manifest is removed. The returned vector is ordered by run index.
// `progress`, when non-null, receives one line per completed run. After a
// resume, reused runs keep their recorded JSONL lines verbatim; the footer's
// merged sweep.obs aggregate covers only the runs executed by this
// invocation (histogram state is not reconstructible from JSON).
std::vector<SweepRun> run_sweep(const SweepSpec& sweep, std::ostream* progress = nullptr);

}  // namespace specdag::scenario
