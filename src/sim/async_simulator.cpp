#include "sim/async_simulator.hpp"

#include <cmath>
#include <stdexcept>

namespace specdag::sim {

AsyncDagSimulator::AsyncDagSimulator(data::FederatedDataset dataset, nn::ModelFactory factory,
                                     AsyncSimulatorConfig config,
                                     std::vector<AsyncClientProfile> profiles)
    : dataset_(std::move(dataset)),
      config_(config),
      net_(std::move(factory), config.client, config.seed),
      profiles_(std::move(profiles)),
      rng_(Rng(config.seed).fork(0xA57C)) {
  dataset_.validate();
  if (config_.broadcast_latency < 0.0) {
    throw std::invalid_argument("AsyncDagSimulator: negative broadcast latency");
  }
  if (profiles_.empty()) {
    profiles_.assign(dataset_.clients.size(), AsyncClientProfile{});
  }
  if (profiles_.size() != dataset_.clients.size()) {
    throw std::invalid_argument("AsyncDagSimulator: profile count mismatch");
  }
  for (const auto& p : profiles_) {
    if (p.mean_step_interval <= 0.0) {
      throw std::invalid_argument("AsyncDagSimulator: non-positive step interval");
    }
  }
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.register_client(&dataset_.clients[i]);
    schedule_client_step(static_cast<int>(i));
  }
}

void AsyncDagSimulator::schedule_client_step(int client) {
  const double mean = profiles_[static_cast<std::size_t>(client)].mean_step_interval;
  // Exponential inter-arrival times: a Poisson clock per client.
  const double delay = -mean * std::log(1.0 - rng_.uniform());
  events_.push(Event{now_ + delay, next_seq_++, Event::Kind::kClientStep, client, {}});
}

void AsyncDagSimulator::process_event(Event event, std::vector<AsyncStepRecord>& records) {
  now_ = event.time;
  if (event.kind == Event::Kind::kBroadcast) {
    // The transaction reaches the network: insert it into the DAG. The
    // gate was already evaluated against the publisher's view at prepare
    // time; the virtual round is the event time floored.
    net_.commit(event.client, event.result, static_cast<std::size_t>(now_));
    return;
  }

  // Client training completion: walk, average, train against the *current*
  // DAG; publish (possibly delayed by broadcast latency).
  fl::DagRoundResult result = net_.prepare(event.client);
  if (config_.broadcast_latency == 0.0) {
    result.published = net_.commit(event.client, result, static_cast<std::size_t>(now_));
  } else {
    events_.push(Event{now_ + config_.broadcast_latency, next_seq_++,
                       Event::Kind::kBroadcast, event.client, result});
  }
  records.push_back({now_, event.client, result});
  ++total_steps_;
  schedule_client_step(event.client);
}

std::vector<AsyncStepRecord> AsyncDagSimulator::run_steps(std::size_t num_steps) {
  std::vector<AsyncStepRecord> records;
  while (records.size() < num_steps) {
    if (events_.empty()) throw std::logic_error("AsyncDagSimulator: event queue drained");
    Event event = events_.top();
    events_.pop();
    process_event(std::move(event), records);
  }
  return records;
}

std::vector<AsyncStepRecord> AsyncDagSimulator::run_until(double until) {
  std::vector<AsyncStepRecord> records;
  while (!events_.empty() && events_.top().time <= until) {
    Event event = events_.top();
    events_.pop();
    process_event(std::move(event), records);
  }
  now_ = until;
  return records;
}

std::vector<int> AsyncDagSimulator::true_clusters() const {
  std::vector<int> clusters;
  clusters.reserve(dataset_.clients.size());
  for (const auto& c : dataset_.clients) clusters.push_back(c.true_cluster);
  return clusters;
}

metrics::PurenessResult AsyncDagSimulator::approval_pureness() const {
  return metrics::approval_pureness(net_.dag(), true_clusters());
}

}  // namespace specdag::sim
