#include "sim/async_simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "data/poisoning.hpp"

namespace specdag::sim {

AsyncDagSimulator::AsyncDagSimulator(data::FederatedDataset dataset, nn::ModelFactory factory,
                                     AsyncSimulatorConfig config,
                                     std::vector<AsyncClientProfile> profiles)
    : dataset_(std::move(dataset)),
      config_(config),
      net_(std::move(factory), config.client, config.seed, config.store),
      profiles_(std::move(profiles)),
      rng_(Rng(config.seed).fork(0xA57C)) {
  dataset_.validate();
  if (config_.broadcast_latency < 0.0) {
    throw std::invalid_argument("AsyncDagSimulator: negative broadcast latency");
  }
  if (profiles_.empty()) {
    profiles_.assign(dataset_.clients.size(), AsyncClientProfile{});
  }
  if (profiles_.size() != dataset_.clients.size()) {
    throw std::invalid_argument("AsyncDagSimulator: profile count mismatch");
  }
  for (const auto& p : profiles_) {
    if (p.mean_step_interval <= 0.0) {
      throw std::invalid_argument("AsyncDagSimulator: non-positive step interval");
    }
  }
  active_.assign(dataset_.clients.size(), 1);
  clock_armed_.assign(dataset_.clients.size(), 0);
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.register_client(&dataset_.clients[i]);
    schedule_client_step(static_cast<int>(i));
  }
}

void AsyncDagSimulator::schedule_client_step(int client) {
  const double mean = profiles_[static_cast<std::size_t>(client)].mean_step_interval;
  // Exponential inter-arrival times: a Poisson clock per client.
  const double delay = -mean * std::log(1.0 - rng_.uniform());
  events_.push(Event{now_ + delay, next_seq_++, Event::Kind::kClientStep, client, {}});
  clock_armed_[static_cast<std::size_t>(client)] = 1;
}

void AsyncDagSimulator::set_client_active(int client, bool active) {
  if (client < 0 || static_cast<std::size_t>(client) >= active_.size()) {
    throw std::out_of_range("AsyncDagSimulator: unknown client " + std::to_string(client));
  }
  const auto idx = static_cast<std::size_t>(client);
  if (active_[idx] == (active ? 1 : 0)) return;
  active_[idx] = active ? 1 : 0;
  // A rejoining client restarts its clock unless a (stale) step event is
  // still queued — process_event re-arms it in that case, keeping at most
  // one clock per client.
  if (active && !clock_armed_[idx]) schedule_client_step(client);
}

bool AsyncDagSimulator::client_active(int client) const {
  if (client < 0 || static_cast<std::size_t>(client) >= active_.size()) {
    throw std::out_of_range("AsyncDagSimulator: unknown client " + std::to_string(client));
  }
  return active_[static_cast<std::size_t>(client)] != 0;
}

std::size_t AsyncDagSimulator::active_client_count() const {
  std::size_t count = 0;
  for (char a : active_) count += a != 0;
  return count;
}

void AsyncDagSimulator::begin_partition(std::vector<int> group_of_client) {
  if (group_of_client.size() != dataset_.clients.size()) {
    throw std::invalid_argument("AsyncDagSimulator::begin_partition: group count mismatch");
  }
  const auto groups = std::make_shared<const std::vector<int>>(std::move(group_of_client));
  // Transactions commit with round = floor(event time). ceil(now) masks
  // everything committed from `now` on when the partition starts on an
  // integral boundary (the scenario runner always does); starting mid-unit
  // leaves the current unit's commits visible — sub-unit fuzz the integral
  // round granularity cannot express.
  const std::size_t start_round = static_cast<std::size_t>(std::ceil(now_));
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.set_visibility_mask(
        static_cast<int>(i),
        tipsel::make_group_visibility_mask(groups, (*groups)[i], start_round));
  }
  partitioned_ = true;
}

void AsyncDagSimulator::heal_partition() {
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.set_visibility_mask(static_cast<int>(i), nullptr);
  }
  partitioned_ = false;
}

void AsyncDagSimulator::process_event(Event event, std::vector<AsyncStepRecord>& records) {
  now_ = event.time;
  if (event.kind == Event::Kind::kBroadcast) {
    // The transaction reaches the network: insert it into the DAG. The
    // gate was already evaluated against the publisher's view at prepare
    // time; the virtual round is the event time floored.
    net_.commit(event.client, event.result, static_cast<std::size_t>(now_));
    return;
  }

  // A step of a client that left the network: drop it and disarm the clock
  // (set_client_active re-arms on rejoin).
  if (!active_[static_cast<std::size_t>(event.client)]) {
    clock_armed_[static_cast<std::size_t>(event.client)] = 0;
    return;
  }

  // Client training completion: walk, average, train against the *current*
  // DAG; publish (possibly delayed by broadcast latency).
  fl::DagRoundResult result = net_.prepare(event.client);
  if (config_.broadcast_latency == 0.0) {
    result.published = net_.commit(event.client, result, static_cast<std::size_t>(now_));
  } else {
    events_.push(Event{now_ + config_.broadcast_latency, next_seq_++,
                       Event::Kind::kBroadcast, event.client, result});
  }
  records.push_back({now_, event.client, result});
  ++total_steps_;
  schedule_client_step(event.client);
}

std::vector<AsyncStepRecord> AsyncDagSimulator::run_steps(std::size_t num_steps) {
  std::vector<AsyncStepRecord> records;
  while (records.size() < num_steps) {
    if (events_.empty()) throw std::logic_error("AsyncDagSimulator: event queue drained");
    Event event = events_.top();
    events_.pop();
    process_event(std::move(event), records);
  }
  return records;
}

std::vector<AsyncStepRecord> AsyncDagSimulator::run_until(double until) {
  std::vector<AsyncStepRecord> records;
  while (!events_.empty() && events_.top().time <= until) {
    Event event = events_.top();
    events_.pop();
    process_event(std::move(event), records);
  }
  now_ = until;
  return records;
}

std::vector<int> AsyncDagSimulator::apply_poisoning(double p, int class_a, int class_b) {
  Rng poison_rng = Rng(config_.seed).fork(data::kPoisonForkTag);
  const std::vector<int> ids =
      data::poison_fraction(dataset_, p, class_a, class_b, poison_rng);
  poison_class_a_ = class_a;
  poison_class_b_ = class_b;
  // Invalidate by dataset index (handle order), not by client_id — the two
  // need not coincide for custom datasets.
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    if (dataset_.clients[i].poisoned) net_.invalidate_client_cache(static_cast<int>(i));
  }
  return ids;
}

void AsyncDagSimulator::revert_poisoning() {
  for (int idx : data::revert_poisoning(dataset_, poison_class_a_, poison_class_b_)) {
    net_.invalidate_client_cache(idx);
  }
}

std::vector<int> AsyncDagSimulator::true_clusters() const {
  std::vector<int> clusters;
  clusters.reserve(dataset_.clients.size());
  for (const auto& c : dataset_.clients) clusters.push_back(c.true_cluster);
  return clusters;
}

metrics::PurenessResult AsyncDagSimulator::approval_pureness() const {
  return metrics::approval_pureness(net_.dag(), true_clusters());
}

}  // namespace specdag::sim
