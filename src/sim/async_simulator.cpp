#include "sim/async_simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "data/poisoning.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace specdag::sim {

AsyncDagSimulator::AsyncDagSimulator(data::FederatedDataset dataset, nn::ModelFactory factory,
                                     AsyncSimulatorConfig config,
                                     std::vector<AsyncClientProfile> profiles)
    : dataset_(std::move(dataset)),
      config_(config),
      net_(std::move(factory), config.client, config.seed, config.store),
      profiles_(std::move(profiles)),
      rng_(Rng(config.seed).fork(0xA57C)) {
  dataset_.validate();
  if (config_.broadcast_latency < 0.0) {
    throw std::invalid_argument("AsyncDagSimulator: negative broadcast latency");
  }
  if (profiles_.empty()) {
    profiles_.assign(dataset_.clients.size(), AsyncClientProfile{});
  }
  if (profiles_.size() != dataset_.clients.size()) {
    throw std::invalid_argument("AsyncDagSimulator: profile count mismatch");
  }
  for (const auto& p : profiles_) {
    if (p.mean_step_interval <= 0.0) {
      throw std::invalid_argument("AsyncDagSimulator: non-positive step interval");
    }
  }
  active_.assign(dataset_.clients.size(), 1);
  clock_armed_.assign(dataset_.clients.size(), 0);
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.register_client(&dataset_.clients[i]);
    schedule_client_step(static_cast<int>(i));
  }
  // Batched prepares need a visibility gap to overlap inside (see the
  // header comment); with instantaneous broadcast the event loop is an
  // inherent chain of prepare -> commit dependencies.
  // threads == 0: one worker per hardware thread (ThreadPool's convention).
  if (config_.threads != 1 && config_.broadcast_latency > 0.0) {
    pool_.emplace(config_.threads, "prepare");
  }
}

void AsyncDagSimulator::schedule_client_step(int client) {
  const double mean = profiles_[static_cast<std::size_t>(client)].mean_step_interval;
  // Exponential inter-arrival times: a Poisson clock per client.
  const double delay = -mean * std::log(1.0 - rng_.uniform());
  events_.push(Event{now_ + delay, next_seq_++, Event::Kind::kClientStep, client, {}});
  clock_armed_[static_cast<std::size_t>(client)] = 1;
}

void AsyncDagSimulator::set_client_active(int client, bool active) {
  if (client < 0 || static_cast<std::size_t>(client) >= active_.size()) {
    throw std::out_of_range("AsyncDagSimulator: unknown client " + std::to_string(client));
  }
  const auto idx = static_cast<std::size_t>(client);
  if (active_[idx] == (active ? 1 : 0)) return;
  active_[idx] = active ? 1 : 0;
  // A rejoining client restarts its clock unless a (stale) step event is
  // still queued — process_event re-arms it in that case, keeping at most
  // one clock per client.
  if (active && !clock_armed_[idx]) schedule_client_step(client);
}

bool AsyncDagSimulator::client_active(int client) const {
  if (client < 0 || static_cast<std::size_t>(client) >= active_.size()) {
    throw std::out_of_range("AsyncDagSimulator: unknown client " + std::to_string(client));
  }
  return active_[static_cast<std::size_t>(client)] != 0;
}

std::size_t AsyncDagSimulator::active_client_count() const {
  std::size_t count = 0;
  for (char a : active_) count += a != 0;
  return count;
}

void AsyncDagSimulator::begin_partition(std::vector<int> group_of_client) {
  if (group_of_client.size() != dataset_.clients.size()) {
    throw std::invalid_argument("AsyncDagSimulator::begin_partition: group count mismatch");
  }
  const auto groups = std::make_shared<const std::vector<int>>(std::move(group_of_client));
  // Transactions commit with round = floor(event time). ceil(now) masks
  // everything committed from `now` on when the partition starts on an
  // integral boundary (the scenario runner always does); starting mid-unit
  // leaves the current unit's commits visible — sub-unit fuzz the integral
  // round granularity cannot express.
  const std::size_t start_round = static_cast<std::size_t>(std::ceil(now_));
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.set_visibility_mask(
        static_cast<int>(i),
        tipsel::make_group_visibility_mask(groups, (*groups)[i], start_round));
  }
  partition_groups_ = groups;
  partition_start_round_ = start_round;
  partitioned_ = true;
}

void AsyncDagSimulator::heal_partition() {
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.set_visibility_mask(static_cast<int>(i), nullptr);
  }
  partition_groups_.reset();
  partition_start_round_ = 0;
  partitioned_ = false;
}

void AsyncDagSimulator::process_event(Event event, std::vector<AsyncStepRecord>& records) {
  now_ = event.time;
  if (event.kind == Event::Kind::kBroadcast) {
    // The transaction reaches the network: insert it into the DAG. The
    // gate was already evaluated against the publisher's view at prepare
    // time; the virtual round is the event time floored.
    obs::ScopedSpan span(
        "commit", {{"client", static_cast<std::uint64_t>(event.client)}});
    ScopedCommitTimer commit_timer(net_.dag().store(), perf_);
    const dag::TxId published =
        net_.commit(event.client, event.result, static_cast<std::size_t>(now_));
    span.arg("tx", static_cast<std::uint64_t>(published));
    if (published != dag::kInvalidTx) ++perf_.commits;
    return;
  }

  // A step of a client that left the network: drop it and disarm the clock
  // (set_client_active re-arms on rejoin).
  if (!active_[static_cast<std::size_t>(event.client)]) {
    clock_armed_[static_cast<std::size_t>(event.client)] = 0;
    return;
  }

  // Client training completion: walk, average, train against the *current*
  // DAG; publish (possibly delayed by broadcast latency).
  fl::DagRoundResult result;
  {
    obs::ScopedSpan span(
        "prepare", {{"client", static_cast<std::uint64_t>(event.client)}});
    result = net_.prepare(event.client);
  }
  perf_.tipsel_seconds += result.walk_stats.seconds;
  perf_.train_seconds += result.train_seconds;
  perf_.eval_seconds += result.eval_seconds;
  ++perf_.prepares;
  if (config_.broadcast_latency == 0.0) {
    {
      ScopedCommitTimer commit_timer(net_.dag().store(), perf_);
      result.published = net_.commit(event.client, result, static_cast<std::size_t>(now_));
    }
    if (result.published != dag::kInvalidTx) ++perf_.commits;
  } else {
    events_.push(Event{now_ + config_.broadcast_latency, next_seq_++,
                       Event::Kind::kBroadcast, event.client, result});
  }
  records.push_back({now_, event.client, result});
  ++total_steps_;
  schedule_client_step(event.client);
}

void AsyncDagSimulator::process_step_batch(std::vector<AsyncStepRecord>& records,
                                           std::size_t max_records,
                                           std::optional<double> until) {
  // Replays the serial event loop's bookkeeping eagerly — pops, clock
  // re-arms, broadcast scheduling, record slots, RNG draws, all in exact
  // event order — while deferring only the expensive prepares. The batch
  // ends where the serial loop would hit its first cross-event dependency:
  // a broadcast (a commit the next prepare must observe), the record quota,
  // or the virtual-time horizon. Events spawned by batch members (a fast
  // client's next completion) join the batch naturally because each
  // iteration re-reads the queue top.
  struct DeferredStep {
    int client;
    std::size_t record_index;
    std::uint64_t broadcast_seq;  // the placeholder awaiting this result
  };
  std::vector<DeferredStep> steps;
  // Broadcast placeholders cannot sit in the priority queue while their
  // results are still being computed (the queue hands out copies), so the
  // placeholders are parked here and pushed once the prepares finish. The
  // loop below stops before any event the earliest parked broadcast would
  // precede in queue order, so parking never reorders commits.
  std::vector<Event> pending_broadcasts;
  std::size_t produced = 0;

  while (!events_.empty() && produced < max_records) {
    const Event& top = events_.top();
    if (top.kind != Event::Kind::kClientStep) break;
    if (until && top.time > *until) break;
    // A parked broadcast due before (or tied ahead of, by sequence) the next
    // step is a commit that step's prepare must observe: end the batch and
    // let the outer loop run it. pending_broadcasts is (time, seq)-ordered
    // by construction, so front() is the earliest.
    if (!pending_broadcasts.empty() && top > pending_broadcasts.front()) break;
    Event event = top;
    events_.pop();
    now_ = event.time;
    const auto idx = static_cast<std::size_t>(event.client);
    if (!active_[idx]) {
      clock_armed_[idx] = 0;
      continue;
    }
    const std::uint64_t broadcast_seq = next_seq_++;
    pending_broadcasts.push_back(Event{now_ + config_.broadcast_latency, broadcast_seq,
                                       Event::Kind::kBroadcast, event.client, {}});
    records.push_back({now_, event.client, {}});
    steps.push_back({event.client, records.size() - 1, broadcast_seq});
    ++produced;
    ++total_steps_;
    schedule_client_step(event.client);
  }

  // Prepare phase: all deferred steps observe the same DAG (no commit
  // happened since the batch began). Steps of the same client are chained
  // in event order — client state (model replica, walk RNG) is sequential.
  std::vector<std::vector<std::size_t>> per_client;  // indices into `steps`
  std::unordered_map<int, std::size_t> client_slot;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    auto [it, inserted] = client_slot.emplace(steps[i].client, per_client.size());
    if (inserted) per_client.emplace_back();
    per_client[it->second].push_back(i);
  }
  std::vector<fl::DagRoundResult> results(steps.size());
  if (pool_ && per_client.size() > 1 && obs::tracing_enabled()) {
    obs::trace_detail::instant("step_batch", {{"steps", steps.size()},
                                              {"chains", per_client.size()}});
  }
  if (net_.batch_exec_enabled() && !steps.empty()) {
    // Fused execution: walks run per chain, train/eval phases run as SoA
    // groups across chains (bit-identical to the per-client path).
    std::vector<std::vector<int>> chains(per_client.size());
    for (std::size_t chain = 0; chain < per_client.size(); ++chain) {
      chains[chain].reserve(per_client[chain].size());
      for (std::size_t i : per_client[chain]) chains[chain].push_back(steps[i].client);
    }
    std::vector<std::vector<fl::DagRoundResult>> prepared;
    net_.prepare_batch(chains, prepared, pool_ ? &*pool_ : nullptr);
    for (std::size_t chain = 0; chain < per_client.size(); ++chain) {
      for (std::size_t j = 0; j < per_client[chain].size(); ++j) {
        results[per_client[chain][j]] = std::move(prepared[chain][j]);
      }
    }
  } else {
    const auto prepare_chain = [&](std::size_t chain) {
      for (std::size_t i : per_client[chain]) {
        obs::ScopedSpan span(
            "prepare", {{"client", static_cast<std::uint64_t>(steps[i].client)}});
        results[i] = net_.prepare(steps[i].client);
      }
    };
    if (pool_ && per_client.size() > 1) {
      pool_->parallel_for(per_client.size(), prepare_chain);
    } else {
      for (std::size_t chain = 0; chain < per_client.size(); ++chain) prepare_chain(chain);
    }
  }

  // Publish the results into the record slots and the parked broadcasts,
  // then release the broadcasts into the queue. steps and
  // pending_broadcasts were appended in lockstep; the seq check enforces
  // that alignment.
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (pending_broadcasts[i].seq != steps[i].broadcast_seq) {
      throw std::logic_error("AsyncDagSimulator: batch broadcast misaligned");
    }
    perf_.tipsel_seconds += results[i].walk_stats.seconds;
    perf_.train_seconds += results[i].train_seconds;
    perf_.eval_seconds += results[i].eval_seconds;
    records[steps[i].record_index].result = results[i];
    pending_broadcasts[i].result = std::move(results[i]);
  }
  perf_.prepares += steps.size();
  for (Event& broadcast : pending_broadcasts) events_.push(std::move(broadcast));
}

std::vector<AsyncStepRecord> AsyncDagSimulator::run_steps(std::size_t num_steps) {
  Timer total_timer;
  std::vector<AsyncStepRecord> records;
  while (records.size() < num_steps) {
    if (events_.empty()) throw std::logic_error("AsyncDagSimulator: event queue drained");
    if (pool_ && events_.top().kind == Event::Kind::kClientStep) {
      process_step_batch(records, num_steps - records.size(), std::nullopt);
    } else {
      Event event = events_.top();
      events_.pop();
      process_event(std::move(event), records);
    }
  }
  perf_.total_seconds += total_timer.elapsed_seconds();
  return records;
}

std::vector<AsyncStepRecord> AsyncDagSimulator::run_until(double until) {
  Timer total_timer;
  std::vector<AsyncStepRecord> records;
  while (!events_.empty() && events_.top().time <= until) {
    if (pool_ && events_.top().kind == Event::Kind::kClientStep) {
      process_step_batch(records, ~std::size_t{0}, until);
    } else {
      Event event = events_.top();
      events_.pop();
      process_event(std::move(event), records);
    }
  }
  now_ = until;
  perf_.total_seconds += total_timer.elapsed_seconds();
  return records;
}

std::vector<int> AsyncDagSimulator::apply_poisoning(double p, int class_a, int class_b) {
  Rng poison_rng = Rng(config_.seed).fork(data::kPoisonForkTag);
  const std::vector<int> ids =
      data::poison_fraction(dataset_, p, class_a, class_b, poison_rng);
  poison_class_a_ = class_a;
  poison_class_b_ = class_b;
  // Invalidate by dataset index (handle order), not by client_id — the two
  // need not coincide for custom datasets.
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    if (dataset_.clients[i].poisoned) net_.invalidate_client_cache(static_cast<int>(i));
  }
  return ids;
}

void AsyncDagSimulator::revert_poisoning() {
  for (int idx : data::revert_poisoning(dataset_, poison_class_a_, poison_class_b_)) {
    net_.invalidate_client_cache(idx);
  }
}

std::vector<int> AsyncDagSimulator::true_clusters() const {
  std::vector<int> clusters;
  clusters.reserve(dataset_.clients.size());
  for (const auto& c : dataset_.clients) clusters.push_back(c.true_cluster);
  return clusters;
}

metrics::PurenessResult AsyncDagSimulator::approval_pureness() const {
  return metrics::approval_pureness(net_.dag(), true_clusters());
}

}  // namespace specdag::sim
