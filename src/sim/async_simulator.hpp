// Event-driven asynchronous simulator.
//
// The paper stresses that the Specializing DAG is inherently asynchronous —
// "each client continuously runs the training process as often as its
// resources permit, independent from all other clients" (§5.3.3) — and uses
// discrete rounds only to compare against centralized baselines. This
// simulator drops the round abstraction: each client's training completions
// follow its own exponential clock (heterogeneous rates model fast and slow
// devices), and published transactions reach the shared DAG after a
// per-transaction broadcast latency.
//
// Time is virtual (deterministic given the seed); no wall-clock sleeping.
//
// Dynamics note: broadcast latency is what gives the DAG its width in the
// asynchronous regime. With instantaneous visibility every step consumes
// two tips and adds one, so the tip set collapses towards a chain and
// clients are forced into cross-cluster approvals — specialization cannot
// emerge. Latency comparable to the clients' step interval keeps several
// transactions concurrently in flight, reproducing the concurrency the
// paper's round-based simulation provides implicitly.
// Parallel prepares: client training completions that are adjacent in the
// event queue — no broadcast (commit) event between them, all earlier than
// the first completion's own broadcast — all observe the same DAG, so they
// are prepared concurrently on a thread pool and their results applied in
// exact event order. The schedule is chosen by event times alone (never by
// thread timing), so any thread count reproduces the serial trace bit for
// bit.
#pragma once

#include <memory>
#include <optional>
#include <queue>

#include "core/specializing_dag.hpp"
#include "data/dataset.hpp"
#include "metrics/dag_metrics.hpp"
#include "sim/perf.hpp"
#include "util/thread_pool.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::sim {

struct AsyncClientProfile {
  // Mean virtual time between a client's training completions.
  double mean_step_interval = 1.0;
};

struct AsyncSimulatorConfig {
  fl::DagClientConfig client;
  // Broadcast latency applied to every published transaction (virtual time
  // from publication until it is visible in the DAG). 0 = instantaneous.
  double broadcast_latency = 0.0;
  std::uint64_t seed = 42;
  // Worker threads for the batched prepare phase (see the header comment).
  // 0 = one per hardware thread; 1 = serial. Results are bit-identical
  // across thread counts. Batching needs broadcast_latency > 0 — with
  // instantaneous visibility every completion commits before the next one
  // prepares, so execution stays serial regardless.
  std::size_t threads = 0;
  // Payload store configuration (delta encoding, LRU, eval-cache shards).
  store::StoreConfig store;
};

struct AsyncStepRecord {
  double time = 0.0;
  int client_id = -1;
  fl::DagRoundResult result;
};

class AsyncDagSimulator {
 public:
  // Client step rates default to 1.0; pass `profiles` (same length as
  // dataset.clients) for heterogeneous device speeds.
  AsyncDagSimulator(data::FederatedDataset dataset, nn::ModelFactory factory,
                    AsyncSimulatorConfig config,
                    std::vector<AsyncClientProfile> profiles = {});

  // Advances virtual time until `num_steps` client training completions have
  // been processed. Returns the records in event order.
  std::vector<AsyncStepRecord> run_steps(std::size_t num_steps);

  // Advances until virtual time `until`.
  std::vector<AsyncStepRecord> run_until(double until);

  double now() const { return now_; }
  const dag::Dag& dag() const { return net_.dag(); }
  const data::FederatedDataset& dataset() const { return dataset_; }
  core::SpecializingDag& network() { return net_; }
  std::size_t total_steps() const { return total_steps_; }

  std::vector<int> true_clusters() const;
  metrics::PurenessResult approval_pureness() const;

  // Flipped-label poisoning with the same semantics (and seed-derived victim
  // set) as DagSimulator: apply flips class_a <-> class_b for fraction `p`
  // of the clients and invalidates their caches; revert restores the
  // original labels and flags.
  std::vector<int> apply_poisoning(double p, int class_a, int class_b);
  void revert_poisoning();

  // --- network-dynamics hooks (scenario engine) ---------------------------

  // Client churn. Deactivating stops the client's training clock (its next
  // scheduled completion is discarded when it fires); reactivating restarts
  // the clock from the current virtual time.
  void set_client_active(int client, bool active);
  bool client_active(int client) const;
  std::size_t active_client_count() const;

  // Network partition with the same semantics as DagSimulator: new
  // transactions are only visible within the publisher's group until healed.
  void begin_partition(std::vector<int> group_of_client);
  void heal_partition();
  bool partitioned() const { return partitioned_; }

  const std::vector<AsyncClientProfile>& profiles() const { return profiles_; }

  // Accumulated per-phase timings (tipsel / train / eval / commit) over
  // every step processed so far. See sim/perf.hpp for bucket semantics.
  const PhaseTimings& perf() const { return perf_; }
  // Worker threads the batched prepare phase actually uses (1 = serial).
  std::size_t prepare_threads() const { return pool_ ? pool_->size() : 1; }

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  struct Event {
    double time;
    // Deterministic tie-breaks: (time, seq) ordering.
    std::uint64_t seq;
    enum class Kind { kClientStep, kBroadcast } kind;
    int client = -1;
    // For broadcast events: the prepared result awaiting DAG insertion.
    fl::DagRoundResult result;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void schedule_client_step(int client);
  void process_event(Event event, std::vector<AsyncStepRecord>& records);
  // Pops the maximal serially-equivalent run of client-step events (see the
  // header comment), prepares the active ones on the pool, and applies the
  // results in event order. `max_records` caps the records produced so
  // run_steps stops exactly where the serial loop would; `until` (if set)
  // excludes events past the virtual-time horizon.
  void process_step_batch(std::vector<AsyncStepRecord>& records, std::size_t max_records,
                          std::optional<double> until);

  data::FederatedDataset dataset_;
  AsyncSimulatorConfig config_;
  core::SpecializingDag net_;
  std::vector<AsyncClientProfile> profiles_;
  Rng rng_;
  std::optional<ThreadPool> pool_;
  PhaseTimings perf_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<char> active_;        // churn: 1 = clock running
  std::vector<char> clock_armed_;   // 1 = a kClientStep event is in flight
  bool partitioned_ = false;
  // Active partition record (see DagSimulator): the masks bake the start
  // round, so restores rebuild them from this instead of the spec.
  std::shared_ptr<const std::vector<int>> partition_groups_;
  std::size_t partition_start_round_ = 0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t total_steps_ = 0;
  int poison_class_a_ = 0;  // classes of the last apply_poisoning (for revert)
  int poison_class_b_ = 0;
};

}  // namespace specdag::sim
