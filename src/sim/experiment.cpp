#include "sim/experiment.hpp"

namespace specdag::sim {
namespace {

SimulatorConfig base_sim(std::uint64_t seed) {
  SimulatorConfig sim;
  sim.rounds = 100;           // Table 1
  sim.clients_per_round = 10; // Table 1
  sim.seed = seed;
  sim.client.alpha = 10.0;
  sim.client.selector = fl::SelectorKind::kAccuracy;
  sim.client.walk_start = tipsel::WalkStart::kGenesis;
  return sim;
}

}  // namespace

ExperimentPreset fmnist_clustered_preset(const PresetOptions& options) {
  ExperimentPreset preset;
  preset.name = "fmnist-clustered";
  data::SyntheticDigitsConfig data_config;
  data_config.seed = options.seed;
  if (options.paper_scale) {
    data_config.image_size = 28;
    data_config.num_clients = 100;
    data_config.samples_per_client = 120;
  }
  preset.dataset = data::make_fmnist_clustered(data_config);
  // Compact member of the paper's CNN family by default; the paper-exact
  // 28x28/32/64/2048 CNN at paper scale.
  preset.factory = options.paper_scale
                       ? make_femnist_cnn_paper()
                       : make_mlp_factory(shape_numel(preset.dataset.element_shape), 32, 10);
  preset.sim = base_sim(options.seed);
  preset.sim.client.train = {1, 10, 10, 0.05};  // Table 1: FMNIST column
  return preset;
}

ExperimentPreset fmnist_relaxed_preset(const PresetOptions& options) {
  ExperimentPreset preset = fmnist_clustered_preset(options);
  preset.name = "fmnist-clustered-relaxed";
  data::SyntheticDigitsConfig data_config;
  data_config.seed = options.seed;
  data_config.relax_min = 0.15;  // paper: 15-20% foreign data per cluster
  data_config.relax_max = 0.20;
  if (options.paper_scale) {
    data_config.image_size = 28;
    data_config.num_clients = 100;
    data_config.samples_per_client = 120;
  }
  preset.dataset = data::make_fmnist_clustered(data_config);
  return preset;
}

ExperimentPreset fmnist_by_author_preset(const PresetOptions& options) {
  ExperimentPreset preset;
  preset.name = "fmnist-by-author";
  data::SyntheticDigitsConfig data_config;
  data_config.seed = options.seed;
  data_config.num_clients = 30;
  data_config.samples_per_client = 80;
  if (options.paper_scale) {
    data_config.image_size = 28;
    data_config.num_clients = 100;
    data_config.samples_per_client = 120;
  }
  preset.dataset = data::make_fmnist_by_author(data_config);
  preset.factory = options.paper_scale
                       ? make_femnist_cnn_paper()
                       : make_mlp_factory(shape_numel(preset.dataset.element_shape), 32, 10);
  preset.sim = base_sim(options.seed);
  preset.sim.client.train = {1, 10, 10, 0.05};
  return preset;
}

ExperimentPreset poets_preset(const PresetOptions& options) {
  ExperimentPreset preset;
  preset.name = "poets";
  data::PoetsConfig data_config;
  data_config.seed = options.seed;
  if (options.paper_scale) {
    data_config.seq_len = 80;
    data_config.num_clients = 60;
    data_config.samples_per_client = 400;
  }
  preset.dataset = data::make_poets(data_config);
  preset.factory = options.paper_scale
                       ? make_poets_lstm_paper(data_config.vocab_size)
                       : make_lstm_factory(data_config.vocab_size, 8, 24,
                                           data_config.vocab_size);
  preset.sim = base_sim(options.seed);
  preset.sim.client.train = {1, 35, 10, 0.8};  // Table 1: Poets column
  return preset;
}

ExperimentPreset cifar_preset(const PresetOptions& options) {
  ExperimentPreset preset;
  preset.name = "cifar100-like";
  data::CifarLikeConfig data_config;
  data_config.seed = options.seed;
  if (options.paper_scale) {
    data_config.image_size = 32;
    data_config.samples_per_client = 120;
    data_config.pool_per_subclass = 256;
  }
  preset.dataset = data::make_cifar_like(data_config);
  preset.factory =
      options.paper_scale
          ? make_cifar_cnn_paper()
          : make_mlp_factory(shape_numel(preset.dataset.element_shape), 64,
                             preset.dataset.num_classes);
  preset.sim = base_sim(options.seed);
  preset.sim.client.train = {5, 45, 10, 0.01};  // Table 1: CIFAR column
  // With 20 clusters the accuracy spread between candidate models is small
  // once generalist lineages form; the spread-adaptive normalization (paper
  // Eq. 3) keeps the walk discriminative — exactly the situation §4.2
  // introduces it for.
  preset.sim.client.normalization = tipsel::Normalization::kDynamic;
  return preset;
}

ExperimentPreset fedprox_synthetic_preset(const PresetOptions& options) {
  ExperimentPreset preset;
  preset.name = "fedprox-synthetic";
  data::FedProxSyntheticConfig data_config;
  data_config.seed = options.seed;
  preset.dataset = data::make_fedprox_synthetic(data_config);
  preset.factory = make_logreg_factory(data_config.dimension, data_config.num_classes);
  preset.sim = base_sim(options.seed);
  preset.sim.rounds = 100;
  preset.sim.clients_per_round = 10;  // §5.3.3: 30 clients total, 10 active
  // The paper gives no Table 1 column for the synthetic dataset; two local
  // epochs of 20 batches let the clients' local objectives (which differ by
  // construction) actually express themselves — the regime Figures 10/11
  // study.
  preset.sim.client.train = {2, 20, 10, 0.05};
  return preset;
}

}  // namespace specdag::sim
