// Experiment presets: dataset + model + hyperparameters per paper experiment.
//
// Table 1 (paper §5.2) fixes, per dataset:
//            FMNIST-clustered   Poets   CIFAR-100
//   rounds         100           100       100
//   clients/round   10            10        10
//   local epochs     1             1         5
//   local batches   10            35        45
//   batch size      10            10        10
//   optimizer   SGD(0.05)     SGD(0.8)  SGD(0.01)
//
// The presets keep every Table 1 hyperparameter verbatim and reduce only
// the data scale (image size, sequence length, client count) so the full
// bench suite completes on CPU. Each preset has a `paper_scale()` variant
// with the full sizes for users with more compute budget.
#pragma once

#include "data/cifar_like.hpp"
#include "data/fedprox_synthetic.hpp"
#include "data/poets.hpp"
#include "data/synthetic_digits.hpp"
#include "sim/models.hpp"
#include "sim/simulator.hpp"

namespace specdag::sim {

struct ExperimentPreset {
  std::string name;
  data::FederatedDataset dataset;
  nn::ModelFactory factory;
  SimulatorConfig sim;
};

struct PresetOptions {
  std::uint64_t seed = 42;
  // Scale factor kept for future growth; presets are hand-tuned for CPU.
  bool paper_scale = false;
};

// FMNIST-clustered (paper §5.1.1): 3 class-group clusters.
ExperimentPreset fmnist_clustered_preset(const PresetOptions& options = {});

// The relaxed variant (15-20% foreign-cluster data, Figure 8).
ExperimentPreset fmnist_relaxed_preset(const PresetOptions& options = {});

// FMNIST "by author" (poisoning §5.3.4 and scalability §5.3.5 experiments).
ExperimentPreset fmnist_by_author_preset(const PresetOptions& options = {});

// Poets (paper §5.1.2): two language clusters, LSTM next-char model.
ExperimentPreset poets_preset(const PresetOptions& options = {});

// CIFAR-100-like (paper §5.1.3): 20 superclass clusters, PAM allocation.
ExperimentPreset cifar_preset(const PresetOptions& options = {});

// FedProx synthetic(0.5, 0.5) (paper §5.3.3): 30 clients, logreg model.
ExperimentPreset fedprox_synthetic_preset(const PresetOptions& options = {});

}  // namespace specdag::sim
