#include "sim/models.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/embedding.hpp"
#include "nn/lstm.hpp"

namespace specdag::sim {
namespace {

// Output spatial size after a same-padded k5 conv followed by 2x2/2 pooling.
std::size_t after_pool(std::size_t size) {
  if (size < 2) throw std::invalid_argument("model factory: image too small for pooling");
  return (size - 2) / 2 + 1;
}

}  // namespace

nn::ModelFactory make_logreg_factory(std::size_t input_dim, std::size_t num_classes) {
  return [input_dim, num_classes] {
    nn::Sequential model;
    model.add<nn::Dense>(input_dim, num_classes);
    return model;
  };
}

nn::ModelFactory make_mlp_factory(std::size_t input_dim, std::size_t hidden,
                                  std::size_t num_classes) {
  return [input_dim, hidden, num_classes] {
    nn::Sequential model;
    model.add<nn::Flatten>();
    model.add<nn::Dense>(input_dim, hidden);
    model.add<nn::ReLU>();
    model.add<nn::Dense>(hidden, num_classes);
    return model;
  };
}

nn::ModelFactory make_cnn_factory(std::size_t in_channels, std::size_t image_size,
                                  std::size_t conv1_channels, std::size_t conv2_channels,
                                  std::size_t dense_units, std::size_t num_classes) {
  const std::size_t s1 = after_pool(image_size);
  const std::size_t s2 = after_pool(s1);
  const std::size_t flat = conv2_channels * s2 * s2;
  return [=] {
    nn::Sequential model;
    model.add<nn::Conv2D>(in_channels, conv1_channels, 5);
    model.add<nn::ReLU>();
    model.add<nn::MaxPool2D>(2, 2);
    model.add<nn::Conv2D>(conv1_channels, conv2_channels, 5);
    model.add<nn::ReLU>();
    model.add<nn::MaxPool2D>(2, 2);
    model.add<nn::Flatten>();
    model.add<nn::Dense>(flat, dense_units);
    model.add<nn::ReLU>();
    model.add<nn::Dense>(dense_units, num_classes);
    return model;
  };
}

nn::ModelFactory make_cifar_cnn_factory(std::size_t in_channels, std::size_t image_size,
                                        std::size_t conv1, std::size_t conv2, std::size_t conv3,
                                        std::size_t dense1, std::size_t dense2,
                                        std::size_t num_classes) {
  const std::size_t s1 = after_pool(image_size);
  const std::size_t s2 = after_pool(s1);
  const std::size_t s3 = after_pool(s2);
  const std::size_t flat = conv3 * s3 * s3;
  return [=] {
    nn::Sequential model;
    model.add<nn::Conv2D>(in_channels, conv1, 5);
    model.add<nn::ReLU>();
    model.add<nn::MaxPool2D>(2, 2);
    model.add<nn::Conv2D>(conv1, conv2, 5);
    model.add<nn::ReLU>();
    model.add<nn::MaxPool2D>(2, 2);
    model.add<nn::Conv2D>(conv2, conv3, 5);
    model.add<nn::ReLU>();
    model.add<nn::MaxPool2D>(2, 2);
    model.add<nn::Flatten>();
    model.add<nn::Dense>(flat, dense1);
    model.add<nn::ReLU>();
    model.add<nn::Dense>(dense1, dense2);
    model.add<nn::ReLU>();
    model.add<nn::Dense>(dense2, num_classes);
    return model;
  };
}

nn::ModelFactory make_lstm_factory(std::size_t vocab_size, std::size_t embedding_dim,
                                   std::size_t lstm_hidden, std::size_t num_classes) {
  return [=] {
    nn::Sequential model;
    model.add<nn::Embedding>(vocab_size, embedding_dim);
    model.add<nn::LSTM>(embedding_dim, lstm_hidden);
    model.add<nn::Dense>(lstm_hidden, num_classes);
    return model;
  };
}

nn::ModelFactory make_femnist_cnn_paper() {
  // §5.2: two ReLU conv layers (k5, 32 and 64 filters), each followed by
  // 2x2/2 max pooling, a 2048-unit ReLU dense layer, softmax over 10 digits.
  return make_cnn_factory(1, 28, 32, 64, 2048, 10);
}

nn::ModelFactory make_cifar_cnn_paper() {
  // §5.2: the FEMNIST convs plus a third 128-filter conv, then 256/128
  // hidden dense layers and a 100-way output.
  return make_cifar_cnn_factory(3, 32, 32, 64, 128, 256, 128, 100);
}

nn::ModelFactory make_poets_lstm_paper(std::size_t vocab_size) {
  // §5.2: embedding dim 8 from the 80-char sequence into a 256-unit LSTM.
  return make_lstm_factory(vocab_size, 8, 256, vocab_size);
}

}  // namespace specdag::sim
