// Model factories for the paper's three tasks (§5.2) plus compact variants.
//
// The paper-faithful architectures (28x28 FEMNIST CNN with 2048-unit dense,
// 256-unit LSTM, CIFAR CNN) are provided for completeness and exercised by
// unit tests; the experiment presets default to width/size-reduced variants
// of the same architecture family so the full evaluation suite runs on CPU
// in minutes (see DESIGN.md §2 on substitutions).
#pragma once

#include "nn/model.hpp"
#include "tensor/tensor.hpp"

namespace specdag::sim {

// Plain multinomial logistic regression (FedProx synthetic experiments use
// exactly this model in the FedProx paper).
nn::ModelFactory make_logreg_factory(std::size_t input_dim, std::size_t num_classes);

// Two-layer MLP used as a compact stand-in for dense image classifiers.
nn::ModelFactory make_mlp_factory(std::size_t input_dim, std::size_t hidden,
                                  std::size_t num_classes);

// CNN of the paper's FEMNIST family: conv(k5) -> pool -> conv(k5) -> pool ->
// dense -> dense(num_classes). Channel and dense widths are parameters.
nn::ModelFactory make_cnn_factory(std::size_t in_channels, std::size_t image_size,
                                  std::size_t conv1_channels, std::size_t conv2_channels,
                                  std::size_t dense_units, std::size_t num_classes);

// CNN of the paper's CIFAR family: three conv+pool stages, then two hidden
// dense layers (paper: 256 and 128) and the output layer.
nn::ModelFactory make_cifar_cnn_factory(std::size_t in_channels, std::size_t image_size,
                                        std::size_t conv1, std::size_t conv2, std::size_t conv3,
                                        std::size_t dense1, std::size_t dense2,
                                        std::size_t num_classes);

// Embedding -> LSTM -> dense head for next-character prediction (the Poets
// model; paper: embedding dim 8, 256 LSTM units).
nn::ModelFactory make_lstm_factory(std::size_t vocab_size, std::size_t embedding_dim,
                                   std::size_t lstm_hidden, std::size_t num_classes);

// Paper-exact architectures (Table/§5.2): FEMNIST CNN on 28x28 with 32/64
// filters and a 2048-unit dense layer; CIFAR CNN with 32/64/128 filters and
// 256/128 dense; Poets LSTM with embedding 8 and 256 hidden units.
nn::ModelFactory make_femnist_cnn_paper();
nn::ModelFactory make_cifar_cnn_paper();
nn::ModelFactory make_poets_lstm_paper(std::size_t vocab_size);

}  // namespace specdag::sim
