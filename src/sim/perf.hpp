// Per-phase timing breakdown of a simulation run.
//
// Both simulators account wall time into four buckets per client step:
//   * tipsel — biased random walks (approval walks + the reference walk),
//   * train  — local SGD on the averaged parent model,
//   * eval   — trained/reference model evaluations outside the walks
//              (per-step candidate evaluations inside a walk count as
//              tipsel; they are part of Algorithm 1's walk cost),
//   * commit — serialized DAG appends (payload interning included).
//
// tipsel/train/eval are summed across clients, so with a parallel prepare
// phase they report aggregate busy time (they can exceed the wall clock);
// commit is always serialized and therefore wall time.
#pragma once

#include <cstddef>

namespace specdag::sim {

struct PhaseTimings {
  double tipsel_seconds = 0.0;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;
  double commit_seconds = 0.0;
  std::size_t prepares = 0;  // client steps prepared
  std::size_t commits = 0;   // transactions appended through the simulator

  void merge(const PhaseTimings& other) {
    tipsel_seconds += other.tipsel_seconds;
    train_seconds += other.train_seconds;
    eval_seconds += other.eval_seconds;
    commit_seconds += other.commit_seconds;
    prepares += other.prepares;
    commits += other.commits;
  }
};

}  // namespace specdag::sim
