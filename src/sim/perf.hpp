// Per-phase timing breakdown of a simulation run.
//
// Both simulators account wall time into five buckets per client step:
//   * tipsel — biased random walks (approval walks + the reference walk),
//   * train  — local SGD on the averaged parent model,
//   * eval   — trained/reference model evaluations outside the walks
//              (per-step candidate evaluations inside a walk count as
//              tipsel; they are part of Algorithm 1's walk cost),
//   * commit — serialized DAG appends (payload hashing and bookkeeping,
//              but NOT delta encoding),
//   * encode — the store's XOR delta codec plus the base materialization it
//              needs. Synchronous encoding runs inline inside the commit
//              section (the simulators subtract it out of `commit` via
//              ScopedCommitTimer); with store.async_encode it runs on
//              background workers and overlaps the other phases (the
//              scenario runner overwrites this bucket with the store's
//              complete measurement, which also covers encode work outside
//              the commit sections, e.g. attacker-published payloads).
//
// tipsel/train/eval are summed across clients, so with a parallel prepare
// phase they report aggregate busy time (they can exceed the wall clock);
// commit is always serialized and therefore wall time. total_seconds is the
// wall clock spent inside run_round()/run_steps()/run_until() — in a serial
// synchronous run the five buckets partition it (up to scheduling overhead
// outside the buckets), which tests/test_scenario.cpp pins.
//
// Because busy time and wall time mix, a raw bucket comparison across thread
// counts is misleading; utilization() normalizes the mix into one number
// (busy-time sum over wall x threads) that summary.perf reports directly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "store/model_store.hpp"
#include "util/timer.hpp"

namespace specdag::sim {

struct PhaseTimings {
  double tipsel_seconds = 0.0;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;
  double commit_seconds = 0.0;
  double encode_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t prepares = 0;  // client steps prepared
  std::size_t commits = 0;   // transactions appended through the simulator

  double phase_sum_seconds() const {
    return tipsel_seconds + train_seconds + eval_seconds + commit_seconds + encode_seconds;
  }

  // Fraction of the available CPU budget (wall x threads) the phase buckets
  // account for. 1.0 = every worker busy in an accounted phase for the whole
  // run; serial runs read it as "fraction of wall time inside the buckets".
  double utilization(std::size_t threads) const {
    if (total_seconds <= 0.0 || threads == 0) return 0.0;
    return phase_sum_seconds() / (total_seconds * static_cast<double>(threads));
  }

  void merge(const PhaseTimings& other) {
    tipsel_seconds += other.tipsel_seconds;
    train_seconds += other.train_seconds;
    eval_seconds += other.eval_seconds;
    commit_seconds += other.commit_seconds;
    encode_seconds += other.encode_seconds;
    total_seconds += other.total_seconds;
    prepares += other.prepares;
    commits += other.commits;
  }
};

// Times one serialized commit section, crediting the delta-encode work the
// store did inline during it to the `encode` bucket instead of `commit`
// (the attribution fix: encoding is codec cost, not append cost).
class ScopedCommitTimer {
 public:
  ScopedCommitTimer(const store::ModelStore& store, PhaseTimings& perf)
      : store_(store), perf_(perf), inline_before_(store.encode_nanos_inline()) {}

  ~ScopedCommitTimer() {
    const double inline_encode =
        static_cast<double>(store_.encode_nanos_inline() - inline_before_) * 1e-9;
    perf_.commit_seconds += std::max(0.0, timer_.elapsed_seconds() - inline_encode);
    perf_.encode_seconds += inline_encode;
  }

  ScopedCommitTimer(const ScopedCommitTimer&) = delete;
  ScopedCommitTimer& operator=(const ScopedCommitTimer&) = delete;

 private:
  const store::ModelStore& store_;
  PhaseTimings& perf_;
  std::uint64_t inline_before_;
  Timer timer_;
};

}  // namespace specdag::sim
