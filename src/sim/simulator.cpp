#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace specdag::sim {

double RoundRecord::mean_trained_accuracy() const {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += r.trained_eval.accuracy;
  return sum / static_cast<double>(results.size());
}

double RoundRecord::mean_trained_loss() const {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += r.trained_eval.loss;
  return sum / static_cast<double>(results.size());
}

double RoundRecord::mean_walk_seconds() const {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += r.walk_stats.seconds;
  return sum / static_cast<double>(results.size());
}

std::size_t RoundRecord::publish_count() const {
  std::size_t count = 0;
  for (const auto& r : results) {
    if (r.did_publish()) ++count;
  }
  return count;
}

DagSimulator::DagSimulator(data::FederatedDataset dataset, nn::ModelFactory factory,
                           SimulatorConfig config)
    : dataset_(std::move(dataset)),
      config_(config),
      factory_(factory),
      net_(std::move(factory), config.client, config.seed, config.store),
      round_rng_(Rng(config.seed).fork(0x520D)),
      louvain_rng_(Rng(config.seed).fork(0x10CA)) {
  dataset_.validate();
  if (config_.clients_per_round == 0 || config_.clients_per_round > dataset_.clients.size()) {
    throw std::invalid_argument("DagSimulator: bad clients_per_round");
  }
  for (const auto& client : dataset_.clients) {
    net_.register_client(&client);
  }
  active_.assign(dataset_.clients.size(), 1);
  // threads == 0: one worker per hardware thread (ThreadPool's convention);
  // threads == 1 degenerates to the serial path — no pool at all.
  if (config_.parallel_prepare && config_.threads != 1) {
    pool_.emplace(config_.threads, "prepare");
  }
}

void DagSimulator::set_client_active(int client, bool active) {
  if (client < 0 || static_cast<std::size_t>(client) >= active_.size()) {
    throw std::out_of_range("DagSimulator: unknown client " + std::to_string(client));
  }
  active_[static_cast<std::size_t>(client)] = active ? 1 : 0;
}

bool DagSimulator::client_active(int client) const {
  if (client < 0 || static_cast<std::size_t>(client) >= active_.size()) {
    throw std::out_of_range("DagSimulator: unknown client " + std::to_string(client));
  }
  return active_[static_cast<std::size_t>(client)] != 0;
}

std::size_t DagSimulator::active_client_count() const {
  std::size_t count = 0;
  for (char a : active_) count += a != 0;
  return count;
}

void DagSimulator::begin_partition(std::vector<int> group_of_client) {
  if (group_of_client.size() != dataset_.clients.size()) {
    throw std::invalid_argument("DagSimulator::begin_partition: group count mismatch");
  }
  const auto groups = std::make_shared<const std::vector<int>>(std::move(group_of_client));
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.set_visibility_mask(
        static_cast<int>(i), tipsel::make_group_visibility_mask(groups, (*groups)[i], round_));
  }
  partition_groups_ = groups;
  partition_start_round_ = round_;
  partitioned_ = true;
}

void DagSimulator::heal_partition() {
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    net_.set_visibility_mask(static_cast<int>(i), nullptr);
  }
  partition_groups_.reset();
  partition_start_round_ = 0;
  partitioned_ = false;
}

void DagSimulator::flush_due_commits() {
  std::vector<PendingCommit> still_pending;
  {
    ScopedCommitTimer commit_timer(net_.dag().store(), perf_);
    // Pending commits are already in deterministic (insertion) order.
    for (auto& pending : pending_) {
      if (pending.release_round <= round_) {
        if (net_.commit(pending.handle, pending.result, pending.publish_round) !=
            dag::kInvalidTx) {
          ++perf_.commits;
        }
      } else {
        still_pending.push_back(std::move(pending));
      }
    }
  }
  pending_ = std::move(still_pending);
}

const RoundRecord& DagSimulator::run_round() {
  obs::ScopedSpan round_span("round", {{"round", round_}});
  Timer round_timer;
  if (config_.visibility_delay_rounds > 0) flush_due_commits();
  // Sample among the currently active clients (churn support). With everyone
  // active this draws exactly the same indices as sampling [0, n) directly,
  // so pre-churn histories stay bit-identical to the original simulator.
  std::vector<std::size_t> pool;
  pool.reserve(dataset_.clients.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i]) pool.push_back(i);
  }
  if (pool.empty()) throw std::logic_error("DagSimulator: no active clients");
  const std::size_t draw = std::min(config_.clients_per_round, pool.size());
  std::vector<std::size_t> active = round_rng_.sample_without_replacement(pool.size(), draw);
  for (std::size_t& idx : active) idx = pool[idx];

  RoundRecord record;
  record.round = round_;
  record.results.resize(active.size());

  // Prepare phase: all active clients walk/train against the same DAG
  // snapshot (transactions of this round become visible next round). With
  // fused execution enabled the clients' train/eval phases run as SoA
  // groups (bit-identical to the per-client path); otherwise each client
  // prepares on its own.
  if (net_.batch_exec_enabled()) {
    std::vector<std::vector<int>> chains(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      chains[i] = {static_cast<int>(active[i])};
    }
    std::vector<std::vector<fl::DagRoundResult>> prepared;
    net_.prepare_batch(chains, prepared, pool_ ? &*pool_ : nullptr);
    for (std::size_t i = 0; i < active.size(); ++i) {
      record.results[i] = std::move(prepared[i][0]);
    }
  } else if (pool_) {
    pool_->parallel_for(active.size(), [&](std::size_t i) {
      obs::ScopedSpan span("prepare", {{"round", round_}, {"client", active[i]}});
      record.results[i] = net_.prepare(static_cast<int>(active[i]));
    });
  } else {
    for (std::size_t i = 0; i < active.size(); ++i) {
      obs::ScopedSpan span("prepare", {{"round", round_}, {"client", active[i]}});
      record.results[i] = net_.prepare(static_cast<int>(active[i]));
    }
  }

  // Phase accounting: tipsel/train/eval are summed over the prepared
  // clients (aggregate busy time under a parallel prepare).
  for (const auto& result : record.results) {
    perf_.tipsel_seconds += result.walk_stats.seconds;
    perf_.train_seconds += result.train_seconds;
    perf_.eval_seconds += result.eval_seconds;
  }
  perf_.prepares += record.results.size();

  // Commit phase: deterministic order (ascending client index). With a
  // visibility delay the prepared transactions are queued instead and enter
  // the DAG `visibility_delay_rounds` rounds later (their `published` id in
  // the record stays invalid — the publisher cannot observe it yet either).
  std::vector<std::size_t> order(active.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return active[a] < active[b]; });
  {
    ScopedCommitTimer commit_timer(net_.dag().store(), perf_);
    for (std::size_t i : order) {
      if (config_.visibility_delay_rounds == 0) {
        obs::ScopedSpan span("commit", {{"round", round_}, {"client", active[i]}});
        record.results[i].published =
            net_.commit(static_cast<int>(active[i]), record.results[i], round_);
        span.arg("tx", static_cast<std::uint64_t>(record.results[i].published));
        if (record.results[i].did_publish()) ++perf_.commits;
      } else {
        pending_.push_back({static_cast<int>(active[i]), record.results[i], round_,
                            round_ + config_.visibility_delay_rounds});
      }
    }
  }

  ++round_;
  if (!config_.keep_history) history_.clear();
  history_.push_back(std::move(record));
  perf_.total_seconds += round_timer.elapsed_seconds();
  return history_.back();
}

void DagSimulator::run_rounds(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) run_round();
}

std::vector<int> DagSimulator::apply_poisoning(double p, int class_a, int class_b) {
  Rng poison_rng = Rng(config_.seed).fork(data::kPoisonForkTag);
  const std::vector<int> ids =
      data::poison_fraction(dataset_, p, class_a, class_b, poison_rng);
  poison_class_a_ = class_a;
  poison_class_b_ = class_b;
  // The poisoned clients' local data changed: cached model accuracies are
  // stale for them. (Other clients' caches stay valid — their data did not
  // change; new poisoned *transactions* are evaluated fresh anyway.)
  // Invalidate by dataset index — client handles are registration order, and
  // poison_fraction returns client_id values, which need not match.
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    if (dataset_.clients[i].poisoned) net_.invalidate_client_cache(static_cast<int>(i));
  }
  return ids;
}

void DagSimulator::revert_poisoning() {
  for (int idx : data::revert_poisoning(dataset_, poison_class_a_, poison_class_b_)) {
    net_.invalidate_client_cache(idx);
  }
}

std::vector<int> DagSimulator::true_clusters() const {
  std::vector<int> clusters;
  clusters.reserve(dataset_.clients.size());
  for (const auto& c : dataset_.clients) clusters.push_back(c.true_cluster);
  return clusters;
}

metrics::PurenessResult DagSimulator::approval_pureness() const {
  return metrics::approval_pureness(net_.dag(), true_clusters());
}

metrics::LouvainResult DagSimulator::louvain_communities() {
  const metrics::ClientGraph graph =
      metrics::build_client_graph(net_.dag(), dataset_.clients.size());
  return metrics::louvain(graph, louvain_rng_);
}

double DagSimulator::client_graph_modularity() {
  return louvain_communities().modularity;
}

std::vector<fl::EvalResult> DagSimulator::evaluate_consensus_all() {
  std::vector<fl::EvalResult> evals(dataset_.clients.size());
  nn::Sequential replica = factory_();
  for (std::size_t i = 0; i < dataset_.clients.size(); ++i) {
    const nn::WeightVector weights = net_.consensus_weights(static_cast<int>(i));
    evals[i] = fl::evaluate_weights_on_test(replica, weights, dataset_.clients[i]);
  }
  return evals;
}

}  // namespace specdag::sim
