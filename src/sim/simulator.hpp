// Round-based simulator (paper §5.3: "For simplicity, we simulate the
// distributed training process in discrete rounds").
//
// Each round, `clients_per_round` clients are sampled; they prepare their
// transactions concurrently against the same DAG snapshot (this models the
// paper's concurrently-active clients, the driver of the Figure 15
// scalability result) and the prepared transactions are committed at the
// end of the round in deterministic order.
#pragma once

#include <memory>
#include <optional>

#include "core/specializing_dag.hpp"
#include "data/poisoning.hpp"
#include "metrics/community.hpp"
#include "metrics/dag_metrics.hpp"
#include "sim/perf.hpp"
#include "util/thread_pool.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::sim {

struct SimulatorConfig {
  fl::DagClientConfig client;
  std::size_t rounds = 100;
  std::size_t clients_per_round = 10;
  bool parallel_prepare = true;
  // Worker threads for the parallel prepare phase. 0 = one per hardware
  // thread; 1 = serial (equivalent to parallel_prepare = false). Results
  // are bit-identical across thread counts: prepares are independent and
  // commits stay serialized in client order.
  std::size_t threads = 0;
  // Network propagation model: transactions published in round r become
  // visible to other clients' walks in round r + delay. 0 models the
  // paper's "ideal network conditions"; larger values simulate slow
  // broadcast (the §5.3.5 caveat).
  std::size_t visibility_delay_rounds = 0;
  std::uint64_t seed = 42;
  // Payload store configuration (delta encoding, LRU, eval-cache shards).
  store::StoreConfig store;
  // Keep every RoundRecord (with its full trained payloads) in history().
  // Disable for long/large runs that only consume run_round()'s return
  // value — only the latest round is retained then.
  bool keep_history = true;
};

struct RoundRecord {
  // Note: with SimulatorConfig::keep_history disabled, the RoundRecord&
  // returned by run_round() is only valid until the next run_round() call
  // (only the latest record is retained).
  std::size_t round = 0;
  std::vector<fl::DagRoundResult> results;  // one per active client

  double mean_trained_accuracy() const;
  double mean_trained_loss() const;
  double mean_walk_seconds() const;
  std::size_t publish_count() const;
};

class DagSimulator {
 public:
  // The simulator owns the dataset (poisoning mutates client shards
  // mid-experiment) and registers one DAG client per dataset client.
  DagSimulator(data::FederatedDataset dataset, nn::ModelFactory factory, SimulatorConfig config);

  // Runs one round and records it. Returns the record.
  const RoundRecord& run_round();

  // Runs `n` rounds.
  void run_rounds(std::size_t n);

  // Applies a flipped-label attack to fraction `p` of the clients and
  // invalidates their accuracy caches (paper §5.3.4: attack starts after
  // round 100). Returns poisoned client ids.
  std::vector<int> apply_poisoning(double p, int class_a, int class_b);

  // Reverts an earlier apply_poisoning: restores the original labels (the
  // swap is its own inverse), clears the poisoned flags, and invalidates the
  // affected caches again. Transactions published while poisoned keep their
  // poisoned_publisher mark — history is immutable.
  void revert_poisoning();

  // --- network-dynamics hooks (scenario engine) ---------------------------

  // Client churn: inactive clients are excluded from the per-round sample
  // (they "left the network"); reactivating models a rejoin. When fewer than
  // `clients_per_round` clients are active, all active clients run.
  void set_client_active(int client, bool active);
  bool client_active(int client) const;
  std::size_t active_client_count() const;

  // Network partition: clients in different groups stop seeing each other's
  // *new* transactions (anything published before the partition was already
  // broadcast and stays visible). `group_of_client` must assign one group
  // per client. heal_partition() restores full visibility for everyone.
  void begin_partition(std::vector<int> group_of_client);
  void heal_partition();
  bool partitioned() const { return partitioned_; }

  // --- evaluation helpers -------------------------------------------------

  std::vector<int> true_clusters() const;

  metrics::PurenessResult approval_pureness() const;
  metrics::LouvainResult louvain_communities();
  double client_graph_modularity();

  // Evaluates each client's *consensus* model on its local test data (the
  // personalized model a participant would use for inference).
  std::vector<fl::EvalResult> evaluate_consensus_all();

  const dag::Dag& dag() const { return net_.dag(); }
  const data::FederatedDataset& dataset() const { return dataset_; }
  core::SpecializingDag& network() { return net_; }
  const std::vector<RoundRecord>& history() const { return history_; }
  std::size_t current_round() const { return round_; }

  // Accumulated per-phase timings (tipsel / train / eval / commit) over
  // every round run so far. See sim/perf.hpp for bucket semantics.
  const PhaseTimings& perf() const { return perf_; }
  // Worker threads the prepare phase actually uses (1 = serial).
  std::size_t prepare_threads() const { return pool_ ? pool_->size() : 1; }

  // Transactions prepared but not yet visible (visibility_delay_rounds > 0).
  std::size_t pending_transactions() const { return pending_.size(); }

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  struct PendingCommit {
    int handle;
    fl::DagRoundResult result;
    std::size_t publish_round;
    std::size_t release_round;
  };

  void flush_due_commits();

  data::FederatedDataset dataset_;
  SimulatorConfig config_;
  nn::ModelFactory factory_;
  core::SpecializingDag net_;
  Rng round_rng_;
  Rng louvain_rng_;
  std::optional<ThreadPool> pool_;
  PhaseTimings perf_;
  std::vector<RoundRecord> history_;
  std::vector<PendingCommit> pending_;
  std::vector<char> active_;  // churn: 1 = participating this experiment phase
  bool partitioned_ = false;
  // The active partition's grouping and start round — the inputs the
  // visibility masks were built from. The masks bake the round the
  // partition began at, so a checkpoint restore must rebuild them from
  // this record rather than from the spec alone.
  std::shared_ptr<const std::vector<int>> partition_groups_;
  std::size_t partition_start_round_ = 0;
  std::size_t round_ = 0;
  int poison_class_a_ = 0;  // classes of the last apply_poisoning (for revert)
  int poison_class_b_ = 0;
};

}  // namespace specdag::sim
