#include "snapshot/access.hpp"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "core/specializing_dag.hpp"
#include "dag/dag.hpp"
#include "scenario/attacks.hpp"
#include "sim/async_simulator.hpp"
#include "sim/simulator.hpp"
#include "store/eval_cache.hpp"
#include "store/model_store.hpp"
#include "tipsel/tip_selector.hpp"

namespace specdag::snapshot {
namespace {

void save_sizes(Writer& w, const std::vector<std::size_t>& v) {
  w.u64(v.size());
  for (std::size_t x : v) w.u64(x);
}

std::vector<std::size_t> load_sizes(Reader& r) {
  const std::uint64_t n = r.u64();
  std::vector<std::size_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(static_cast<std::size_t>(r.u64()));
  return v;
}

void save_chars(Writer& w, const std::vector<char>& v) {
  w.u64(v.size());
  for (char c : v) w.u8(static_cast<std::uint8_t>(c));
}

void load_chars_into(Reader& r, std::vector<char>& v, const char* what) {
  const std::uint64_t n = r.u64();
  if (n != v.size()) {
    throw SnapshotError(std::string("snapshot: ") + what + " count mismatch (checkpoint has " +
                        std::to_string(n) + ", simulator has " + std::to_string(v.size()) + ")");
  }
  for (auto& c : v) c = static_cast<char>(r.u8());
}

void save_weights_ptr(Writer& w, const store::WeightsPtr& weights) {
  w.u8(weights ? 1 : 0);
  if (weights) w.vec_f32(*weights);
}

store::WeightsPtr load_weights_ptr(Reader& r) {
  if (r.u8() == 0) return nullptr;
  return std::make_shared<const nn::WeightVector>(r.vec_f32());
}

void save_partition(Writer& w, const std::shared_ptr<const std::vector<int>>& groups,
                    std::size_t start_round) {
  w.u8(groups ? 1 : 0);
  if (!groups) return;
  w.u64(groups->size());
  for (int g : *groups) w.i64(g);
  w.u64(start_round);
}

// Returns the restored grouping (null when no partition was active).
std::shared_ptr<const std::vector<int>> load_partition(Reader& r, std::size_t& start_round) {
  if (r.u8() == 0) return nullptr;
  const std::uint64_t n = r.u64();
  std::vector<int> groups;
  groups.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) groups.push_back(static_cast<int>(r.i64()));
  start_round = static_cast<std::size_t>(r.u64());
  return std::make_shared<const std::vector<int>>(std::move(groups));
}

// Reinstalls the per-client visibility masks a partition had built. The
// masks bake the partition's start round, so they are rebuilt from the
// recorded grouping rather than derived from the spec.
void install_partition(core::SpecializingDag& net, std::size_t num_clients,
                       const std::shared_ptr<const std::vector<int>>& groups,
                       std::size_t start_round) {
  if (groups && groups->size() != num_clients) {
    throw SnapshotError("snapshot: partition group count mismatch");
  }
  for (std::size_t i = 0; i < num_clients; ++i) {
    net.set_visibility_mask(
        static_cast<int>(i),
        groups ? tipsel::make_group_visibility_mask(groups, (*groups)[i], start_round)
               : tipsel::VisibilityMask{});
  }
}

}  // namespace

void Access::save_result(Writer& w, const fl::DagRoundResult& result) {
  w.i64(result.client_id);
  w.u64(result.published);
  w.u64(result.parents.size());
  for (dag::TxId p : result.parents) w.u64(p);
  w.u64(result.reference);
  save_weights_ptr(w, result.trained_weights);
  save_weights_ptr(w, result.averaged_base);
  for (const fl::EvalResult* eval : {&result.trained_eval, &result.reference_eval}) {
    w.f64(eval->loss);
    w.f64(eval->accuracy);
    w.u64(eval->num_examples);
  }
  w.f64(result.train_loss);
  w.u64(result.walk_stats.steps);
  w.u64(result.walk_stats.evaluations);
  w.f64(result.walk_stats.seconds);
  w.f64(result.train_seconds);
  w.f64(result.eval_seconds);
}

fl::DagRoundResult Access::load_result(Reader& r) {
  fl::DagRoundResult result;
  result.client_id = static_cast<int>(r.i64());
  result.published = r.u64();
  const std::uint64_t num_parents = r.u64();
  result.parents.reserve(static_cast<std::size_t>(num_parents));
  for (std::uint64_t i = 0; i < num_parents; ++i) result.parents.push_back(r.u64());
  result.reference = r.u64();
  result.trained_weights = load_weights_ptr(r);
  result.averaged_base = load_weights_ptr(r);
  for (fl::EvalResult* eval : {&result.trained_eval, &result.reference_eval}) {
    eval->loss = r.f64();
    eval->accuracy = r.f64();
    eval->num_examples = static_cast<std::size_t>(r.u64());
  }
  result.train_loss = r.f64();
  result.walk_stats.steps = static_cast<std::size_t>(r.u64());
  result.walk_stats.evaluations = static_cast<std::size_t>(r.u64());
  result.walk_stats.seconds = r.f64();
  result.train_seconds = r.f64();
  result.eval_seconds = r.f64();
  return result;
}

// --- model store ------------------------------------------------------------

void Access::save_store(Writer& w, const store::ModelStore& store) {
  using EntryState = store::ModelStore::EntryState;
  std::shared_lock lock(store.entries_mutex_);
  w.u64(store.entries_.size());
  for (const auto& entry : store.entries_) {
    if (entry.state == EntryState::kEncoding) {
      throw SnapshotError(
          "snapshot: store has unsettled async encodes — drain() before checkpointing");
    }
    w.u64(entry.hash.hi);
    w.u64(entry.hash.lo);
    w.u8(static_cast<std::uint8_t>(entry.state));
    w.u32(entry.num_floats);
    w.u32(entry.chain_depth);
    w.u64(entry.bases.size());
    for (store::PayloadId base : entry.bases) w.u32(base);
    if (entry.state == EntryState::kDelta) {
      w.bytes(entry.encoded);
    } else {
      if (!entry.raw) throw SnapshotError("snapshot: anchor entry without raw payload");
      w.vec_f32(*entry.raw);
    }
  }
  w.u64(store.full_payload_bytes_);
  w.u64(store.resident_payload_bytes_);
  w.u64(store.dedup_hits_);
  w.u64(store.anchor_count_);
  w.u64(store.async_encoded_);
  {
    std::lock_guard encode_lock(store.encode_mutex_);
    w.u64(store.peak_pending_);
  }
}

void Access::restore_store(Reader& r, store::ModelStore& store) {
  using EntryState = store::ModelStore::EntryState;
  std::unique_lock lock(store.entries_mutex_);
  {
    std::lock_guard encode_lock(store.encode_mutex_);
    if (!store.unsettled_.empty()) {
      throw SnapshotError("snapshot: cannot restore into a store with pending encodes");
    }
  }
  store.entries_.clear();
  store.by_hash_.clear();
  const std::uint64_t num_entries = r.u64();
  store.entries_.reserve(static_cast<std::size_t>(num_entries));
  for (std::uint64_t id = 0; id < num_entries; ++id) {
    store::ModelStore::Entry entry;
    entry.hash.hi = r.u64();
    entry.hash.lo = r.u64();
    const std::uint8_t state = r.u8();
    if (state != static_cast<std::uint8_t>(EntryState::kAnchor) &&
        state != static_cast<std::uint8_t>(EntryState::kDelta)) {
      throw SnapshotError("snapshot: corrupt store entry state " + std::to_string(state));
    }
    entry.state = static_cast<EntryState>(state);
    entry.num_floats = r.u32();
    entry.chain_depth = r.u32();
    const std::uint64_t num_bases = r.u64();
    entry.bases.reserve(static_cast<std::size_t>(num_bases));
    for (std::uint64_t i = 0; i < num_bases; ++i) {
      const store::PayloadId base = r.u32();
      if (base >= id) throw SnapshotError("snapshot: store entry base out of order");
      entry.bases.push_back(base);
    }
    if (entry.state == EntryState::kDelta) {
      entry.encoded = r.bytes();
    } else {
      auto raw = std::make_shared<nn::WeightVector>(r.vec_f32());
      if (raw->size() != entry.num_floats) {
        throw SnapshotError("snapshot: store entry payload length mismatch");
      }
      entry.raw = std::move(raw);
    }
    // by_hash_ is populated in id order — the same insertion history the
    // original store built up, so re-serialization is byte-identical.
    store.by_hash_.emplace(entry.hash, static_cast<store::PayloadId>(id));
    store.entries_.push_back(std::move(entry));
  }
  store.full_payload_bytes_ = static_cast<std::size_t>(r.u64());
  store.resident_payload_bytes_ = static_cast<std::size_t>(r.u64());
  store.dedup_hits_ = static_cast<std::size_t>(r.u64());
  store.anchor_count_ = static_cast<std::size_t>(r.u64());
  store.async_encoded_ = static_cast<std::size_t>(r.u64());
  {
    std::lock_guard encode_lock(store.encode_mutex_);
    store.peak_pending_ = static_cast<std::size_t>(r.u64());
  }
  // Deterministic-rebuild rule: the materialization LRU restarts empty (it
  // only holds decoded copies), and its hit/miss/decode counters restart.
  {
    std::lock_guard lru_lock(store.lru_mutex_);
    store.lru_order_.clear();
    store.lru_.clear();
    store.lru_bytes_ = 0;
    store.lru_hits_ = 0;
    store.lru_misses_ = 0;
    store.decoded_payloads_ = 0;
  }
  store.encode_nanos_inline_.store(0, std::memory_order_relaxed);
  store.encode_nanos_async_.store(0, std::memory_order_relaxed);
}

// --- DAG --------------------------------------------------------------------

void Access::save_dag(Writer& w, const dag::Dag& dag) {
  save_store(w, dag.store_);
  std::shared_lock lock(dag.mutex_);
  w.u64(dag.transactions_.size());
  for (const auto& tx : dag.transactions_) {
    w.u64(tx.parents.size());
    for (dag::TxId p : tx.parents) w.u64(p);
    w.u32(tx.payload);
    w.i64(tx.publisher);
    w.u64(tx.round);
    w.u8(tx.poisoned_publisher ? 1 : 0);
  }
  save_sizes(w, dag.cum_weights_);
  w.u64(dag.version_);
}

void Access::restore_dag(Reader& r, dag::Dag& dag) {
  restore_store(r, dag.store_);
  std::unique_lock lock(dag.mutex_);
  dag.transactions_.clear();
  dag.children_.clear();
  dag.tips_.clear();
  const std::uint64_t num_txs = r.u64();
  if (num_txs == 0) throw SnapshotError("snapshot: checkpoint DAG has no genesis");
  dag.transactions_.reserve(static_cast<std::size_t>(num_txs));
  // Replay the append-time container mutations in id order so the
  // unordered children/tips containers end up with the same layout the
  // original run built — re-serialization and any iteration-order-sensitive
  // consumer see an identical DAG.
  for (std::uint64_t id = 0; id < num_txs; ++id) {
    dag::Transaction tx;
    tx.id = id;
    const std::uint64_t num_parents = r.u64();
    tx.parents.reserve(static_cast<std::size_t>(num_parents));
    for (std::uint64_t i = 0; i < num_parents; ++i) {
      const dag::TxId p = r.u64();
      if (p >= id) throw SnapshotError("snapshot: DAG parent out of order");
      tx.parents.push_back(p);
    }
    tx.payload = r.u32();
    if (tx.payload >= dag.store_.size()) {
      throw SnapshotError("snapshot: DAG payload handle out of range");
    }
    tx.publisher = static_cast<int>(r.i64());
    tx.round = static_cast<std::size_t>(r.u64());
    tx.poisoned_publisher = r.u8() != 0;
    if (id == 0) {
      if (num_parents != 0) throw SnapshotError("snapshot: genesis with parents");
      dag.transactions_.push_back(std::move(tx));
      dag.tips_.insert(dag::kGenesisTx);
      continue;
    }
    if (num_parents == 0) throw SnapshotError("snapshot: non-genesis transaction without parents");
    dag.transactions_.push_back(std::move(tx));
    for (dag::TxId p : dag.transactions_.back().parents) {
      dag.children_[p].push_back(id);
      dag.tips_.erase(p);
    }
    dag.tips_.insert(id);
  }
  dag.cum_weights_ = load_sizes(r);
  if (dag.cum_weights_.size() != dag.transactions_.size()) {
    throw SnapshotError("snapshot: weight index size mismatch");
  }
  dag.version_ = r.u64();
  dag.cone_seen_.clear();
  {
    std::lock_guard walk_lock(dag.walk_index_mutex_);
    dag.walk_index_version_ = ~std::uint64_t{0};  // stale — lazily rebuilt
    dag.depth_index_.clear();
    dag.depth_frontier_.clear();
    dag.start_candidates_.clear();
  }
}

// --- eval cache -------------------------------------------------------------

void Access::save_eval_cache(Writer& w, const store::ShardedEvalCache& cache) {
  struct Row {
    int client;
    store::ContentHash hash;
    double accuracy;
  };
  std::vector<Row> rows;
  for (const auto& shard : cache.shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& [key, accuracy] : shard->map) {
      rows.push_back({key.client, key.hash, accuracy});
    }
  }
  // Canonical order, so identical cache contents serialize byte-identically
  // regardless of shard/bucket iteration order.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.client != b.client) return a.client < b.client;
    if (a.hash.hi != b.hash.hi) return a.hash.hi < b.hash.hi;
    return a.hash.lo < b.hash.lo;
  });
  w.u64(rows.size());
  for (const Row& row : rows) {
    w.i64(row.client);
    w.u64(row.hash.hi);
    w.u64(row.hash.lo);
    w.f64(row.accuracy);
  }
  w.u64(cache.hits_.load(std::memory_order_relaxed));
  w.u64(cache.misses_.load(std::memory_order_relaxed));
  w.u64(cache.invalidations_.load(std::memory_order_relaxed));
}

void Access::restore_eval_cache(Reader& r, store::ShardedEvalCache& cache) {
  for (const auto& shard : cache.shards_) {
    std::unique_lock lock(shard->mutex);
    shard->map.clear();
  }
  const std::uint64_t num_rows = r.u64();
  for (std::uint64_t i = 0; i < num_rows; ++i) {
    store::ShardedEvalCache::Key key;
    key.client = static_cast<int>(r.i64());
    key.hash.hi = r.u64();
    key.hash.lo = r.u64();
    const double accuracy = r.f64();
    auto& shard = cache.shard_of(key);
    std::unique_lock lock(shard.mutex);
    shard.map.emplace(key, accuracy);
  }
  cache.hits_.store(r.u64(), std::memory_order_relaxed);
  cache.misses_.store(r.u64(), std::memory_order_relaxed);
  cache.invalidations_.store(r.u64(), std::memory_order_relaxed);
}

// --- clients ----------------------------------------------------------------

void Access::save_client_rngs(Writer& w, core::SpecializingDag& net) {
  w.u64(net.num_clients());
  for (std::size_t i = 0; i < net.num_clients(); ++i) {
    save_rng(w, net.client(static_cast<int>(i)).rng_);
  }
}

void Access::restore_client_rngs(Reader& r, core::SpecializingDag& net) {
  const std::uint64_t n = r.u64();
  if (n != net.num_clients()) {
    throw SnapshotError("snapshot: client count mismatch (checkpoint has " + std::to_string(n) +
                        ", network has " + std::to_string(net.num_clients()) + ")");
  }
  for (std::size_t i = 0; i < net.num_clients(); ++i) {
    net.client(static_cast<int>(i)).rng_ = load_rng(r);
  }
}

// --- round simulator --------------------------------------------------------

void Access::save_sim(Writer& w, const sim::DagSimulator& sim) {
  save_rng(w, sim.round_rng_);
  save_rng(w, sim.louvain_rng_);
  w.u64(sim.round_);
  save_chars(w, sim.active_);
  save_partition(w, sim.partition_groups_, sim.partition_start_round_);
  w.i64(sim.poison_class_a_);
  w.i64(sim.poison_class_b_);
  w.u64(sim.pending_.size());
  for (const auto& pending : sim.pending_) {
    w.i64(pending.handle);
    save_result(w, pending.result);
    w.u64(pending.publish_round);
    w.u64(pending.release_round);
  }
}

void Access::restore_sim(Reader& r, sim::DagSimulator& sim) {
  sim.round_rng_ = load_rng(r);
  sim.louvain_rng_ = load_rng(r);
  sim.round_ = static_cast<std::size_t>(r.u64());
  load_chars_into(r, sim.active_, "client");
  std::size_t start_round = 0;
  sim.partition_groups_ = load_partition(r, start_round);
  sim.partition_start_round_ = start_round;
  sim.partitioned_ = sim.partition_groups_ != nullptr;
  install_partition(sim.net_, sim.active_.size(), sim.partition_groups_,
                    sim.partition_start_round_);
  sim.poison_class_a_ = static_cast<int>(r.i64());
  sim.poison_class_b_ = static_cast<int>(r.i64());
  sim.pending_.clear();
  const std::uint64_t num_pending = r.u64();
  sim.pending_.reserve(static_cast<std::size_t>(num_pending));
  for (std::uint64_t i = 0; i < num_pending; ++i) {
    sim::DagSimulator::PendingCommit pending;
    pending.handle = static_cast<int>(r.i64());
    pending.result = load_result(r);
    pending.publish_round = static_cast<std::size_t>(r.u64());
    pending.release_round = static_cast<std::size_t>(r.u64());
    sim.pending_.push_back(std::move(pending));
  }
  sim.history_.clear();
}

// --- async simulator --------------------------------------------------------

void Access::save_sim(Writer& w, const sim::AsyncDagSimulator& sim) {
  save_rng(w, sim.rng_);
  w.f64(sim.now_);
  w.u64(sim.next_seq_);
  w.u64(sim.total_steps_);
  save_chars(w, sim.active_);
  save_chars(w, sim.clock_armed_);
  save_partition(w, sim.partition_groups_, sim.partition_start_round_);
  w.i64(sim.poison_class_a_);
  w.i64(sim.poison_class_b_);
  // Drain a copy of the event queue into (time, seq) order. Restoring by
  // pushing them back yields the identical pop sequence — (time, seq) is a
  // total order, the heap's internal array layout is irrelevant.
  auto queue = sim.events_;
  w.u64(queue.size());
  while (!queue.empty()) {
    const auto& event = queue.top();
    w.f64(event.time);
    w.u64(event.seq);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.i64(event.client);
    const bool has_result = event.kind == sim::AsyncDagSimulator::Event::Kind::kBroadcast;
    w.u8(has_result ? 1 : 0);
    if (has_result) save_result(w, event.result);
    queue.pop();
  }
}

void Access::restore_sim(Reader& r, sim::AsyncDagSimulator& sim) {
  using Event = sim::AsyncDagSimulator::Event;
  sim.rng_ = load_rng(r);
  sim.now_ = r.f64();
  sim.next_seq_ = r.u64();
  sim.total_steps_ = static_cast<std::size_t>(r.u64());
  load_chars_into(r, sim.active_, "client");
  load_chars_into(r, sim.clock_armed_, "clock");
  std::size_t start_round = 0;
  sim.partition_groups_ = load_partition(r, start_round);
  sim.partition_start_round_ = start_round;
  sim.partitioned_ = sim.partition_groups_ != nullptr;
  install_partition(sim.net_, sim.active_.size(), sim.partition_groups_,
                    sim.partition_start_round_);
  sim.poison_class_a_ = static_cast<int>(r.i64());
  sim.poison_class_b_ = static_cast<int>(r.i64());
  sim.events_ = {};
  const std::uint64_t num_events = r.u64();
  for (std::uint64_t i = 0; i < num_events; ++i) {
    Event event;
    event.time = r.f64();
    event.seq = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(Event::Kind::kBroadcast)) {
      throw SnapshotError("snapshot: corrupt event kind " + std::to_string(kind));
    }
    event.kind = static_cast<Event::Kind>(kind);
    event.client = static_cast<int>(r.i64());
    if (r.u8() != 0) event.result = load_result(r);
    sim.events_.push(std::move(event));
  }
}

// --- attack controller ------------------------------------------------------

void Access::save_attacks(Writer& w, const scenario::AttackController& attacks) {
  save_rng(w, attacks.attacker_rng_);
  w.f64(attacks.budget_);
  w.u64(attacks.total_published_);
  w.u8(attacks.attacker_ ? 1 : 0);
  if (attacks.attacker_) save_rng(w, attacks.attacker_->rng_);
}

void Access::restore_attacks(Reader& r, scenario::AttackController& attacks,
                             const dag::Dag& dag) {
  attacks.attacker_rng_ = load_rng(r);
  attacks.budget_ = r.f64();
  attacks.total_published_ = static_cast<std::size_t>(r.u64());
  attacks.attacker_.reset();
  if (r.u8() != 0) {
    // Recreate the attacker exactly like its lazy construction on the first
    // attack step, then overwrite its advanced RNG stream.
    fl::RandomWeightAttackerConfig config;
    config.transactions_per_round = 1;  // the budget loop controls the rate
    config.weight_stddev = attacks.spec_.random_weights.weight_stddev;
    config.num_parents = attacks.spec_.random_weights.num_parents;
    attacks.attacker_ = std::make_unique<fl::RandomWeightAttacker>(
        attacks.attacker_id_, dag.weights(dag::kGenesisTx)->size(), config,
        attacks.attacker_rng_);
    attacks.attacker_->rng_ = load_rng(r);
  }
}

}  // namespace specdag::snapshot
