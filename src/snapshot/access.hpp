// Per-subsystem state capture/restore for checkpoints.
//
// snapshot::Access is the single friend the stateful classes grant: it
// serializes exactly the state that drives future results — the DAG's
// transactions and incremental weight index, the model store's settled
// entries and counters, the sharded eval cache (its hits feed the per-round
// walk statistics), every RNG stream, the simulators' schedules (event
// queue / pending commits / churn + partition state), and the attack
// controller — and restores it into freshly constructed objects so a
// resumed run continues bit-exactly.
//
// Invariants the callers must uphold:
//   * Quiescence: save only with the async encode pipeline drained and no
//     prepares in flight (the runner checkpoints at round boundaries after
//     store().drain()). save_dag throws if any store entry is unsettled.
//   * Restore targets are freshly built from the same spec (same dataset,
//     client count, model architecture); mismatches throw SnapshotError.
//
// Deterministic-rebuild rule: the store's materialization LRU and its
// hit/miss counters restart empty on restore. The LRU only caches decoded
// vectors (bit-identical to their originals), so this affects summary LRU
// statistics of a resumed run, never payload contents, JSONL series,
// delta_ratio, or accuracies.
#pragma once

#include "snapshot/snapshot.hpp"

namespace specdag::dag {
class Dag;
}
namespace specdag::store {
class ModelStore;
class ShardedEvalCache;
}  // namespace specdag::store
namespace specdag::fl {
struct DagRoundResult;
}
namespace specdag::core {
class SpecializingDag;
}
namespace specdag::sim {
class DagSimulator;
class AsyncDagSimulator;
}  // namespace specdag::sim
namespace specdag::scenario {
class AttackController;
}

namespace specdag::snapshot {

struct Access {
  // DAG including its payload store (store first — transactions hold
  // payload handles into it).
  static void save_dag(Writer& w, const dag::Dag& dag);
  static void restore_dag(Reader& r, dag::Dag& dag);

  static void save_eval_cache(Writer& w, const store::ShardedEvalCache& cache);
  static void restore_eval_cache(Reader& r, store::ShardedEvalCache& cache);

  // Every registered client's RNG stream (the only persistent mutable
  // per-client state: model replicas are rebuilt from the DAG each round).
  static void save_client_rngs(Writer& w, core::SpecializingDag& net);
  static void restore_client_rngs(Reader& r, core::SpecializingDag& net);

  static void save_sim(Writer& w, const sim::DagSimulator& sim);
  static void restore_sim(Reader& r, sim::DagSimulator& sim);
  static void save_sim(Writer& w, const sim::AsyncDagSimulator& sim);
  static void restore_sim(Reader& r, sim::AsyncDagSimulator& sim);

  // `dag` sizes the recreated attacker to the genesis payload, exactly like
  // its lazy construction on the first attack step.
  static void save_attacks(Writer& w, const scenario::AttackController& attacks);
  static void restore_attacks(Reader& r, scenario::AttackController& attacks,
                              const dag::Dag& dag);

  // A prepared round result (lives in pending commits / queued broadcasts).
  static void save_result(Writer& w, const fl::DagRoundResult& result);
  static fl::DagRoundResult load_result(Reader& r);

 private:
  static void save_store(Writer& w, const store::ModelStore& store);
  static void restore_store(Reader& r, store::ModelStore& store);
};

}  // namespace specdag::snapshot
