#include "snapshot/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/attacks.hpp"
#include "sim/async_simulator.hpp"
#include "sim/simulator.hpp"
#include "snapshot/access.hpp"

namespace specdag::snapshot {
namespace {

struct SnapshotMetrics {
  obs::Counter& writes = obs::Registry::counter("snapshot.writes");
  obs::Counter& bytes = obs::Registry::counter("snapshot.bytes");
  obs::Counter& restore_nanos = obs::Registry::counter("snapshot.restore_nanos");
};

SnapshotMetrics& snapshot_metrics() {
  static SnapshotMetrics metrics;
  return metrics;
}

// Framing header size (magic + version + endian + payload size + checksum);
// snapshot.bytes reports whole files, not just payloads.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

void save_point(Writer& w, const scenario::ScenarioPoint& point) {
  w.u64(point.round);
  w.f64(point.mean_accuracy);
  w.f64(point.mean_loss);
  w.u64(point.publishes);
  w.u64(point.dag_size);
  w.u64(point.active_clients);
  w.u8(point.partitioned ? 1 : 0);
  w.f64(point.mean_walk_seconds);
  w.f64(point.mean_walk_evaluations);
  w.u64(point.attacker_transactions);
  w.u8(point.has_attack_metrics ? 1 : 0);
  w.f64(point.flip_rate);
  w.f64(point.approved_poisoned);
  w.u64(point.client_accuracies.size());
  for (double accuracy : point.client_accuracies) w.f64(accuracy);
  w.u8(point.has_community_metrics ? 1 : 0);
  w.f64(point.modularity);
  w.u64(point.communities);
  w.f64(point.misclassification);
}

scenario::ScenarioPoint load_point(Reader& r) {
  scenario::ScenarioPoint point;
  point.round = static_cast<std::size_t>(r.u64());
  point.mean_accuracy = r.f64();
  point.mean_loss = r.f64();
  point.publishes = static_cast<std::size_t>(r.u64());
  point.dag_size = static_cast<std::size_t>(r.u64());
  point.active_clients = static_cast<std::size_t>(r.u64());
  point.partitioned = r.u8() != 0;
  point.mean_walk_seconds = r.f64();
  point.mean_walk_evaluations = r.f64();
  point.attacker_transactions = static_cast<std::size_t>(r.u64());
  point.has_attack_metrics = r.u8() != 0;
  point.flip_rate = r.f64();
  point.approved_poisoned = r.f64();
  const std::uint64_t num_accuracies = r.u64();
  point.client_accuracies.reserve(static_cast<std::size_t>(num_accuracies));
  for (std::uint64_t i = 0; i < num_accuracies; ++i) point.client_accuracies.push_back(r.f64());
  point.has_community_metrics = r.u8() != 0;
  point.modularity = r.f64();
  point.communities = static_cast<std::size_t>(r.u64());
  point.misclassification = r.f64();
  return point;
}

// Only the loop-time accumulators of the partial result: everything else
// (final metrics, perf, obs) is recomputed or re-accumulated by the resumed
// run.
void save_partial(Writer& w, const scenario::ScenarioResult& result) {
  w.u64(result.series.size());
  for (const scenario::ScenarioPoint& point : result.series) save_point(w, point);
  w.u64(result.store_series.size());
  for (const scenario::StoreResidencyPoint& sample : result.store_series) {
    w.u64(sample.round);
    w.u64(sample.pending_encodes);
    w.u64(sample.raw_payloads);
    w.u64(sample.delta_payloads);
    w.u64(sample.resident_bytes);
  }
  w.u64(result.poisoned_clients);
}

void load_partial(Reader& r, scenario::ScenarioResult& result) {
  const std::uint64_t num_points = r.u64();
  result.series.reserve(static_cast<std::size_t>(num_points));
  for (std::uint64_t i = 0; i < num_points; ++i) result.series.push_back(load_point(r));
  const std::uint64_t num_samples = r.u64();
  result.store_series.reserve(static_cast<std::size_t>(num_samples));
  for (std::uint64_t i = 0; i < num_samples; ++i) {
    scenario::StoreResidencyPoint sample;
    sample.round = static_cast<std::size_t>(r.u64());
    sample.pending_encodes = static_cast<std::size_t>(r.u64());
    sample.raw_payloads = static_cast<std::size_t>(r.u64());
    sample.delta_payloads = static_cast<std::size_t>(r.u64());
    sample.resident_bytes = static_cast<std::size_t>(r.u64());
    result.store_series.push_back(sample);
  }
  result.poisoned_clients = static_cast<std::size_t>(r.u64());
}

template <typename Simulator>
void write_checkpoint_impl(const std::string& path, const scenario::ScenarioSpec& spec,
                           std::size_t completed_units,
                           const scenario::ScenarioResult& partial, Simulator& sim,
                           scenario::AttackController& attacks, std::uint8_t sim_kind) {
  // Quiescent point: every queued async encode settles before serialization
  // (Access::save_dag throws on unsettled entries as a backstop).
  sim.dag().store().drain();
  obs::ScopedSpan span("snapshot.write", {{"unit", completed_units}});
  Writer w;
  w.str(scenario::spec_to_json(spec).dump());
  w.u8(sim_kind);
  w.u64(completed_units);
  save_partial(w, partial);
  Access::save_dag(w, sim.network().dag());
  Access::save_eval_cache(w, *sim.network().eval_cache());
  Access::save_client_rngs(w, sim.network());
  Access::save_sim(w, sim);
  Access::save_attacks(w, attacks);
  const std::vector<std::uint8_t> payload = w.take();
  save_file(path, payload);
  snapshot_metrics().writes.add(1);
  snapshot_metrics().bytes.add(payload.size() + kHeaderBytes);
  span.arg("bytes", payload.size() + kHeaderBytes);
}

template <typename Simulator>
void restore_state_impl(const LoadedCheckpoint& checkpoint, Simulator& sim,
                        scenario::AttackController& attacks, std::uint8_t expected_kind,
                        const char* expected_name) {
  if (checkpoint.sim_kind != expected_kind) {
    throw SnapshotError(std::string("snapshot: checkpoint was written by the ") +
                        (checkpoint.sim_kind == kSimRound ? "round" : "async") +
                        " simulator, cannot restore into the " + expected_name + " simulator");
  }
  const auto start = std::chrono::steady_clock::now();
  Reader r(checkpoint.payload.data() + checkpoint.state_offset,
           checkpoint.payload.size() - checkpoint.state_offset);
  Access::restore_dag(r, sim.network().dag());
  Access::restore_eval_cache(r, *sim.network().eval_cache());
  Access::restore_client_rngs(r, sim.network());
  Access::restore_sim(r, sim);
  Access::restore_attacks(r, attacks, sim.network().dag());
  if (!r.done()) {
    throw SnapshotError("snapshot: " + std::to_string(r.remaining()) +
                        " trailing bytes after the state section");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  snapshot_metrics().restore_nanos.add(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
}

}  // namespace

void write_checkpoint(const std::string& path, const scenario::ScenarioSpec& spec,
                      std::size_t completed_units, const scenario::ScenarioResult& partial,
                      sim::DagSimulator& sim, scenario::AttackController& attacks) {
  write_checkpoint_impl(path, spec, completed_units, partial, sim, attacks, kSimRound);
}

void write_checkpoint(const std::string& path, const scenario::ScenarioSpec& spec,
                      std::size_t completed_units, const scenario::ScenarioResult& partial,
                      sim::AsyncDagSimulator& sim, scenario::AttackController& attacks) {
  write_checkpoint_impl(path, spec, completed_units, partial, sim, attacks, kSimAsync);
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  LoadedCheckpoint loaded;
  loaded.payload = load_file(path);
  Reader r(loaded.payload);
  const std::string spec_json = r.str();
  try {
    loaded.spec = scenario::spec_from_json(scenario::Json::parse(spec_json));
  } catch (const std::exception& error) {
    throw SnapshotError(std::string("snapshot: embedded spec does not parse: ") + error.what());
  }
  loaded.sim_kind = r.u8();
  if (loaded.sim_kind > kSimAsync) {
    throw SnapshotError("snapshot: corrupt simulator kind " + std::to_string(loaded.sim_kind));
  }
  loaded.completed_units = static_cast<std::size_t>(r.u64());
  load_partial(r, loaded.partial);
  loaded.state_offset = loaded.payload.size() - r.remaining();
  return loaded;
}

void restore_state(const LoadedCheckpoint& checkpoint, sim::DagSimulator& sim,
                   scenario::AttackController& attacks) {
  restore_state_impl(checkpoint, sim, attacks, kSimRound, "round");
}

void restore_state(const LoadedCheckpoint& checkpoint, sim::AsyncDagSimulator& sim,
                   scenario::AttackController& attacks) {
  restore_state_impl(checkpoint, sim, attacks, kSimAsync, "async");
}

std::string checkpoint_path(const std::string& dir, std::size_t completed_units) {
  char name[32];
  std::snprintf(name, sizeof(name), "checkpoint-%06zu.ckpt", completed_units);
  return (std::filesystem::path(dir) / name).string();
}

void prune_checkpoints(const std::string& dir, std::size_t keep_last) {
  if (keep_last == 0) return;
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      files.push_back(entry.path());
    }
  }
  if (files.size() <= keep_last) return;
  // Zero-padded unit numbers make lexicographic order chronological.
  std::sort(files.begin(), files.end());
  for (std::size_t i = 0; i + keep_last < files.size(); ++i) {
    std::filesystem::remove(files[i], ec);
  }
}

}  // namespace specdag::snapshot
