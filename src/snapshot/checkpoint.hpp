// Whole-run checkpoints: one framed file (see snapshot.hpp for the binary
// format) holding everything a resumed run needs to continue bit-exactly —
// the canonical spec JSON (so a checkpoint is self-contained), the number of
// completed round/virtual-time units, the partial result series accumulated
// so far, and the full simulator state captured by snapshot::Access (DAG +
// store, eval cache, every RNG stream, the event queue / pending commits,
// churn + partition record, attack controller).
//
// Checkpoints are written at quiescent points only: between units, with the
// store's async encode pipeline drained (write_checkpoint drains before
// serializing) and no prepares in flight. That makes the captured state
// independent of thread count, so a resume reproduces the uninterrupted
// run's series bit-exactly at any `threads` setting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "snapshot/snapshot.hpp"

namespace specdag::sim {
class DagSimulator;
class AsyncDagSimulator;
}  // namespace specdag::sim

namespace specdag::snapshot {

// Which simulator wrote the state section (restores must match).
inline constexpr std::uint8_t kSimRound = 0;
inline constexpr std::uint8_t kSimAsync = 1;

// A parsed checkpoint: the metadata/partial-result prefix decoded eagerly,
// the simulator-state tail kept as raw payload bytes (it can only be decoded
// into simulators freshly built from `spec`; see restore_state).
struct LoadedCheckpoint {
  scenario::ScenarioSpec spec;        // parsed from the embedded canonical JSON
  std::uint8_t sim_kind = kSimRound;  // kSimRound | kSimAsync
  std::size_t completed_units = 0;    // units fully executed before the snapshot
  scenario::ScenarioResult partial;   // series/store_series/poisoned_clients so far
  std::vector<std::uint8_t> payload;  // the full checkpoint payload
  std::size_t state_offset = 0;       // where the simulator-state section starts
};

// Serializes one checkpoint (draining the store's async encode pipeline
// first, so every entry is settled) and writes it crash-safely (temp file +
// rename — a SIGKILL mid-write never corrupts an existing checkpoint).
// Records obs counters snapshot.writes / snapshot.bytes under a
// "snapshot.write" trace span.
void write_checkpoint(const std::string& path, const scenario::ScenarioSpec& spec,
                      std::size_t completed_units, const scenario::ScenarioResult& partial,
                      sim::DagSimulator& sim, scenario::AttackController& attacks);
void write_checkpoint(const std::string& path, const scenario::ScenarioSpec& spec,
                      std::size_t completed_units, const scenario::ScenarioResult& partial,
                      sim::AsyncDagSimulator& sim, scenario::AttackController& attacks);

// Reads, verifies, and decodes the metadata prefix. Throws SnapshotError on
// any framing, checksum, version, or decode problem.
LoadedCheckpoint load_checkpoint(const std::string& path);

// Restores the simulator-state section into objects freshly built from
// `checkpoint.spec` (same dataset, client count, model — mismatches throw).
// The label-flip schedule for units before completed_units must already have
// been replayed into the simulator's dataset (the runner does this), so the
// restored eval cache matches the client data. Records snapshot.restore_nanos.
void restore_state(const LoadedCheckpoint& checkpoint, sim::DagSimulator& sim,
                   scenario::AttackController& attacks);
void restore_state(const LoadedCheckpoint& checkpoint, sim::AsyncDagSimulator& sim,
                   scenario::AttackController& attacks);

// <dir>/checkpoint-000042.ckpt (units zero-padded so names sort by time).
std::string checkpoint_path(const std::string& dir, std::size_t completed_units);

// Deletes all but the `keep_last` newest checkpoint-*.ckpt files in `dir`
// (0 = keep everything).
void prune_checkpoints(const std::string& dir, std::size_t keep_last);

}  // namespace specdag::snapshot
