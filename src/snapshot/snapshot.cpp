#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace specdag::snapshot {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  // FNV-1a folded over 8-byte lanes (one xor+multiply per word instead of
  // per byte): checkpoints run to tens of MB and the byte-wise loop was the
  // dominant cost of a checkpoint write. The tail bytes are folded as one
  // zero-padded word, with the total size mixed in last so appended zero
  // bytes change the digest.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  constexpr std::uint64_t kPrime = 0x00000100000001B3ULL;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, data + i, 8);
    hash ^= word;
    hash *= kPrime;
  }
  if (i < size) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, size - i);
    hash ^= word;
    hash *= kPrime;
  }
  hash ^= static_cast<std::uint64_t>(size);
  hash *= kPrime;
  return hash;
}

namespace {

constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

}  // namespace

void save_file(const std::string& path, const std::vector<std::uint8_t>& payload) {
  Writer header;
  for (char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kFormatVersion);
  header.u32(kEndianMarker);
  header.u64(payload.size());
  header.u64(fnv1a64(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("snapshot: cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(header.buffer().data()),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) throw SnapshotError("snapshot: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("snapshot: cannot rename " + tmp + " to " + path);
  }
}

std::vector<std::uint8_t> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw SnapshotError("snapshot: cannot open " + path);
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> file(static_cast<std::size_t>(file_size));
  in.read(reinterpret_cast<char*>(file.data()), file_size);
  if (!in) throw SnapshotError("snapshot: cannot read " + path);
  if (file.size() < kHeaderBytes) {
    throw SnapshotError("snapshot: " + path + " is too short to be a checkpoint (" +
                        std::to_string(file.size()) + " bytes)");
  }
  Reader r(file);
  for (char c : kMagic) {
    if (r.u8() != static_cast<std::uint8_t>(c)) {
      throw SnapshotError("snapshot: " + path + " is not a specdag checkpoint (bad magic)");
    }
  }
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion) {
    throw SnapshotError("snapshot: " + path + " has format version " + std::to_string(version) +
                        ", this build reads version " + std::to_string(kFormatVersion));
  }
  if (r.u32() != kEndianMarker) {
    throw SnapshotError("snapshot: " + path + " was written on a different-endian machine");
  }
  const std::uint64_t payload_size = r.u64();
  const std::uint64_t checksum = r.u64();
  if (payload_size != file.size() - kHeaderBytes) {
    throw SnapshotError("snapshot: " + path + " is truncated (payload claims " +
                        std::to_string(payload_size) + " bytes, file holds " +
                        std::to_string(file.size() - kHeaderBytes) + ")");
  }
  std::vector<std::uint8_t> payload(file.begin() + kHeaderBytes, file.end());
  const std::uint64_t actual = fnv1a64(payload.data(), payload.size());
  if (actual != checksum) {
    throw SnapshotError("snapshot: " + path + " failed its checksum (corrupt)");
  }
  return payload;
}

void save_rng(Writer& w, const Rng& rng) {
  w.u64(rng.seed());
  Rng copy = rng;  // engine() is non-const; the copy is bit-identical
  std::ostringstream state;
  state << copy.engine();
  w.str(state.str());
}

Rng load_rng(Reader& r) {
  const std::uint64_t seed = r.u64();
  const std::string state = r.str();
  Rng rng(seed);
  std::istringstream in(state);
  in >> rng.engine();
  if (!in) throw SnapshotError("snapshot: corrupt RNG engine state");
  return rng;
}

}  // namespace specdag::snapshot
