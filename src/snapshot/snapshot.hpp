// Checkpoint serialization primitives.
//
// A checkpoint is a single binary file:
//
//   magic "SPDGCKPT" | u32 format_version | u32 endian marker (0x01020304)
//   | u64 payload_size | u64 checksum of the payload (FNV-1a-64 folded over
//   8-byte lanes, length-mixed — see fnv1a64) | payload
//
// The payload is written through Writer (append-only byte buffer with typed
// puts) and read back through Reader (bounds-checked typed gets that throw
// SnapshotError instead of reading out of bounds — a corrupted or truncated
// file is always a clean error, never UB). Floats are stored as their exact
// bit patterns, so a round-trip is bit-identical including NaN payloads and
// denormals. Integers are stored in native byte order; the endian marker in
// the header rejects cross-endian restores instead of mis-decoding them.
//
// Format versioning policy: kFormatVersion bumps on any layout change; a
// reader rejects files whose version it does not know (no silent migration
// — checkpoints are tied to the code that wrote them, the golden-replay
// fixture under tests/golden/ is regenerated on a bump).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace specdag::snapshot {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr char kMagic[8] = {'S', 'P', 'D', 'G', 'C', 'K', 'P', 'T'};
inline constexpr std::uint32_t kEndianMarker = 0x01020304u;

// Any checkpoint problem: framing, checksum, truncation, version mismatch,
// or a semantic mismatch found while restoring.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Append-only typed byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void bytes(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    raw(v.data(), v.size());
  }
  void vec_f32(const std::vector<float>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(float));
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(std::uint64_t));
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  std::vector<std::uint8_t> buf_;
};

// Bounds-checked typed reads over a byte span. Does not own the bytes.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& data) : Reader(data.data(), data.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int64_t i64() { return scalar<std::int64_t>(); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::size_t n = length();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::size_t n = length();
    need(n);
    std::vector<std::uint8_t> v(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return v;
  }
  std::vector<float> vec_f32() { return pod_vector<float>(); }
  std::vector<std::uint64_t> vec_u64() { return pod_vector<std::uint64_t>(); }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  T scalar() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> pod_vector() {
    const std::size_t n = length();
    if (n > remaining() / sizeof(T)) {
      throw SnapshotError("snapshot: truncated array (wants " + std::to_string(n) +
                          " elements, " + std::to_string(remaining()) + " bytes left)");
    }
    std::vector<T> v(n);
    std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }
  // A length prefix; rejects lengths that cannot fit in the remaining bytes
  // before any allocation, so corrupt lengths fail cleanly instead of OOMing.
  std::size_t length() {
    const std::uint64_t n = u64();
    if (n > remaining()) {
      throw SnapshotError("snapshot: corrupt length prefix " + std::to_string(n));
    }
    return static_cast<std::size_t>(n);
  }
  void need(std::size_t n) {
    if (n > size_ - pos_) {
      throw SnapshotError("snapshot: truncated data (need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos_) + ", have " +
                          std::to_string(size_ - pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

// Frames `payload` (magic/version/endian/size/checksum header) and writes it
// crash-safely: a temp file in the same directory, fsync'd, then renamed
// over `path` — a SIGKILL mid-write never leaves a half-written checkpoint
// under the final name.
void save_file(const std::string& path, const std::vector<std::uint8_t>& payload);

// Reads and verifies a framed checkpoint; returns the payload. Throws
// SnapshotError on any framing, version, endian, size, or checksum problem.
std::vector<std::uint8_t> load_file(const std::string& path);

// Rng codec: seed plus the full mt19937_64 engine state (via the standard
// stream operators), so a restored stream continues bit-exactly.
void save_rng(Writer& w, const Rng& rng);
Rng load_rng(Reader& r);

}  // namespace specdag::snapshot
