#include "store/delta_codec.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace specdag::store {
namespace {

// MSB-first bit writer over a growing byte buffer.
class BitWriter {
 public:
  void put_bit(std::uint32_t bit) {
    if (shift_ == 0) {
      bytes_.push_back(0);
      shift_ = 8;
    }
    --shift_;
    bytes_.back() |= static_cast<std::uint8_t>((bit & 1u) << shift_);
  }

  // Writes the low `width` bits of `value`, most significant first.
  void put_bits(std::uint32_t value, std::uint32_t width) {
    for (std::uint32_t i = width; i-- > 0;) put_bit(value >> i);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t shift_ = 0;  // bits still free in the last byte
};

class BitReader {
 public:
  BitReader(const std::uint8_t* bytes, std::size_t size) : bytes_(bytes), size_(size) {}

  std::uint32_t get_bit() {
    if (pos_ >= size_ * 8) {
      throw std::invalid_argument("decode_delta: truncated stream");
    }
    const std::uint32_t bit = (bytes_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  std::uint32_t get_bits(std::uint32_t width) {
    std::uint32_t value = 0;
    for (std::uint32_t i = 0; i < width; ++i) value = (value << 1) | get_bit();
    return value;
  }

 private:
  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float bits_float(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace

std::vector<std::uint8_t> encode_delta(const float* values, const float* base,
                                       std::size_t count) {
  BitWriter writer;
  std::uint32_t window = 0;  // significant-bit width of the previous word; 0 = none yet
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t x = float_bits(values[i]) ^ float_bits(base[i]);
    if (x == 0) {
      writer.put_bit(0);
      continue;
    }
    writer.put_bit(1);
    const auto lz = static_cast<std::uint32_t>(std::countl_zero(x));
    // Reuse the previous window only when the value fits and wastes at most
    // 3 leading bits — otherwise one large value would widen the window for
    // the rest of the stream. The 5+lz-bit header of a fresh narrow window
    // amortizes quickly.
    if (window != 0 && lz >= 32 - window && lz - (32 - window) <= 3) {
      writer.put_bit(0);
      writer.put_bits(x, window);
    } else {
      writer.put_bit(1);
      writer.put_bits(lz, 5);
      writer.put_bits(x, 32 - lz);
      window = 32 - lz;
    }
  }
  return writer.take();
}

void decode_delta(const std::uint8_t* encoded, std::size_t encoded_size, const float* base,
                  float* out, std::size_t count) {
  BitReader reader(encoded, encoded_size);
  std::uint32_t window = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t x = 0;
    if (reader.get_bit() != 0) {
      if (reader.get_bit() == 0) {
        if (window == 0) throw std::invalid_argument("decode_delta: malformed stream");
        x = reader.get_bits(window);
      } else {
        const std::uint32_t lz = reader.get_bits(5);
        window = 32 - lz;
        x = reader.get_bits(window);
      }
      if (x == 0) throw std::invalid_argument("decode_delta: malformed stream");
    }
    out[i] = bits_float(float_bits(base[i]) ^ x);
  }
}

}  // namespace specdag::store
