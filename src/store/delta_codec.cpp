#include "store/delta_codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SPECDAG_CODEC_X86 1
#include <immintrin.h>
#endif

namespace specdag::store {
namespace {

// ------------------------------------------------------- scalar bit I/O ---

// MSB-first bit writer over a growing byte buffer (one bit at a time; the
// reference implementation the fast writer below must match exactly).
class BitWriter {
 public:
  void put_bit(std::uint32_t bit) {
    if (shift_ == 0) {
      bytes_.push_back(0);
      shift_ = 8;
    }
    --shift_;
    bytes_.back() |= static_cast<std::uint8_t>((bit & 1u) << shift_);
  }

  // Writes the low `width` bits of `value`, most significant first.
  void put_bits(std::uint32_t value, std::uint32_t width) {
    for (std::uint32_t i = width; i-- > 0;) put_bit(value >> i);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t shift_ = 0;  // bits still free in the last byte
};

class BitReader {
 public:
  BitReader(const std::uint8_t* bytes, std::size_t size) : bytes_(bytes), size_(size) {}

  std::uint32_t get_bit() {
    if (pos_ >= size_ * 8) {
      throw std::invalid_argument("decode_delta: truncated stream");
    }
    const std::uint32_t bit = (bytes_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  std::uint32_t get_bits(std::uint32_t width) {
    std::uint32_t value = 0;
    for (std::uint32_t i = 0; i < width; ++i) value = (value << 1) | get_bit();
    return value;
  }

 private:
  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------- fast bit I/O ---

// Word-accumulating MSB-first writer: bits collect in a 64-bit accumulator
// and leave as big-endian 32-bit chunks, producing the exact stream
// BitWriter produces bit by bit. Invariant: fewer than 32 bits buffered
// between calls, so one put_bits of up to 32 bits always fits in the
// accumulator.
class FastBitWriter {
 public:
  // `max_words` bounds the stream: one encoded word is at most 2+5+32 bits.
  // Writing into a pre-sized thread-local scratch keeps the hot path free of
  // capacity checks; take() copies the exact-size result out, so callers
  // never hold the slack capacity.
  explicit FastBitWriter(std::size_t max_words) {
    const std::size_t worst = (max_words * 39 + 7) / 8 + 16;
    if (scratch().size() < worst) scratch().resize(worst);
    out_ = scratch().data();
  }

  // Writes the low `width` (<= 32) bits of `value`, most significant first.
  void put_bits(std::uint32_t value, std::uint32_t width) {
    const std::uint64_t masked =
        width >= 32 ? value : (value & ((std::uint64_t{1} << width) - 1));
    acc_ = (acc_ << width) | masked;
    bits_ += width;
    if (bits_ >= 32) {
      bits_ -= 32;
      store_chunk(static_cast<std::uint32_t>(acc_ >> bits_));
    }
  }

  // Appends `count` zero bits (a run of '0' control flags).
  void put_zeros(std::size_t count) {
    while (count >= 32) {
      put_bits(0, 32);
      count -= 32;
    }
    if (count > 0) put_bits(0, static_cast<std::uint32_t>(count));
  }

  std::vector<std::uint8_t> take() {
    while (bits_ >= 8) {
      bits_ -= 8;
      *out_++ = static_cast<std::uint8_t>(acc_ >> bits_);
    }
    if (bits_ > 0) {
      *out_++ = static_cast<std::uint8_t>(acc_ << (8 - bits_));
      bits_ = 0;
    }
    return std::vector<std::uint8_t>(scratch().data(), out_);
  }

 private:
  static std::vector<std::uint8_t>& scratch() {
    thread_local std::vector<std::uint8_t> buf;
    return buf;
  }

  void store_chunk(std::uint32_t chunk) {
    // Append the chunk big-endian (the stream is MSB-first).
    out_[0] = static_cast<std::uint8_t>(chunk >> 24);
    out_[1] = static_cast<std::uint8_t>(chunk >> 16);
    out_[2] = static_cast<std::uint8_t>(chunk >> 8);
    out_[3] = static_cast<std::uint8_t>(chunk);
    out_ += 4;
  }

  std::uint8_t* out_ = nullptr;
  std::uint64_t acc_ = 0;
  std::uint32_t bits_ = 0;  // bits buffered in acc_, always < 32 between calls
};

// Word-refilling MSB-first reader with the same truncation semantics as
// BitReader: a read whose first missing bit lies past the stream throws.
class FastBitReader {
 public:
  FastBitReader(const std::uint8_t* bytes, std::size_t size) : bytes_(bytes), size_(size) {}

  // Reads `width` (<= 32) bits, most significant first.
  std::uint32_t get_bits(std::uint32_t width) {
    if (bits_ < width) {
      refill();
      if (bits_ < width) throw std::invalid_argument("decode_delta: truncated stream");
    }
    bits_ -= width;
    if (width == 0) return 0;
    return static_cast<std::uint32_t>((acc_ >> bits_) & ((std::uint64_t{1} << width) - 1));
  }

  std::uint32_t get_bit() { return get_bits(1); }

  // Consumes the run of consecutive '0' bits at the cursor, up to `max`
  // bits, stopping before the first '1' (left unconsumed) or at the end of
  // the stream. Returns the run length.
  std::size_t zero_run(std::size_t max) {
    std::size_t run = 0;
    while (run < max) {
      if (bits_ == 0) {
        refill();
        if (bits_ == 0) return run;  // stream exhausted: caller's next read throws
      }
      // The unread bits sit in the low `bits_` positions of acc_;
      // left-align them so countl_zero sees only live stream bits.
      const std::uint64_t window = acc_ << (64 - bits_);
      const std::uint32_t zeros =
          window == 0 ? bits_
                      : std::min<std::uint32_t>(
                            static_cast<std::uint32_t>(std::countl_zero(window)), bits_);
      const auto take = static_cast<std::uint32_t>(
          std::min<std::size_t>(zeros, max - run));
      bits_ -= take;
      run += take;
      if (take < zeros) break;          // hit the `max` cap with a 1 still buffered
      if (zeros < bits_ + take) break;  // found a 1 inside the buffered window
    }
    return run;
  }

 private:
  void refill() {
    while (bits_ <= 56 && pos_ < size_) {
      acc_ = (acc_ << 8) | bytes_[pos_++];
      bits_ += 8;
    }
  }

  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;   // next byte to pull into the accumulator
  std::uint64_t acc_ = 0;
  std::uint32_t bits_ = 0;  // unread bits buffered in the low end of acc_
};

std::uint32_t float_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float bits_float(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// ------------------------------------------------------- XOR word kernels ---
//
// The codec operates on the integer XOR of the two bit patterns; computing
// those words in bulk is pure integer SIMD (no FP semantics involved), so
// every backend yields identical words.

[[maybe_unused]] void xor_words_word64(const float* values, const float* base,
                                       std::uint32_t* out, std::size_t count) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    std::uint64_t a, b;
    std::memcpy(&a, values + i, 8);
    std::memcpy(&b, base + i, 8);
    const std::uint64_t x = a ^ b;
    std::memcpy(out + i, &x, 8);
  }
  if (i < count) out[i] = float_bits(values[i]) ^ float_bits(base[i]);
}

#if defined(SPECDAG_CODEC_X86)

void xor_words_sse2(const float* values, const float* base, std::uint32_t* out,
                    std::size_t count) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(values + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_xor_si128(a, b));
  }
  for (; i < count; ++i) out[i] = float_bits(values[i]) ^ float_bits(base[i]);
}

__attribute__((target("avx2"))) void xor_words_avx2(const float* values, const float* base,
                                                    std::uint32_t* out, std::size_t count) {
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_xor_si256(a, b));
  }
  for (; i < count; ++i) out[i] = float_bits(values[i]) ^ float_bits(base[i]);
}

#endif  // SPECDAG_CODEC_X86

using XorWordsFn = void (*)(const float*, const float*, std::uint32_t*, std::size_t);

struct XorBackend {
  XorWordsFn fn;
  const char* name;
};

XorBackend pick_xor_backend() {
#if defined(SPECDAG_CODEC_X86)
  if (__builtin_cpu_supports("avx2")) return {xor_words_avx2, "avx2"};
  return {xor_words_sse2, "sse2"};  // SSE2 is the x86-64 baseline
#else
  return {xor_words_word64, "word64"};
#endif
}

const XorBackend& xor_backend() {
  static const XorBackend backend = pick_xor_backend();
  return backend;
}

// XOR scratch block: large enough to amortize the dispatch, small enough to
// stay in L1.
constexpr std::size_t kBlockWords = 2048;

}  // namespace

const char* delta_codec_backend() { return xor_backend().name; }

std::vector<std::uint8_t> encode_delta(const float* values, const float* base,
                                       std::size_t count) {
  FastBitWriter writer(count);
  const XorWordsFn xor_words = xor_backend().fn;
  std::uint32_t window = 0;  // significant-bit width of the previous word; 0 = none yet
  std::uint32_t xors[kBlockWords];
  for (std::size_t start = 0; start < count; start += kBlockWords) {
    const std::size_t n = std::min(kBlockWords, count - start);
    xor_words(values + start, base + start, xors, n);
    std::size_t i = 0;
    while (i < n) {
      if (xors[i] == 0) {
        // Run-length the zero flags: identical words are the common case
        // once training converges.
        std::size_t run = 1;
        while (i + run < n && xors[i + run] == 0) ++run;
        writer.put_zeros(run);
        i += run;
        continue;
      }
      const std::uint32_t x = xors[i];
      const auto lz = static_cast<std::uint32_t>(std::countl_zero(x));
      // Reuse the previous window only when the value fits and wastes at most
      // 3 leading bits — otherwise one large value would widen the window for
      // the rest of the stream. The 5+lz-bit header of a fresh narrow window
      // amortizes quickly.
      if (window != 0 && lz >= 32 - window && lz - (32 - window) <= 3) {
        writer.put_bits(0b10, 2);
        writer.put_bits(x, window);
      } else {
        writer.put_bits(0b11, 2);
        writer.put_bits(lz, 5);
        writer.put_bits(x, 32 - lz);
        window = 32 - lz;
      }
      ++i;
    }
  }
  return writer.take();
}

void decode_delta(const std::uint8_t* encoded, std::size_t encoded_size, const float* base,
                  float* out, std::size_t count) {
  FastBitReader reader(encoded, encoded_size);
  std::uint32_t window = 0;
  std::size_t i = 0;
  while (i < count) {
    // Zero flags mean "equal to base": copy the run wholesale.
    const std::size_t run = reader.zero_run(count - i);
    if (run > 0) {
      std::memcpy(out + i, base + i, run * sizeof(float));
      i += run;
      if (i == count) break;
    }
    // The cursor now sits on a '1' flag (or the stream is truncated, in
    // which case this read throws exactly like the scalar reader; zero_run
    // never stops on an unconsumed '0').
    if (reader.get_bit() != 1) {
      throw std::logic_error("decode_delta: zero-run invariant violated");
    }
    std::uint32_t x;
    if (reader.get_bit() == 0) {
      if (window == 0) throw std::invalid_argument("decode_delta: malformed stream");
      x = reader.get_bits(window);
    } else {
      const std::uint32_t lz = reader.get_bits(5);
      window = 32 - lz;
      x = reader.get_bits(window);
    }
    if (x == 0) throw std::invalid_argument("decode_delta: malformed stream");
    out[i] = bits_float(float_bits(base[i]) ^ x);
    ++i;
  }
}

// ------------------------------------------------------ scalar reference ---

std::vector<std::uint8_t> encode_delta_scalar(const float* values, const float* base,
                                              std::size_t count) {
  BitWriter writer;
  std::uint32_t window = 0;  // significant-bit width of the previous word; 0 = none yet
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t x = float_bits(values[i]) ^ float_bits(base[i]);
    if (x == 0) {
      writer.put_bit(0);
      continue;
    }
    writer.put_bit(1);
    const auto lz = static_cast<std::uint32_t>(std::countl_zero(x));
    if (window != 0 && lz >= 32 - window && lz - (32 - window) <= 3) {
      writer.put_bit(0);
      writer.put_bits(x, window);
    } else {
      writer.put_bit(1);
      writer.put_bits(lz, 5);
      writer.put_bits(x, 32 - lz);
      window = 32 - lz;
    }
  }
  return writer.take();
}

void decode_delta_scalar(const std::uint8_t* encoded, std::size_t encoded_size,
                         const float* base, float* out, std::size_t count) {
  BitReader reader(encoded, encoded_size);
  std::uint32_t window = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t x = 0;
    if (reader.get_bit() != 0) {
      if (reader.get_bit() == 0) {
        if (window == 0) throw std::invalid_argument("decode_delta: malformed stream");
        x = reader.get_bits(window);
      } else {
        const std::uint32_t lz = reader.get_bits(5);
        window = 32 - lz;
        x = reader.get_bits(window);
      }
      if (x == 0) throw std::invalid_argument("decode_delta: malformed stream");
    }
    out[i] = bits_float(float_bits(base[i]) ^ x);
  }
}

}  // namespace specdag::store
