// Lossless bit-packed XOR codec for model payload deltas.
//
// A published model differs from the average of its parents only by the
// local training update, so the IEEE-754 bit patterns of corresponding
// weights share their sign, exponent, and leading mantissa bits. The codec
// XORs each weight against its base value and stores the surviving low bits
// with a Gorilla-style control stream:
//
//   per 32-bit xor word x:
//     x == 0                  -> '0'
//     fits previous window    -> '1' '0' <low W bits of x>
//     new window              -> '1' '1' <5-bit leading-zero count> <32-lz bits>
//
// Decoding reproduces the original floats bit-exactly (NaN payloads and
// denormals included). Typical encoded size for converged federated updates
// is 35-60% of the raw 4 bytes/weight; uncorrelated payloads cost up to
// ~107% (callers should fall back to raw storage when that happens).
//
// Two implementations produce the exact same bit stream:
//
//   * encode_delta / decode_delta — the fast path: the XOR words are
//     computed in SIMD blocks (AVX2 when the CPU has it, SSE2 on any
//     x86-64, an unrolled 64-bit word loop elsewhere) and the control
//     stream moves through 64-bit accumulators with run-length handling of
//     zero words instead of single-bit loops;
//   * encode_delta_scalar / decode_delta_scalar — the original bit-at-a-time
//     implementation, kept as the oracle the fast path is fuzzed against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace specdag::store {

// Encodes `values` as a delta against `base` (both of length `count`).
std::vector<std::uint8_t> encode_delta(const float* values, const float* base,
                                       std::size_t count);

// Decodes `count` floats into `out`. `base` must be bit-identical to the one
// used at encode time. Throws std::invalid_argument on a truncated stream.
void decode_delta(const std::uint8_t* encoded, std::size_t encoded_size, const float* base,
                  float* out, std::size_t count);

// Scalar reference implementations — bit-identical to the fast path above,
// kept as the test oracle (and the fallback semantics definition).
std::vector<std::uint8_t> encode_delta_scalar(const float* values, const float* base,
                                              std::size_t count);
void decode_delta_scalar(const std::uint8_t* encoded, std::size_t encoded_size,
                         const float* base, float* out, std::size_t count);

// Name of the XOR fast-path backend selected at startup:
// "avx2", "sse2", or "word64".
const char* delta_codec_backend();

}  // namespace specdag::store
