#include "store/eval_cache.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace specdag::store {
namespace {

obs::Counter& hit_counter() {
  static obs::Counter& counter = obs::Registry::counter("evalcache.hits");
  return counter;
}

obs::Counter& miss_counter() {
  static obs::Counter& counter = obs::Registry::counter("evalcache.misses");
  return counter;
}

}  // namespace

std::size_t ShardedEvalCache::KeyHasher::operator()(const Key& key) const {
  return static_cast<std::size_t>(
      splitmix64(key.hash.lo ^ (key.hash.hi * 0x9E3779B97F4A7C15ULL) ^
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.client))));
}

ShardedEvalCache::ShardedEvalCache(std::size_t num_shards) {
  if (num_shards == 0) throw std::invalid_argument("ShardedEvalCache: zero shards");
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

ShardedEvalCache::Shard& ShardedEvalCache::shard_of(const Key& key) const {
  return *shards_[KeyHasher{}(key) % shards_.size()];
}

std::optional<double> ShardedEvalCache::lookup(int client, const ContentHash& hash) const {
  const Key key{client, hash};
  Shard& shard = shard_of(key);
  std::shared_lock lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter().add();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_counter().add();
  return it->second;
}

void ShardedEvalCache::insert(int client, const ContentHash& hash, double accuracy) {
  const Key key{client, hash};
  Shard& shard = shard_of(key);
  std::unique_lock lock(shard.mutex);
  shard.map.emplace(key, accuracy);
}

void ShardedEvalCache::invalidate_client(int client) {
  std::uint64_t dropped = 0;
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (it->first.client == client) {
        it = shard->map.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
}

void ShardedEvalCache::clear() {
  std::uint64_t dropped = 0;
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    dropped += shard->map.size();
    shard->map.clear();
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
}

std::size_t ShardedEvalCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

EvalCacheStats ShardedEvalCache::stats() const {
  EvalCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.entries = size();
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace specdag::store
