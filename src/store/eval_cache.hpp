// Sharded evaluation cache shared by every client of a simulation.
//
// Model accuracy on a client's local test data depends only on the payload
// content and the client's (immutable) data, so it is cached under the key
// (client id, payload content hash). One striped-lock cache replaces the
// per-client private maps the DAG clients used to hold: concurrently
// prepared clients hit different shards instead of growing duplicate
// structures, content-identical payloads share entries per client, and the
// sweep executor's worker threads can safely share one cache per run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "store/model_store.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::store {

struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
  std::uint64_t invalidations = 0;  // entries dropped by invalidate_client/clear

  double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class ShardedEvalCache {
 public:
  explicit ShardedEvalCache(std::size_t num_shards = 16);

  ShardedEvalCache(const ShardedEvalCache&) = delete;
  ShardedEvalCache& operator=(const ShardedEvalCache&) = delete;

  std::optional<double> lookup(int client, const ContentHash& hash) const;
  void insert(int client, const ContentHash& hash, double accuracy);

  // Drops every entry of one client (its local data changed, e.g. a
  // poisoning attack flipped its labels).
  void invalidate_client(int client);
  void clear();

  std::size_t size() const;
  std::size_t num_shards() const { return shards_.size(); }
  EvalCacheStats stats() const;

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  struct Key {
    int client;
    ContentHash hash;

    friend bool operator==(const Key& a, const Key& b) {
      return a.client == b.client && a.hash == b.hash;
    }
  };
  struct KeyHasher {
    std::size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Key, double, KeyHasher> map;
  };

  Shard& shard_of(const Key& key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace specdag::store
