#include "store/eval_cache_view.hpp"

#include <stdexcept>

namespace specdag::store {

ClientEvalCacheView::ClientEvalCacheView(std::shared_ptr<ShardedEvalCache> cache, int client)
    : cache_(std::move(cache)), client_(client) {
  if (!cache_) throw std::invalid_argument("ClientEvalCacheView: null cache");
}

std::optional<double> ClientEvalCacheView::lookup(const dag::Dag& dag, dag::TxId id) {
  return cache_->lookup(client_, dag.payload_hash(id));
}

void ClientEvalCacheView::store(const dag::Dag& dag, dag::TxId id, double accuracy) {
  cache_->insert(client_, dag.payload_hash(id), accuracy);
}

void ClientEvalCacheView::clear() { cache_->invalidate_client(client_); }

}  // namespace specdag::store
