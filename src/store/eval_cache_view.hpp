// Client-scoped view of the simulation-wide sharded evaluation cache,
// implementing the tip selectors' AccuracyCache interface. Entries are keyed
// by payload *content* hash (via the DAG's model store), so re-published or
// deduplicated payloads share one cached accuracy per client.
#pragma once

#include <memory>

#include "store/eval_cache.hpp"
#include "tipsel/tip_selector.hpp"

namespace specdag::store {

class ClientEvalCacheView final : public tipsel::AccuracyCache {
 public:
  ClientEvalCacheView(std::shared_ptr<ShardedEvalCache> cache, int client);

  std::optional<double> lookup(const dag::Dag& dag, dag::TxId id) override;
  void store(const dag::Dag& dag, dag::TxId id, double accuracy) override;
  // Drops only this client's entries — other clients' data did not change.
  void clear() override;

 private:
  std::shared_ptr<ShardedEvalCache> cache_;
  int client_;
};

}  // namespace specdag::store
