#include "store/model_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/delta_codec.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace specdag::store {
namespace {

struct StoreMetrics {
  obs::Counter& puts = obs::Registry::counter("store.puts");
  obs::Counter& dedup_hits = obs::Registry::counter("store.dedup_hits");
  obs::Counter& decodes = obs::Registry::counter("store.decodes");
  obs::Counter& lru_hits = obs::Registry::counter("store.lru_hits");
  obs::Counter& lru_misses = obs::Registry::counter("store.lru_misses");
  obs::Histogram& encode_queue_depth =
      obs::Registry::histogram("store.encode_queue_depth");
};

StoreMetrics& store_metrics() {
  static StoreMetrics metrics;
  return metrics;
}


std::uint64_t elapsed_nanos(const Timer& timer) {
  return static_cast<std::uint64_t>(timer.elapsed_seconds() * 1e9);
}

}  // namespace

ContentHash hash_weights(const nn::WeightVector& weights) {
  // Both 64-bit mixes in one pass over the data: each splitmix chain is
  // serial (latency-bound), but the two chains are independent, so
  // interleaving them hides most of that latency behind ILP. Chain values
  // are identical to running the two streams separately.
  std::uint64_t hi = 0x5EED5EED5EED5EEDULL;
  std::uint64_t lo = 0xC0FFEE00C0FFEE00ULL;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(weights.data());
  std::size_t remaining = weights.size() * sizeof(float);
  while (remaining >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes, 8);
    hi = splitmix64(hi ^ word);
    lo = splitmix64(lo ^ word);
    bytes += 8;
    remaining -= 8;
  }
  if (remaining > 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes, remaining);
    hi = splitmix64(hi ^ word);
    lo = splitmix64(lo ^ word);
  }
  // Fold in the length so a zero-padded tail cannot alias a longer vector.
  return ContentHash{splitmix64(hi ^ weights.size()), splitmix64(lo ^ weights.size())};
}

ModelStore::ModelStore(StoreConfig config) : config_(config) {
  if (config_.anchor_interval == 0) {
    throw std::invalid_argument("ModelStore: anchor_interval must be > 0");
  }
  if (config_.delta && config_.async_encode) {
    encode_pool_ = std::make_unique<ThreadPool>(config_.encode_threads, "encode");
  }
}

ModelStore::~ModelStore() {
  // The pool's destructor completes every queued encode, but wait here too
  // so the store is quiescent before any member teardown begins.
  if (encode_pool_) drain();
}

nn::WeightVector ModelStore::base_vector_locked(const std::vector<PayloadId>& bases) const {
  std::vector<WeightsPtr> held;
  std::vector<const nn::WeightVector*> ptrs;
  held.reserve(bases.size());
  for (PayloadId base : bases) {
    held.push_back(materialize_locked(base));
    ptrs.push_back(held.back().get());
  }
  // Matches the base the publishing client trained from (DagClient averages
  // its deduplicated parent payloads with the same function).
  return nn::average_weights(ptrs);
}

PayloadId ModelStore::put(WeightsPtr weights, const std::vector<PayloadId>& bases,
                          WeightsPtr encode_base) {
  if (!weights) throw std::invalid_argument("ModelStore::put: null payload");
  if (encode_base && encode_base->size() != weights->size()) encode_base = nullptr;
  store_metrics().puts.add();
  const ContentHash hash = hash_weights(*weights);

  std::unique_lock lock(entries_mutex_);
  if (auto it = by_hash_.find(hash); it != by_hash_.end()) {
    ++dedup_hits_;
    store_metrics().dedup_hits.add();
    return it->second;
  }

  Entry entry;
  entry.hash = hash;
  entry.num_floats = static_cast<std::uint32_t>(weights->size());
  const std::size_t raw_bytes = weights->size() * sizeof(float);

  std::uint32_t chain_depth = 0;
  if (config_.delta && !bases.empty()) {
    for (PayloadId base : bases) {
      if (base >= entries_.size()) {
        throw std::invalid_argument("ModelStore::put: unknown base payload");
      }
      if (entries_[base].num_floats != entry.num_floats) {
        throw std::invalid_argument("ModelStore::put: base length mismatch");
      }
      chain_depth = std::max(chain_depth, entries_[base].chain_depth + 1);
    }
  }

  const auto id = static_cast<PayloadId>(entries_.size());
  const bool encodable = config_.delta && !bases.empty();

  if (encodable && encode_pool_) {
    // Async pipeline: commit the raw payload now, encode in the background.
    // The chain-depth computed above may be provisional (a base could still
    // be pending and fall back to an anchor); the worker recomputes it from
    // the bases' settled states, reproducing the synchronous decision.
    entry.state = EntryState::kEncoding;
    entry.bases = bases;
    entry.raw = std::move(weights);
    entry.encode_base = std::move(encode_base);
    full_payload_bytes_ += raw_bytes;
    resident_payload_bytes_ += raw_bytes;  // raw until the delta lands
    entries_.push_back(std::move(entry));
    by_hash_.emplace(hash, id);
    {
      std::lock_guard encode_lock(encode_mutex_);
      unsettled_.insert(id);
      peak_pending_ = std::max(peak_pending_, unsettled_.size());
      store_metrics().encode_queue_depth.record(unsettled_.size());
    }
    // Flow event links this put() to its background encode completion in the
    // trace viewer (an arrow from the committing thread to the worker).
    if (obs::tracing_enabled()) obs::trace_detail::flow_start("encode", id);
    try {
      encode_pool_->post([this, id] { encode_async(id); });
    } catch (...) {
      // Enqueue failed (allocation / pool shutdown): degrade to a raw
      // anchor exactly like the worker's own fallback — the payload is
      // already committed raw, and settling here keeps drain() from
      // waiting forever on an entry no worker will ever pick up.
      Entry& orphan = entries_[id];
      orphan.state = EntryState::kAnchor;
      orphan.bases.clear();
      orphan.encode_base = nullptr;
      ++anchor_count_;
      {
        std::lock_guard encode_lock(encode_mutex_);
        unsettled_.erase(id);
      }
      encode_cv_.notify_all();
    }
    return id;
  }

  bool stored_as_delta = false;
  if (encodable && chain_depth <= config_.anchor_interval) {
    obs::ScopedSpan span("encode.inline", {{"payload", id}});
    Timer encode_timer;
    nn::WeightVector base_storage;
    const nn::WeightVector* base = encode_base.get();
    if (base == nullptr) {
      base_storage = base_vector_locked(bases);
      base = &base_storage;
    }
    std::vector<std::uint8_t> encoded =
        encode_delta(weights->data(), base->data(), weights->size());
    encode_nanos_inline_.fetch_add(elapsed_nanos(encode_timer), std::memory_order_relaxed);
    if (encoded.size() < raw_bytes) {
      entry.state = EntryState::kDelta;
      entry.chain_depth = chain_depth;
      entry.bases = bases;
      entry.encoded = std::move(encoded);
      stored_as_delta = true;
    }
  }
  if (!stored_as_delta) entry.raw = weights;

  full_payload_bytes_ += raw_bytes;
  if (stored_as_delta) {
    resident_payload_bytes_ += entry.encoded.size();
  } else {
    ++anchor_count_;
    resident_payload_bytes_ += raw_bytes;
  }
  entries_.push_back(std::move(entry));
  by_hash_.emplace(hash, id);
  if (stored_as_delta) {
    // The publisher and its neighbors will read this payload immediately:
    // seed the LRU so the first walks do not pay a decode.
    lru_insert(id, std::move(weights));
  }
  return id;
}

void ModelStore::encode_async(PayloadId id) {
  try {
    encode_async_impl(id);
  } catch (...) {
    // The pool's post() contract forbids escaping exceptions (they would
    // terminate the worker). An encode that failed — realistically only
    // bad_alloc from the codec's buffers — degrades the entry to a raw
    // anchor: its content is already served from `raw`, and settling here
    // keeps drain() from hanging. (The synchronous path surfaces the same
    // condition as an exception from put() instead.)
    std::unique_lock lock(entries_mutex_);
    Entry& entry = entries_[id];
    if (entry.state == EntryState::kEncoding) {
      entry.state = EntryState::kAnchor;
      entry.bases.clear();
      ++anchor_count_;
      ++async_encoded_;
      std::lock_guard encode_lock(encode_mutex_);
      unsettled_.erase(id);
    }
    lock.unlock();
    encode_cv_.notify_all();
  }
}

void ModelStore::encode_async_impl(PayloadId id) {
  std::vector<PayloadId> bases;
  WeightsPtr raw;
  WeightsPtr encode_base;
  {
    std::shared_lock lock(entries_mutex_);
    bases = entries_[id].bases;
    raw = entries_[id].raw;
    encode_base = entries_[id].encode_base;
  }

  // Wait for every base to settle: the delta/anchor decision below must see
  // the bases' *final* chain depths to reproduce the synchronous outcome.
  // Bases were enqueued before this entry (FIFO pool), so the wait is
  // bounded by in-flight work and cannot deadlock.
  {
    std::unique_lock encode_lock(encode_mutex_);
    encode_cv_.wait(encode_lock, [&] {
      for (PayloadId base : bases) {
        if (unsettled_.count(base) > 0) return false;
      }
      return true;
    });
  }

  // Time only the real encode work (not the wait above), and publish the
  // nanos before settling so a drain()-then-stats() sees the full cost.
  obs::ScopedSpan span("encode.async", {{"payload", id}});
  // Flow end emitted after the span's B event so the 'f' (bp:"e") lands
  // inside the encode.async slice and the put->encode arrow binds to it.
  if (obs::tracing_enabled()) obs::trace_detail::flow_finish("encode", id);
  Timer encode_timer;
  std::uint32_t chain_depth = 0;
  {
    std::shared_lock lock(entries_mutex_);
    for (PayloadId base : bases) {
      chain_depth = std::max(chain_depth, entries_[base].chain_depth + 1);
    }
  }

  std::vector<std::uint8_t> encoded;
  bool stored_as_delta = false;
  const std::size_t raw_bytes = raw->size() * sizeof(float);
  if (chain_depth <= config_.anchor_interval) {
    nn::WeightVector base_storage;
    const nn::WeightVector* base = encode_base.get();
    if (base == nullptr) {
      std::shared_lock lock(entries_mutex_);
      base_storage = base_vector_locked(bases);
      base = &base_storage;
    }
    encoded = encode_delta(raw->data(), base->data(), raw->size());
    stored_as_delta = encoded.size() < raw_bytes;
  }
  encode_nanos_async_.fetch_add(elapsed_nanos(encode_timer), std::memory_order_relaxed);

  {
    std::unique_lock lock(entries_mutex_);
    Entry& entry = entries_[id];
    if (stored_as_delta) {
      entry.state = EntryState::kDelta;
      entry.chain_depth = chain_depth;
      entry.encoded = std::move(encoded);
      entry.raw = nullptr;
      resident_payload_bytes_ -= raw_bytes;
      resident_payload_bytes_ += entry.encoded.size();
    } else {
      entry.state = EntryState::kAnchor;
      entry.bases.clear();
      ++anchor_count_;  // residency already counted raw at put()
    }
    entry.encode_base = nullptr;  // hint served its one encode
    ++async_encoded_;
    // Settle while still holding the exclusive lock: stats() (shared +
    // encode_mutex_) then never observes the flip and the queue removal out
    // of step with each other.
    std::lock_guard encode_lock(encode_mutex_);
    unsettled_.erase(id);
  }
  encode_cv_.notify_all();
  if (stored_as_delta) {
    // Mirror the synchronous path: the fresh payload is about to be read by
    // the publisher's neighbors, so seed the LRU with the raw vector.
    lru_insert(id, std::move(raw));
  }
}

void ModelStore::drain() const {
  std::unique_lock encode_lock(encode_mutex_);
  encode_cv_.wait(encode_lock, [&] { return unsettled_.empty(); });
}

WeightsPtr ModelStore::materialize_locked(PayloadId id) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore: unknown payload " + std::to_string(id));
  }
  const Entry& entry = entries_[id];
  // The entry's state machine is the authority: anchors and entries still
  // awaiting their async encode (raw, encoding) serve the retained raw
  // vector; only settled deltas take the LRU/decode path below.
  if (entry.state != EntryState::kDelta) return entry.raw;

  {
    std::lock_guard lru_lock(lru_mutex_);
    if (auto it = lru_.find(id); it != lru_.end()) {
      ++lru_hits_;
      store_metrics().lru_hits.add();
      lru_order_.splice(lru_order_.begin(), lru_order_, it->second.position);
      return it->second.vector;
    }
    ++lru_misses_;
    store_metrics().lru_misses.add();
  }

  const nn::WeightVector base = base_vector_locked(entry.bases);
  auto decoded = std::make_shared<nn::WeightVector>(entry.num_floats);
  decode_delta(entry.encoded.data(), entry.encoded.size(), base.data(), decoded->data(),
               entry.num_floats);
  {
    std::lock_guard lru_lock(lru_mutex_);
    ++decoded_payloads_;
  }
  store_metrics().decodes.add();
  WeightsPtr result = std::move(decoded);
  lru_insert(id, result);
  return result;
}

void ModelStore::lru_insert(PayloadId id, WeightsPtr vector) const {
  std::lock_guard lru_lock(lru_mutex_);
  if (lru_.count(id) > 0) return;  // a concurrent decode of `id` won the race
  const std::size_t bytes = vector->size() * sizeof(float);
  lru_order_.push_front(id);
  lru_.emplace(id, LruNode{std::move(vector), lru_order_.begin()});
  lru_bytes_ += bytes;
  while (lru_bytes_ > config_.lru_bytes && lru_.size() > 1) {
    const PayloadId victim = lru_order_.back();
    auto it = lru_.find(victim);
    lru_bytes_ -= it->second.vector->size() * sizeof(float);
    lru_.erase(it);
    lru_order_.pop_back();
  }
}

WeightsPtr ModelStore::get(PayloadId id) const {
  std::shared_lock lock(entries_mutex_);
  return materialize_locked(id);
}

ContentHash ModelStore::hash_of(PayloadId id) const {
  std::shared_lock lock(entries_mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore: unknown payload " + std::to_string(id));
  }
  return entries_[id].hash;
}

std::size_t ModelStore::num_floats(PayloadId id) const {
  std::shared_lock lock(entries_mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore: unknown payload " + std::to_string(id));
  }
  return entries_[id].num_floats;
}

std::size_t ModelStore::size() const {
  std::shared_lock lock(entries_mutex_);
  return entries_.size();
}

StoreStats ModelStore::stats() const {
  StoreStats out;
  std::shared_lock lock(entries_mutex_);
  out.payloads = entries_.size();
  out.anchors = anchor_count_;
  out.async_encoded = async_encoded_;
  out.dedup_hits = dedup_hits_;
  out.resident_payload_bytes = resident_payload_bytes_;
  out.full_payload_bytes = full_payload_bytes_;
  {
    std::lock_guard encode_lock(encode_mutex_);
    out.pending_encodes = unsettled_.size();
    out.peak_pending_encodes = peak_pending_;
  }
  out.deltas = entries_.size() - anchor_count_ - out.pending_encodes;
  out.encode_seconds =
      static_cast<double>(encode_nanos_inline_.load(std::memory_order_relaxed) +
                          encode_nanos_async_.load(std::memory_order_relaxed)) *
      1e-9;
  std::lock_guard lru_lock(lru_mutex_);
  out.lru_bytes = lru_bytes_;
  out.lru_entries = lru_.size();
  out.lru_hits = lru_hits_;
  out.lru_misses = lru_misses_;
  out.decoded_payloads = decoded_payloads_;
  return out;
}

}  // namespace specdag::store
