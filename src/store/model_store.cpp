#include "store/model_store.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "store/delta_codec.hpp"
#include "util/rng.hpp"

namespace specdag::store {
namespace {

std::uint64_t mix_stream(const nn::WeightVector& weights, std::uint64_t seed) {
  std::uint64_t h = seed;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(weights.data());
  std::size_t remaining = weights.size() * sizeof(float);
  while (remaining >= 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes, 8);
    h = splitmix64(h ^ word);
    bytes += 8;
    remaining -= 8;
  }
  if (remaining > 0) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes, remaining);
    h = splitmix64(h ^ word);
  }
  // Fold in the length so a zero-padded tail cannot alias a longer vector.
  return splitmix64(h ^ weights.size());
}

}  // namespace

ContentHash hash_weights(const nn::WeightVector& weights) {
  return ContentHash{mix_stream(weights, 0x5EED5EED5EED5EEDULL),
                     mix_stream(weights, 0xC0FFEE00C0FFEE00ULL)};
}

ModelStore::ModelStore(StoreConfig config) : config_(config) {
  if (config_.anchor_interval == 0) {
    throw std::invalid_argument("ModelStore: anchor_interval must be > 0");
  }
}

nn::WeightVector ModelStore::base_vector_locked(const std::vector<PayloadId>& bases) const {
  std::vector<WeightsPtr> held;
  std::vector<const nn::WeightVector*> ptrs;
  held.reserve(bases.size());
  for (PayloadId base : bases) {
    held.push_back(materialize_locked(base));
    ptrs.push_back(held.back().get());
  }
  // Matches the base the publishing client trained from (DagClient averages
  // its deduplicated parent payloads with the same function).
  return nn::average_weights(ptrs);
}

PayloadId ModelStore::put(WeightsPtr weights, const std::vector<PayloadId>& bases) {
  if (!weights) throw std::invalid_argument("ModelStore::put: null payload");
  const ContentHash hash = hash_weights(*weights);

  std::unique_lock lock(entries_mutex_);
  if (auto it = by_hash_.find(hash); it != by_hash_.end()) {
    ++dedup_hits_;
    return it->second;
  }

  Entry entry;
  entry.hash = hash;
  entry.num_floats = static_cast<std::uint32_t>(weights->size());
  const std::size_t raw_bytes = weights->size() * sizeof(float);

  std::uint32_t chain_depth = 0;
  if (config_.delta && !bases.empty()) {
    for (PayloadId base : bases) {
      if (base >= entries_.size()) {
        throw std::invalid_argument("ModelStore::put: unknown base payload");
      }
      if (entries_[base].num_floats != entry.num_floats) {
        throw std::invalid_argument("ModelStore::put: base length mismatch");
      }
      chain_depth = std::max(chain_depth, entries_[base].chain_depth + 1);
    }
  }

  bool stored_as_delta = false;
  if (config_.delta && !bases.empty() && chain_depth <= config_.anchor_interval) {
    const nn::WeightVector base = base_vector_locked(bases);
    std::vector<std::uint8_t> encoded =
        encode_delta(weights->data(), base.data(), weights->size());
    if (encoded.size() < raw_bytes) {
      entry.chain_depth = chain_depth;
      entry.bases = bases;
      entry.encoded = std::move(encoded);
      stored_as_delta = true;
    }
  }
  if (!stored_as_delta) entry.raw = weights;

  const auto id = static_cast<PayloadId>(entries_.size());
  full_payload_bytes_ += raw_bytes;
  if (stored_as_delta) {
    resident_payload_bytes_ += entry.encoded.size();
  } else {
    ++anchor_count_;
    resident_payload_bytes_ += raw_bytes;
  }
  entries_.push_back(std::move(entry));
  by_hash_.emplace(hash, id);
  if (stored_as_delta) {
    // The publisher and its neighbors will read this payload immediately:
    // seed the LRU so the first walks do not pay a decode.
    lru_insert(id, std::move(weights));
  }
  return id;
}

WeightsPtr ModelStore::materialize_locked(PayloadId id) const {
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore: unknown payload " + std::to_string(id));
  }
  const Entry& entry = entries_[id];
  if (entry.raw) return entry.raw;

  {
    std::lock_guard lru_lock(lru_mutex_);
    if (auto it = lru_.find(id); it != lru_.end()) {
      ++lru_hits_;
      lru_order_.splice(lru_order_.begin(), lru_order_, it->second.position);
      return it->second.vector;
    }
    ++lru_misses_;
  }

  const nn::WeightVector base = base_vector_locked(entry.bases);
  auto decoded = std::make_shared<nn::WeightVector>(entry.num_floats);
  decode_delta(entry.encoded.data(), entry.encoded.size(), base.data(), decoded->data(),
               entry.num_floats);
  {
    std::lock_guard lru_lock(lru_mutex_);
    ++decoded_payloads_;
  }
  WeightsPtr result = std::move(decoded);
  lru_insert(id, result);
  return result;
}

void ModelStore::lru_insert(PayloadId id, WeightsPtr vector) const {
  std::lock_guard lru_lock(lru_mutex_);
  if (lru_.count(id) > 0) return;  // a concurrent decode of `id` won the race
  const std::size_t bytes = vector->size() * sizeof(float);
  lru_order_.push_front(id);
  lru_.emplace(id, LruNode{std::move(vector), lru_order_.begin()});
  lru_bytes_ += bytes;
  while (lru_bytes_ > config_.lru_bytes && lru_.size() > 1) {
    const PayloadId victim = lru_order_.back();
    auto it = lru_.find(victim);
    lru_bytes_ -= it->second.vector->size() * sizeof(float);
    lru_.erase(it);
    lru_order_.pop_back();
  }
}

WeightsPtr ModelStore::get(PayloadId id) const {
  std::shared_lock lock(entries_mutex_);
  return materialize_locked(id);
}

ContentHash ModelStore::hash_of(PayloadId id) const {
  std::shared_lock lock(entries_mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore: unknown payload " + std::to_string(id));
  }
  return entries_[id].hash;
}

std::size_t ModelStore::num_floats(PayloadId id) const {
  std::shared_lock lock(entries_mutex_);
  if (id >= entries_.size()) {
    throw std::out_of_range("ModelStore: unknown payload " + std::to_string(id));
  }
  return entries_[id].num_floats;
}

std::size_t ModelStore::size() const {
  std::shared_lock lock(entries_mutex_);
  return entries_.size();
}

StoreStats ModelStore::stats() const {
  StoreStats out;
  std::shared_lock lock(entries_mutex_);
  out.payloads = entries_.size();
  out.anchors = anchor_count_;
  out.deltas = entries_.size() - anchor_count_;
  out.dedup_hits = dedup_hits_;
  out.resident_payload_bytes = resident_payload_bytes_;
  out.full_payload_bytes = full_payload_bytes_;
  std::lock_guard lru_lock(lru_mutex_);
  out.lru_bytes = lru_bytes_;
  out.lru_entries = lru_.size();
  out.lru_hits = lru_hits_;
  out.lru_misses = lru_misses_;
  out.decoded_payloads = decoded_payloads_;
  return out;
}

}  // namespace specdag::store
