// Content-addressed model payload store (the "model store" subsystem).
//
// Every weight vector that enters the DAG is interned here exactly once:
//
//   * payloads are content-addressed by a 128-bit hash, so identical vectors
//     (re-published models, replayed attacks) share one entry;
//   * most payloads are stored as a bit-packed XOR *delta* against the
//     elementwise average of their base payloads — the same average the
//     publishing client trained from, so the delta is exactly the local
//     training update and compresses well once training converges;
//   * delta payloads are materialized on demand and kept in a bounded LRU of
//     decoded vectors, so hot DAG regions (tips, walk corridors) stay
//     copy-free while cold history costs only its encoded bytes;
//   * payloads whose delta chain would grow past `anchor_interval`, or whose
//     encoded delta would not actually shrink (early training, attacker
//     noise), are stored raw ("anchors") to bound reconstruction cost.
//
// The store is internally synchronized; readers share materialized vectors
// through shared_ptr exactly like the previous Transaction::weights field,
// so averaging and walks stay copy-free.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "nn/model.hpp"

namespace specdag::store {

using WeightsPtr = std::shared_ptr<const nn::WeightVector>;

// 128-bit content hash (two independently seeded 64-bit mixes); collisions
// are negligible at any realistic payload count, so equality of hashes is
// treated as equality of content.
struct ContentHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ContentHash& a, const ContentHash& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct ContentHashHasher {
  std::size_t operator()(const ContentHash& h) const {
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9E3779B97F4A7C15ULL));
  }
};

ContentHash hash_weights(const nn::WeightVector& weights);

// Handle to an interned payload. Indexes the store's entry table.
using PayloadId = std::uint32_t;
inline constexpr PayloadId kInvalidPayload = 0xFFFFFFFFu;

struct StoreConfig {
  // Store payloads as deltas against their bases (false = every payload is
  // a raw anchor — the pre-store behavior, used as the memory baseline).
  bool delta = true;
  // A payload whose delta chain (hops to the nearest anchor) would exceed
  // this becomes an anchor itself. Bounds worst-case reconstruction work.
  std::size_t anchor_interval = 8;
  // Capacity of the materialized-vector LRU, in bytes.
  std::size_t lru_bytes = std::size_t{64} << 20;
  // Shard count of the evaluation cache built next to this store (consumed
  // by core::SpecializingDag, not by ModelStore itself).
  std::size_t eval_cache_shards = 16;
};

struct StoreStats {
  std::size_t payloads = 0;
  std::size_t anchors = 0;         // raw entries (incl. codec fallbacks)
  std::size_t deltas = 0;          // delta-encoded entries
  std::size_t dedup_hits = 0;      // put() calls answered by an existing entry
  std::size_t resident_payload_bytes = 0;  // raw anchors + encoded delta bytes
  std::size_t full_payload_bytes = 0;      // what full-vector storage would hold
  std::size_t lru_bytes = 0;
  std::size_t lru_entries = 0;
  std::uint64_t lru_hits = 0;
  std::uint64_t lru_misses = 0;    // materializations that had to decode
  std::uint64_t decoded_payloads = 0;  // total delta decodes performed

  // Resident fraction of the full-vector baseline (1.0 when delta is off).
  double delta_ratio() const {
    return full_payload_bytes == 0
               ? 1.0
               : static_cast<double>(resident_payload_bytes) /
                     static_cast<double>(full_payload_bytes);
  }
  double lru_hit_rate() const {
    const double total = static_cast<double>(lru_hits + lru_misses);
    return total == 0.0 ? 0.0 : static_cast<double>(lru_hits) / total;
  }
};

class ModelStore {
 public:
  explicit ModelStore(StoreConfig config = {});

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  // Interns `weights`. `bases` are the payloads of the new payload's parent
  // transactions; when delta storage is enabled the vector is encoded
  // against their elementwise average (the exact base the publisher trained
  // from). An empty `bases` forces an anchor. Returns the id of the interned
  // (or pre-existing identical) payload.
  PayloadId put(WeightsPtr weights, const std::vector<PayloadId>& bases);

  // Materializes the payload (LRU-cached for delta entries). The returned
  // vector is bit-identical to the one passed to put().
  WeightsPtr get(PayloadId id) const;

  ContentHash hash_of(PayloadId id) const;
  std::size_t num_floats(PayloadId id) const;
  std::size_t size() const;

  StoreStats stats() const;
  const StoreConfig& config() const { return config_; }

 private:
  struct Entry {
    ContentHash hash;
    std::uint32_t num_floats = 0;
    std::uint32_t chain_depth = 0;  // 0 for anchors
    std::vector<PayloadId> bases;   // empty for anchors
    std::vector<std::uint8_t> encoded;  // delta entries only
    WeightsPtr raw;                     // anchors stay materialized
  };

  struct LruNode {
    WeightsPtr vector;
    std::list<PayloadId>::iterator position;
  };

  // Requires entries_mutex_ (shared suffices); takes lru_mutex_ internally.
  WeightsPtr materialize_locked(PayloadId id) const;
  nn::WeightVector base_vector_locked(const std::vector<PayloadId>& bases) const;
  void lru_insert(PayloadId id, WeightsPtr vector) const;

  const StoreConfig config_;

  // Lock order: entries_mutex_ before lru_mutex_, never the reverse.
  // Entries are append-only and immutable once written, so readers share
  // entries_mutex_ (raw anchors are returned without ever touching the LRU
  // lock); put() takes it exclusively to append. The LRU bookkeeping has
  // its own short-lived mutex so concurrent walkers only serialize on the
  // cache update, not on whole-chain decodes. Two threads may race to
  // decode the same payload — both produce the bit-identical vector, one
  // insert wins, the duplicate work is benign.
  mutable std::shared_mutex entries_mutex_;
  std::vector<Entry> entries_;
  std::unordered_map<ContentHash, PayloadId, ContentHashHasher> by_hash_;
  std::size_t full_payload_bytes_ = 0;      // guarded by entries_mutex_
  std::size_t resident_payload_bytes_ = 0;  // guarded by entries_mutex_
  std::size_t dedup_hits_ = 0;              // guarded by entries_mutex_
  std::size_t anchor_count_ = 0;            // guarded by entries_mutex_

  // Materialized delta payloads, most recently used first.
  mutable std::mutex lru_mutex_;
  mutable std::list<PayloadId> lru_order_;
  mutable std::unordered_map<PayloadId, LruNode> lru_;
  mutable std::size_t lru_bytes_ = 0;
  mutable std::uint64_t lru_hits_ = 0;
  mutable std::uint64_t lru_misses_ = 0;
  mutable std::uint64_t decoded_payloads_ = 0;
};

}  // namespace specdag::store
