// Content-addressed model payload store (the "model store" subsystem).
//
// Every weight vector that enters the DAG is interned here exactly once:
//
//   * payloads are content-addressed by a 128-bit hash, so identical vectors
//     (re-published models, replayed attacks) share one entry;
//   * most payloads are stored as a bit-packed XOR *delta* against the
//     elementwise average of their base payloads — the same average the
//     publishing client trained from, so the delta is exactly the local
//     training update and compresses well once training converges;
//   * delta payloads are materialized on demand and kept in a bounded LRU of
//     decoded vectors, so hot DAG regions (tips, walk corridors) stay
//     copy-free while cold history costs only its encoded bytes;
//   * payloads whose delta chain would grow past `anchor_interval`, or whose
//     encoded delta would not actually shrink (early training, attacker
//     noise), are stored raw ("anchors") to bound reconstruction cost.
//
// Asynchronous encode pipeline: with `async_encode` on, put() commits the
// raw payload immediately and enqueues the XOR encoding on a background
// util::ThreadPool. Each entry moves through a small state machine
//
//     raw (pending) -> encoding -> delta | anchor
//
// and readers materialize from the retained raw vector until the delta
// lands, so the commit path never waits on the codec. Workers settle
// entries in put order (FIFO pool + an explicit wait for the bases to
// settle first), which makes every delta/anchor decision — and therefore
// the post-drain delta_ratio — bit-identical to synchronous encoding at
// any worker count. drain() is the barrier the runner (and the tests) use
// to wait for the queue to empty.
//
// The store is internally synchronized; readers share materialized vectors
// through shared_ptr exactly like the previous Transaction::weights field,
// so averaging and walks stay copy-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nn/model.hpp"
#include "util/thread_pool.hpp"

namespace specdag::snapshot {
struct Access;
}

namespace specdag::store {

using WeightsPtr = std::shared_ptr<const nn::WeightVector>;

// 128-bit content hash (two independently seeded 64-bit mixes); collisions
// are negligible at any realistic payload count, so equality of hashes is
// treated as equality of content.
struct ContentHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ContentHash& a, const ContentHash& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct ContentHashHasher {
  std::size_t operator()(const ContentHash& h) const {
    return static_cast<std::size_t>(h.hi ^ (h.lo * 0x9E3779B97F4A7C15ULL));
  }
};

ContentHash hash_weights(const nn::WeightVector& weights);

// Handle to an interned payload. Indexes the store's entry table.
using PayloadId = std::uint32_t;
inline constexpr PayloadId kInvalidPayload = 0xFFFFFFFFu;

struct StoreConfig {
  // Store payloads as deltas against their bases (false = every payload is
  // a raw anchor — the pre-store behavior, used as the memory baseline).
  bool delta = true;
  // Encode deltas on background workers instead of inside put(): the commit
  // path returns as soon as the raw payload is hashed and appended, and the
  // codec runs off the hot path. Results (payload contents, delta/anchor
  // decisions, post-drain delta_ratio) are bit-identical to synchronous
  // encoding at any worker count.
  bool async_encode = false;
  // Worker threads of the async encode pool (0 = one per hardware thread).
  // Ignored when async_encode is off.
  std::size_t encode_threads = 1;
  // A payload whose delta chain (hops to the nearest anchor) would exceed
  // this becomes an anchor itself. Bounds worst-case reconstruction work.
  std::size_t anchor_interval = 8;
  // Capacity of the materialized-vector LRU, in bytes.
  std::size_t lru_bytes = std::size_t{64} << 20;
  // Shard count of the evaluation cache built next to this store (consumed
  // by core::SpecializingDag, not by ModelStore itself).
  std::size_t eval_cache_shards = 16;
};

struct StoreStats {
  std::size_t payloads = 0;
  std::size_t anchors = 0;         // raw entries (incl. codec fallbacks)
  std::size_t deltas = 0;          // delta-encoded entries
  std::size_t pending_encodes = 0;  // queued/in-flight async encodes (raw until settled)
  std::size_t peak_pending_encodes = 0;  // high-water mark of the encode queue
  std::size_t async_encoded = 0;   // entries settled through the background pipeline
  std::size_t dedup_hits = 0;      // put() calls answered by an existing entry
  std::size_t resident_payload_bytes = 0;  // raw anchors + pending raws + encoded deltas
  std::size_t full_payload_bytes = 0;      // what full-vector storage would hold
  std::size_t lru_bytes = 0;
  std::size_t lru_entries = 0;
  std::uint64_t lru_hits = 0;
  std::uint64_t lru_misses = 0;    // materializations that had to decode
  std::uint64_t decoded_payloads = 0;  // total delta decodes performed
  // Total wall time spent in the XOR codec + base materialization for
  // encoding, wherever it ran (inline in put() or on the async workers).
  double encode_seconds = 0.0;

  // Resident fraction of the full-vector baseline (1.0 when delta is off).
  double delta_ratio() const {
    return full_payload_bytes == 0
               ? 1.0
               : static_cast<double>(resident_payload_bytes) /
                     static_cast<double>(full_payload_bytes);
  }
  double lru_hit_rate() const {
    const double total = static_cast<double>(lru_hits + lru_misses);
    return total == 0.0 ? 0.0 : static_cast<double>(lru_hits) / total;
  }
};

class ModelStore {
 public:
  explicit ModelStore(StoreConfig config = {});
  ~ModelStore();

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  // Interns `weights`. `bases` are the payloads of the new payload's parent
  // transactions; when delta storage is enabled the vector is encoded
  // against their elementwise average (the exact base the publisher trained
  // from). An empty `bases` forces an anchor. Returns the id of the interned
  // (or pre-existing identical) payload. With async_encode the encoding is
  // deferred to the background pool and this returns immediately.
  // `encode_base`, when given, must be the average of the bases' payloads
  // (what base_vector_locked would compute — decode recomputes that average,
  // so a mismatching hint would corrupt the payload). Publishers already
  // hold this vector as their training start point; passing it here skips
  // re-materializing and re-averaging the bases on the encode path. A hint
  // of the wrong length is ignored.
  PayloadId put(WeightsPtr weights, const std::vector<PayloadId>& bases,
                WeightsPtr encode_base = nullptr);

  // Materializes the payload (LRU-cached for delta entries; entries still
  // awaiting their async encode serve the retained raw vector). The
  // returned vector is bit-identical to the one passed to put().
  WeightsPtr get(PayloadId id) const;

  ContentHash hash_of(PayloadId id) const;
  std::size_t num_floats(PayloadId id) const;
  std::size_t size() const;

  // Blocks until every queued/in-flight async encode has settled (no-op in
  // synchronous mode). The runner calls this at run end; tests use it as
  // the barrier before asserting delta_ratio.
  void drain() const;

  // Cumulative nanoseconds of encode work done inline in put() — the part
  // of the codec cost that sits on the caller's (commit) path. The
  // simulators sample this around their commit sections to split the
  // `encode` perf bucket out of `commit`.
  std::uint64_t encode_nanos_inline() const {
    return encode_nanos_inline_.load(std::memory_order_relaxed);
  }
  // Cumulative nanoseconds of encode work done on the background pool.
  std::uint64_t encode_nanos_async() const {
    return encode_nanos_async_.load(std::memory_order_relaxed);
  }

  StoreStats stats() const;
  const StoreConfig& config() const { return config_; }

 private:
  friend struct snapshot::Access;  // checkpoint serialization (src/snapshot)

  // Lifecycle of an entry's payload representation. Sync puts settle
  // immediately (kAnchor or kDelta); async puts pass through kEncoding.
  enum class EntryState : std::uint8_t { kAnchor, kEncoding, kDelta };

  struct Entry {
    ContentHash hash;
    EntryState state = EntryState::kAnchor;
    std::uint32_t num_floats = 0;
    std::uint32_t chain_depth = 0;  // 0 for anchors
    std::vector<PayloadId> bases;   // empty for anchors
    std::vector<std::uint8_t> encoded;  // delta entries only
    WeightsPtr raw;  // anchors stay materialized; pending entries hold it too
    WeightsPtr encode_base;  // put()'s base hint, held until the async encode
  };

  struct LruNode {
    WeightsPtr vector;
    std::list<PayloadId>::iterator position;
  };

  // Requires entries_mutex_ (shared suffices); takes lru_mutex_ internally.
  WeightsPtr materialize_locked(PayloadId id) const;
  nn::WeightVector base_vector_locked(const std::vector<PayloadId>& bases) const;
  void lru_insert(PayloadId id, WeightsPtr vector) const;
  // Background worker: waits for `id`'s bases to settle, encodes, and flips
  // the entry to its final state (kDelta or kAnchor fallback). The outer
  // wrapper converts an encode failure into a raw-anchor fallback instead
  // of letting the exception escape the pool worker.
  void encode_async(PayloadId id);
  void encode_async_impl(PayloadId id);

  const StoreConfig config_;

  // Lock order: entries_mutex_ before encode_mutex_ before lru_mutex_ (each
  // may be taken alone; never in reverse). Entries are append-only and
  // immutable once *settled*; pending entries are flipped exactly once by
  // their encode worker under the exclusive lock. Readers share
  // entries_mutex_ (raw anchors and pending raws are returned without ever
  // touching the LRU lock); put() takes it exclusively to append. The LRU
  // bookkeeping has its own short-lived mutex so concurrent walkers only
  // serialize on the cache update, not on whole-chain decodes. Two threads
  // may race to decode the same payload — both produce the bit-identical
  // vector, one insert wins, the duplicate work is benign.
  mutable std::shared_mutex entries_mutex_;
  std::vector<Entry> entries_;
  std::unordered_map<ContentHash, PayloadId, ContentHashHasher> by_hash_;
  std::size_t full_payload_bytes_ = 0;      // guarded by entries_mutex_
  std::size_t resident_payload_bytes_ = 0;  // guarded by entries_mutex_
  std::size_t dedup_hits_ = 0;              // guarded by entries_mutex_
  std::size_t anchor_count_ = 0;            // guarded by entries_mutex_
  std::size_t async_encoded_ = 0;           // guarded by entries_mutex_

  // --- async encode pipeline ----------------------------------------------
  // unsettled_ tracks entries still in flight; workers wait on encode_cv_
  // for their bases to leave the set, drain() waits for it to empty. The
  // pool is declared last so its destructor (which completes every queued
  // task) runs while the rest of the store is still alive.
  mutable std::mutex encode_mutex_;
  mutable std::condition_variable encode_cv_;
  mutable std::unordered_set<PayloadId> unsettled_;  // guarded by encode_mutex_
  std::size_t peak_pending_ = 0;                     // guarded by encode_mutex_
  std::atomic<std::uint64_t> encode_nanos_inline_{0};
  std::atomic<std::uint64_t> encode_nanos_async_{0};

  // Materialized delta payloads, most recently used first.
  mutable std::mutex lru_mutex_;
  mutable std::list<PayloadId> lru_order_;
  mutable std::unordered_map<PayloadId, LruNode> lru_;
  mutable std::size_t lru_bytes_ = 0;
  mutable std::uint64_t lru_hits_ = 0;
  mutable std::uint64_t lru_misses_ = 0;
  mutable std::uint64_t decoded_payloads_ = 0;

  std::unique_ptr<ThreadPool> encode_pool_;  // null in synchronous mode
};

}  // namespace specdag::store
