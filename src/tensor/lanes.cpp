#include "tensor/lanes.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SPECDAG_LANES_X86 1
#include <immintrin.h>
#endif

namespace specdag::lanes {
namespace {

// ------------------------------------------------------------- scalar ---
//
// The scalar loops are the reference semantics; the SIMD variants below
// must match them bit-for-bit (mul-then-add only — never FMA, which fuses
// the rounding step and changes low bits).

#if !SPECDAG_LANES_X86

void axpy_scalar(float* dst, const float* src, float a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] += a * src[j];
}

void sgd_step_scalar(float* w, float* g, float lr, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    w[j] -= lr * g[j];
    g[j] = 0.0f;
  }
}

void relu_forward_scalar(const float* x, float* y, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) y[j] = x[j] > 0.0f ? x[j] : 0.0f;
}

void relu_backward_mask_scalar(const float* x, float* g, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j] <= 0.0f) g[j] = 0.0f;
  }
}

#else  // SPECDAG_LANES_X86

// --------------------------------------------------------------- SSE2 ---
// (baseline for x86-64, no target attribute needed)

void axpy_sse2(float* dst, const float* src, float a, std::size_t n) {
  const __m128 va = _mm_set1_ps(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128 s = _mm_loadu_ps(src + j);
    const __m128 d = _mm_loadu_ps(dst + j);
    _mm_storeu_ps(dst + j, _mm_add_ps(d, _mm_mul_ps(va, s)));
  }
  for (; j < n; ++j) dst[j] += a * src[j];
}

void sgd_step_sse2(float* w, float* g, float lr, std::size_t n) {
  const __m128 vlr = _mm_set1_ps(lr);
  const __m128 zero = _mm_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128 vw = _mm_loadu_ps(w + j);
    const __m128 vg = _mm_loadu_ps(g + j);
    _mm_storeu_ps(w + j, _mm_sub_ps(vw, _mm_mul_ps(vlr, vg)));
    _mm_storeu_ps(g + j, zero);
  }
  for (; j < n; ++j) {
    w[j] -= lr * g[j];
    g[j] = 0.0f;
  }
}

void relu_forward_sse2(const float* x, float* y, std::size_t n) {
  const __m128 zero = _mm_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128 v = _mm_loadu_ps(x + j);
    // x > 0 ? x : 0 — a mask-and, so -0.0 and NaN land exactly where the
    // scalar ternary puts them (+0.0).
    _mm_storeu_ps(y + j, _mm_and_ps(v, _mm_cmpgt_ps(v, zero)));
  }
  for (; j < n; ++j) y[j] = x[j] > 0.0f ? x[j] : 0.0f;
}

void relu_backward_mask_sse2(const float* x, float* g, std::size_t n) {
  const __m128 zero = _mm_setzero_ps();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128 v = _mm_loadu_ps(x + j);
    const __m128 vg = _mm_loadu_ps(g + j);
    // Zero g where x <= 0; NaN compares false, so its gradient survives,
    // matching the scalar `if (x <= 0) g = 0`.
    _mm_storeu_ps(g + j, _mm_andnot_ps(_mm_cmple_ps(v, zero), vg));
  }
  for (; j < n; ++j) {
    if (x[j] <= 0.0f) g[j] = 0.0f;
  }
}

// --------------------------------------------------------------- AVX2 ---

__attribute__((target("avx2"))) void axpy_avx2(float* dst, const float* src, float a,
                                               std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 s = _mm256_loadu_ps(src + j);
    const __m256 d = _mm256_loadu_ps(dst + j);
    _mm256_storeu_ps(dst + j, _mm256_add_ps(d, _mm256_mul_ps(va, s)));
  }
  for (; j < n; ++j) dst[j] += a * src[j];
}

__attribute__((target("avx2"))) void sgd_step_avx2(float* w, float* g, float lr,
                                                   std::size_t n) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vw = _mm256_loadu_ps(w + j);
    const __m256 vg = _mm256_loadu_ps(g + j);
    _mm256_storeu_ps(w + j, _mm256_sub_ps(vw, _mm256_mul_ps(vlr, vg)));
    _mm256_storeu_ps(g + j, zero);
  }
  for (; j < n; ++j) {
    w[j] -= lr * g[j];
    g[j] = 0.0f;
  }
}

__attribute__((target("avx2"))) void relu_forward_avx2(const float* x, float* y,
                                                       std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 v = _mm256_loadu_ps(x + j);
    _mm256_storeu_ps(y + j, _mm256_and_ps(v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ)));
  }
  for (; j < n; ++j) y[j] = x[j] > 0.0f ? x[j] : 0.0f;
}

__attribute__((target("avx2"))) void relu_backward_mask_avx2(const float* x, float* g,
                                                             std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 v = _mm256_loadu_ps(x + j);
    const __m256 vg = _mm256_loadu_ps(g + j);
    _mm256_storeu_ps(g + j, _mm256_andnot_ps(_mm256_cmp_ps(v, zero, _CMP_LE_OQ), vg));
  }
  for (; j < n; ++j) {
    if (x[j] <= 0.0f) g[j] = 0.0f;
  }
}

#endif  // SPECDAG_LANES_X86

struct Backend {
  void (*axpy)(float*, const float*, float, std::size_t);
  void (*sgd_step)(float*, float*, float, std::size_t);
  void (*relu_forward)(const float*, float*, std::size_t);
  void (*relu_backward_mask)(const float*, float*, std::size_t);
  const char* name;
};

Backend pick_backend() {
#if SPECDAG_LANES_X86
  if (__builtin_cpu_supports("avx2")) {
    return {axpy_avx2, sgd_step_avx2, relu_forward_avx2, relu_backward_mask_avx2, "avx2"};
  }
  return {axpy_sse2, sgd_step_sse2, relu_forward_sse2, relu_backward_mask_sse2, "sse2"};
#else
  return {axpy_scalar, sgd_step_scalar, relu_forward_scalar, relu_backward_mask_scalar,
          "scalar"};
#endif
}

const Backend& backend_impl() {
  static const Backend backend = pick_backend();
  return backend;
}

}  // namespace

void axpy(float* dst, const float* src, float a, std::size_t n) {
  backend_impl().axpy(dst, src, a, n);
}

void sgd_step(float* w, float* g, float lr, std::size_t n) {
  backend_impl().sgd_step(w, g, lr, n);
}

void relu_forward(const float* x, float* y, std::size_t n) {
  backend_impl().relu_forward(x, y, n);
}

void relu_backward_mask(const float* x, float* g, std::size_t n) {
  backend_impl().relu_backward_mask(x, g, n);
}

const char* backend() { return backend_impl().name; }

}  // namespace specdag::lanes
