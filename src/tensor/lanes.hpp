// Element-wise float kernels shared by the scalar layers and the SoA batch
// executor, with runtime SIMD dispatch (AVX2 -> SSE2 -> scalar) in the same
// style as the delta codec's XOR backends.
//
// Every kernel is element-independent (no reductions, no FMA), so the SIMD
// variants are bit-identical to the scalar loops: vectorizing a loop whose
// iterations don't interact cannot change any element's rounding.
#pragma once

#include <cstddef>

namespace specdag::lanes {

// dst[j] += a * src[j]  — the inner loop of the ikj matmul kernels.
void axpy(float* dst, const float* src, float a, std::size_t n);

// w[j] -= lr * g[j]; g[j] = 0  — fused SGD step + grad reset.
void sgd_step(float* w, float* g, float lr, std::size_t n);

// y[j] = x[j] > 0 ? x[j] : 0  (matches the scalar ternary for -0.0 and NaN).
void relu_forward(const float* x, float* y, std::size_t n);

// g[j] = (x[j] <= 0) ? 0 : g[j]  (NaN inputs keep their gradient, like the
// scalar `if (x <= 0) g = 0` it replaces).
void relu_backward_mask(const float* x, float* g, std::size_t n);

// Name of the dispatched backend: "avx2", "sse2", or "scalar".
const char* backend();

}  // namespace specdag::lanes
