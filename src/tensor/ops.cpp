#include "tensor/ops.hpp"

#include <algorithm>
#include <limits>

#include "tensor/lanes.hpp"

namespace specdag {
namespace {

void require_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + " must be rank-2, got " +
                                shape_to_string(t.shape()));
  }
}

}  // namespace

// ------------------------------------------------------- raw kernels ---

void matmul_into(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                 std::size_t n) {
  std::fill(c, c + m * n, 0.0f);
  // ikj loop order: streams through b and c rows, cache friendly.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      lanes::axpy(c + i * n, b + kk * n, aik, n);
    }
  }
}

void matmul_transposed_b_into(const float* a, const float* b, float* c, std::size_t m,
                              std::size_t k, std::size_t n) {
  // Transposing b (n x k -> k x n) turns the j-loop into a contiguous SIMD
  // axpy while keeping the low bits of the scalar running-sum dot: each
  // c[i,j] still receives its kk-terms one at a time in kk order, each as a
  // separate multiply-then-add (lanes::axpy never fuses). The zero-skip is
  // exact too — the accumulator starts at +0.0f and skipped terms are
  // +-0.0f products, which can never change it.
  thread_local std::vector<float> bt;
  bt.resize(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    for (std::size_t kk = 0; kk < k; ++kk) bt[kk * n + j] = brow[kk];
  }
  std::fill(c, c + m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      lanes::axpy(crow, bt.data() + kk * n, aik, n);
    }
  }
}

void matmul_transposed_a_acc(const float* a, const float* b, float* c, std::size_t k,
                             std::size_t m, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      lanes::axpy(c + i * n, brow, aik, n);
    }
  }
}

void add_row_bias_into(float* m, const float* bias, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m[r * cols + c] += bias[c];
  }
}

void im2col_into(const float* input, std::size_t n, std::size_t h, std::size_t w,
                 const Conv2dSpec& spec, float* cols) {
  const std::size_t c = spec.in_channels;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w), k = spec.kernel;
  const std::size_t col_width = c * k * k;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* dst = cols + ((img * oh + oy) * ow + ox) * col_width;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              float v = 0.0f;
              if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(h) && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(w)) {
                v = input[((img * c + ch) * h + static_cast<std::size_t>(iy)) * w +
                          static_cast<std::size_t>(ix)];
              }
              dst[(ch * k + ky) * k + kx] = v;
            }
          }
        }
      }
    }
  }
}

void col2im_into(const float* cols, std::size_t n, std::size_t h, std::size_t w,
                 const Conv2dSpec& spec, float* grad) {
  const std::size_t c = spec.in_channels;
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w), k = spec.kernel;
  const std::size_t col_width = c * k * k;
  std::fill(grad, grad + n * c * h * w, 0.0f);
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* src = cols + ((img * oh + oy) * ow + ox) * col_width;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              grad[((img * c + ch) * h + static_cast<std::size_t>(iy)) * w +
                   static_cast<std::size_t>(ix)] += src[(ch * k + ky) * k + kx];
            }
          }
        }
      }
    }
  }
}

void positions_to_nchw(const float* cols, float* out, std::size_t n, std::size_t oc,
                       std::size_t positions) {
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t pos = 0; pos < positions; ++pos) {
      for (std::size_t ch = 0; ch < oc; ++ch) {
        out[(img * oc + ch) * positions + pos] = cols[(img * positions + pos) * oc + ch];
      }
    }
  }
}

void nchw_to_positions(const float* in, float* cols, std::size_t n, std::size_t oc,
                       std::size_t positions) {
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t pos = 0; pos < positions; ++pos) {
      for (std::size_t ch = 0; ch < oc; ++ch) {
        cols[(img * positions + pos) * oc + ch] = in[(img * oc + ch) * positions + pos];
      }
    }
  }
}

void matmul_multi_rhs(const float* a, const float* const* bs, float* const* cs,
                      std::size_t lanes, std::size_t m, std::size_t k, std::size_t n) {
  // Per lane the accumulation is kk-ascending in both branches below, so the
  // result is bit-identical to `lanes` independent matmul_into calls either
  // way; only the interleaving across (independent) lane buffers differs.
  if (m * k * sizeof(float) <= std::size_t{256} << 10) {
    // A cache-resident: sequential per-lane GEMMs stream each B exactly once
    // and re-read A from cache for free. Interleaving lanes here would only
    // shred the B prefetch streams.
    for (std::size_t l = 0; l < lanes; ++l) matmul_into(a, bs[l], cs[l], m, k, n);
    return;
  }
  for (std::size_t l = 0; l < lanes; ++l) std::fill(cs[l], cs[l] + m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = a[i * k + kk];
      if (aik == 0.0f) continue;
      // Lane loop innermost: each row of the large A is read once for all
      // lanes instead of `lanes` times from memory.
      for (std::size_t l = 0; l < lanes; ++l) {
        lanes::axpy(cs[l] + i * n, bs[l] + kk * n, aik, n);
      }
    }
  }
}

// ---------------------------------------------------- Tensor wrappers ---

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul: a");
  require_matrix(b, "matmul: b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dims mismatch " + shape_to_string(a.shape()) +
                                " x " + shape_to_string(b.shape()));
  }
  Tensor c({m, n});
  matmul_into(a.raw(), b.raw(), c.raw(), m, k, n);
  return c;
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transposed_b: a");
  require_matrix(b, "matmul_transposed_b: b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_transposed_b: inner dims mismatch");
  }
  Tensor c({m, n});
  matmul_transposed_b_into(a.raw(), b.raw(), c.raw(), m, k, n);
  return c;
}

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transposed_a: a");
  require_matrix(b, "matmul_transposed_a: b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_transposed_a: inner dims mismatch");
  }
  Tensor c({m, n});
  matmul_transposed_a_acc(a.raw(), b.raw(), c.raw(), k, m, n);
  return c;
}

void add_row_bias(Tensor& m, const Tensor& bias) {
  require_matrix(m, "add_row_bias: m");
  const std::size_t rows = m.dim(0), cols = m.dim(1);
  if (bias.numel() != cols) {
    throw std::invalid_argument("add_row_bias: bias size mismatch");
  }
  add_row_bias_into(m.raw(), bias.raw(), rows, cols);
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  if (input.rank() != 4) throw std::invalid_argument("im2col: input must be NCHW");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  if (c != spec.in_channels) throw std::invalid_argument("im2col: channel mismatch");
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w), k = spec.kernel;
  Tensor cols({n * oh * ow, c * k * k});
  im2col_into(input.raw(), n, h, w, spec, cols.raw());
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape, const Conv2dSpec& spec) {
  if (input_shape.size() != 4) throw std::invalid_argument("col2im: input shape must be NCHW");
  const std::size_t n = input_shape[0], c = input_shape[1], h = input_shape[2],
                    w = input_shape[3];
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w), k = spec.kernel;
  const std::size_t col_width = c * k * k;
  if (cols.dim(0) != n * oh * ow || cols.dim(1) != col_width) {
    throw std::invalid_argument("col2im: cols shape mismatch");
  }
  Tensor grad(input_shape);
  col2im_into(cols.raw(), n, h, w, spec, grad.raw());
  return grad;
}

Tensor conv2d_forward(const Tensor& input, const Tensor& filters, const Tensor& bias,
                      const Conv2dSpec& spec) {
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  if (filters.dim(0) != spec.out_channels ||
      filters.dim(1) != spec.in_channels * spec.kernel * spec.kernel) {
    throw std::invalid_argument("conv2d_forward: filter shape mismatch");
  }
  Tensor cols = im2col(input, spec);
  // [N*OH*OW, CKK] x [OC, CKK]^T = [N*OH*OW, OC]
  Tensor out_cols = matmul_transposed_b(cols, filters);
  add_row_bias(out_cols, bias);
  // Transpose the trailing [positions, OC] into NCHW.
  Tensor output({n, spec.out_channels, oh, ow});
  positions_to_nchw(out_cols.raw(), output.raw(), n, spec.out_channels, oh * ow);
  return output;
}

void maxpool2d_forward_into(const float* input, std::size_t n, std::size_t c, std::size_t h,
                            std::size_t w, std::size_t size, std::size_t stride, float* out,
                            std::size_t* argmax) {
  const std::size_t oh = (h - size) / stride + 1;
  const std::size_t ow = (w - size) / stride + 1;
  std::size_t out_i = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t plane = (img * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < size; ++ky) {
            for (std::size_t kx = 0; kx < size; ++kx) {
              const std::size_t idx = plane + (oy * stride + ky) * w + (ox * stride + kx);
              if (input[idx] > best) {
                best = input[idx];
                best_idx = idx;
              }
            }
          }
          out[out_i] = best;
          argmax[out_i] = best_idx;
        }
      }
    }
  }
}

MaxPoolResult maxpool2d_forward(const Tensor& input, std::size_t size, std::size_t stride) {
  if (input.rank() != 4) throw std::invalid_argument("maxpool2d: input must be NCHW");
  if (size == 0 || stride == 0) throw std::invalid_argument("maxpool2d: zero size/stride");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  if (h < size || w < size) throw std::invalid_argument("maxpool2d: window larger than input");
  const std::size_t oh = (h - size) / stride + 1;
  const std::size_t ow = (w - size) / stride + 1;
  MaxPoolResult result{Tensor({n, c, oh, ow}), {}};
  result.argmax.resize(n * c * oh * ow);
  maxpool2d_forward_into(input.raw(), n, c, h, w, size, stride, result.output.raw(),
                         result.argmax.data());
  return result;
}

Tensor maxpool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                          const std::vector<std::size_t>& argmax) {
  if (grad_output.numel() != argmax.size()) {
    throw std::invalid_argument("maxpool2d_backward: argmax size mismatch");
  }
  Tensor grad_input(input_shape);
  float* pg = grad_input.raw();
  const float* po = grad_output.raw();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    if (argmax[i] >= grad_input.numel()) {
      throw std::out_of_range("maxpool2d_backward: argmax index out of range");
    }
    pg[argmax[i]] += po[i];
  }
  return grad_input;
}

}  // namespace specdag
