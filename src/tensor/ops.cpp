#include "tensor/ops.hpp"

#include <algorithm>
#include <limits>

namespace specdag {
namespace {

void require_matrix(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string(name) + " must be rank-2, got " +
                                shape_to_string(t.shape()));
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul: a");
  require_matrix(b, "matmul: b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul: inner dims mismatch " + shape_to_string(a.shape()) +
                                " x " + shape_to_string(b.shape()));
  }
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // ikj loop order: streams through b and c rows, cache friendly.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_transposed_b(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transposed_b: a");
  require_matrix(b, "matmul_transposed_b: b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) {
    throw std::invalid_argument("matmul_transposed_b: inner dims mismatch");
  }
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const float* arow = pa + i * k;
      const float* brow = pb + j * k;
      float sum = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      pc[i * n + j] = sum;
    }
  }
  return c;
}

Tensor matmul_transposed_a(const Tensor& a, const Tensor& b) {
  require_matrix(a, "matmul_transposed_a: a");
  require_matrix(b, "matmul_transposed_a: b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) {
    throw std::invalid_argument("matmul_transposed_a: inner dims mismatch");
  }
  Tensor c({m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

void add_row_bias(Tensor& m, const Tensor& bias) {
  require_matrix(m, "add_row_bias: m");
  const std::size_t rows = m.dim(0), cols = m.dim(1);
  if (bias.numel() != cols) {
    throw std::invalid_argument("add_row_bias: bias size mismatch");
  }
  float* pm = m.raw();
  const float* pb = bias.raw();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) pm[r * cols + c] += pb[c];
  }
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  if (input.rank() != 4) throw std::invalid_argument("im2col: input must be NCHW");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  if (c != spec.in_channels) throw std::invalid_argument("im2col: channel mismatch");
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w), k = spec.kernel;
  Tensor cols({n * oh * ow, c * k * k});
  const float* pin = input.raw();
  float* pc = cols.raw();
  const std::size_t col_width = c * k * k;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        float* dst = pc + ((img * oh + oy) * ow + ox) * col_width;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              float v = 0.0f;
              if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(h) && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(w)) {
                v = pin[((img * c + ch) * h + static_cast<std::size_t>(iy)) * w +
                        static_cast<std::size_t>(ix)];
              }
              dst[(ch * k + ky) * k + kx] = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& input_shape, const Conv2dSpec& spec) {
  if (input_shape.size() != 4) throw std::invalid_argument("col2im: input shape must be NCHW");
  const std::size_t n = input_shape[0], c = input_shape[1], h = input_shape[2],
                    w = input_shape[3];
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w), k = spec.kernel;
  const std::size_t col_width = c * k * k;
  if (cols.dim(0) != n * oh * ow || cols.dim(1) != col_width) {
    throw std::invalid_argument("col2im: cols shape mismatch");
  }
  Tensor grad(input_shape);
  const float* pc = cols.raw();
  float* pg = grad.raw();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const float* src = pc + ((img * oh + oy) * ow + ox) * col_width;
        for (std::size_t ch = 0; ch < c; ++ch) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                static_cast<std::ptrdiff_t>(spec.padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              pg[((img * c + ch) * h + static_cast<std::size_t>(iy)) * w +
                 static_cast<std::size_t>(ix)] += src[(ch * k + ky) * k + kx];
            }
          }
        }
      }
    }
  }
  return grad;
}

Tensor conv2d_forward(const Tensor& input, const Tensor& filters, const Tensor& bias,
                      const Conv2dSpec& spec) {
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t oh = spec.out_dim(h), ow = spec.out_dim(w);
  if (filters.dim(0) != spec.out_channels ||
      filters.dim(1) != spec.in_channels * spec.kernel * spec.kernel) {
    throw std::invalid_argument("conv2d_forward: filter shape mismatch");
  }
  Tensor cols = im2col(input, spec);
  // [N*OH*OW, CKK] x [OC, CKK]^T = [N*OH*OW, OC]
  Tensor out_cols = matmul_transposed_b(cols, filters);
  add_row_bias(out_cols, bias);
  // Transpose the trailing [positions, OC] into NCHW.
  Tensor output({n, spec.out_channels, oh, ow});
  const float* po = out_cols.raw();
  float* pr = output.raw();
  const std::size_t positions = oh * ow;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t pos = 0; pos < positions; ++pos) {
      for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
        pr[(img * spec.out_channels + oc) * positions + pos] =
            po[(img * positions + pos) * spec.out_channels + oc];
      }
    }
  }
  return output;
}

MaxPoolResult maxpool2d_forward(const Tensor& input, std::size_t size, std::size_t stride) {
  if (input.rank() != 4) throw std::invalid_argument("maxpool2d: input must be NCHW");
  if (size == 0 || stride == 0) throw std::invalid_argument("maxpool2d: zero size/stride");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  if (h < size || w < size) throw std::invalid_argument("maxpool2d: window larger than input");
  const std::size_t oh = (h - size) / stride + 1;
  const std::size_t ow = (w - size) / stride + 1;
  MaxPoolResult result{Tensor({n, c, oh, ow}), {}};
  result.argmax.resize(n * c * oh * ow);
  const float* pin = input.raw();
  float* pout = result.output.raw();
  std::size_t out_i = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const std::size_t plane = (img * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < size; ++ky) {
            for (std::size_t kx = 0; kx < size; ++kx) {
              const std::size_t idx = plane + (oy * stride + ky) * w + (ox * stride + kx);
              if (pin[idx] > best) {
                best = pin[idx];
                best_idx = idx;
              }
            }
          }
          pout[out_i] = best;
          result.argmax[out_i] = best_idx;
        }
      }
    }
  }
  return result;
}

Tensor maxpool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                          const std::vector<std::size_t>& argmax) {
  if (grad_output.numel() != argmax.size()) {
    throw std::invalid_argument("maxpool2d_backward: argmax size mismatch");
  }
  Tensor grad_input(input_shape);
  float* pg = grad_input.raw();
  const float* po = grad_output.raw();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    if (argmax[i] >= grad_input.numel()) {
      throw std::out_of_range("maxpool2d_backward: argmax index out of range");
    }
    pg[argmax[i]] += po[i];
  }
  return grad_input;
}

}  // namespace specdag
