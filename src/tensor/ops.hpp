// Dense kernels used by the NN layers: GEMM-style matmul, im2col convolution,
// and max pooling. All tensors are row-major.
//
// Layout conventions:
//   Matrices            : [rows, cols]
//   Image batches (NCHW): [batch, channels, height, width]
#pragma once

#include "tensor/tensor.hpp"

namespace specdag {

// C = A(m,k) * B(k,n). Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

// C = A(m,k) * B(n,k)^T — used by backward passes without materializing
// transposes.
Tensor matmul_transposed_b(const Tensor& a, const Tensor& b);

// C = A(k,m)^T * B(k,n).
Tensor matmul_transposed_a(const Tensor& a, const Tensor& b);

// Adds a row vector `bias` [1, n] (or [n]) to every row of `m` [rows, n].
void add_row_bias(Tensor& m, const Tensor& bias);

struct Conv2dSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;       // square kernels, as in the paper's models
  std::size_t stride = 1;
  std::size_t padding = 0;      // "same"-style padding is computed by callers

  std::size_t out_dim(std::size_t in_dim) const {
    if (in_dim + 2 * padding < kernel) {
      throw std::invalid_argument("Conv2dSpec: kernel larger than padded input");
    }
    return (in_dim + 2 * padding - kernel) / stride + 1;
  }
};

// Unfolds input [N, C, H, W] into columns [N * OH * OW, C * K * K] so the
// convolution becomes one matmul against the [out_channels, C*K*K] filter.
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

// Folds column gradients back into input-gradient layout (adjoint of im2col).
Tensor col2im(const Tensor& cols, const Shape& input_shape, const Conv2dSpec& spec);

// Forward convolution via im2col + matmul.
// input [N, C, H, W], filters [OC, C*K*K], bias [OC] -> output [N, OC, OH, OW].
Tensor conv2d_forward(const Tensor& input, const Tensor& filters, const Tensor& bias,
                      const Conv2dSpec& spec);

struct MaxPoolResult {
  Tensor output;                     // [N, C, OH, OW]
  std::vector<std::size_t> argmax;   // flat input index of each output's max
};

// Max pooling with square window `size` and stride `stride`.
MaxPoolResult maxpool2d_forward(const Tensor& input, std::size_t size, std::size_t stride);

// Routes output gradients back to the argmax positions.
Tensor maxpool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                          const std::vector<std::size_t>& argmax);

// ----------------------------------------------------------------------------
// Raw-pointer kernels. The Tensor overloads above are thin wrappers around
// these; layers and the SoA batch executor call them directly so hot loops can
// reuse persistent scratch buffers instead of allocating a Tensor per batch.
// Arithmetic (loop order, zero-skips, mul-then-add) is identical to the Tensor
// paths — results are bit-for-bit the same.

// C(m,n) = A(m,k) * B(k,n). Zeroes C first (ikj order, accumulating).
void matmul_into(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                 std::size_t n);

// C(m,n) = A(m,k) * B(n,k)^T. Overwrites C (dot products, kk-ascending).
void matmul_transposed_b_into(const float* a, const float* b, float* c, std::size_t m,
                              std::size_t k, std::size_t n);

// C(m,n) += A(k,m)^T * B(k,n). Accumulates — caller zeroes C when needed.
void matmul_transposed_a_acc(const float* a, const float* b, float* c, std::size_t k,
                             std::size_t m, std::size_t n);

// m[r, :] += bias for every row.
void add_row_bias_into(float* m, const float* bias, std::size_t rows, std::size_t cols);

// im2col / col2im over raw NCHW buffers. col2im zeroes `grad` first.
void im2col_into(const float* input, std::size_t n, std::size_t h, std::size_t w,
                 const Conv2dSpec& spec, float* cols);
void col2im_into(const float* cols, std::size_t n, std::size_t h, std::size_t w,
                 const Conv2dSpec& spec, float* grad);

// Transposes between the conv GEMM layout [N*positions, OC] and NCHW
// [N, OC, positions] (and back, for the backward pass).
void positions_to_nchw(const float* cols, float* out, std::size_t n, std::size_t oc,
                       std::size_t positions);
void nchw_to_positions(const float* in, float* cols, std::size_t n, std::size_t oc,
                       std::size_t positions);

// Shared-A multi-RHS matmul: cs[l](m,n) = A(m,k) * bs[l](k,n) for each of
// `lanes` right-hand sides. A is streamed once; each lane's accumulation order
// is kk-ascending, so lane l's result is bit-identical to
// matmul_into(a, bs[l], cs[l], ...). Zeroes each C first.
void matmul_multi_rhs(const float* a, const float* const* bs, float* const* cs,
                      std::size_t lanes, std::size_t m, std::size_t k, std::size_t n);

// Max pooling over a raw NCHW buffer; `out` and `argmax` must hold
// n*c*oh*ow elements. Same scan order (strict >, -inf init) as the Tensor
// overload, which delegates here.
void maxpool2d_forward_into(const float* input, std::size_t n, std::size_t c, std::size_t h,
                            std::size_t w, std::size_t size, std::size_t stride, float* out,
                            std::size_t* argmax);

}  // namespace specdag
