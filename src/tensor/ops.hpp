// Dense kernels used by the NN layers: GEMM-style matmul, im2col convolution,
// and max pooling. All tensors are row-major.
//
// Layout conventions:
//   Matrices            : [rows, cols]
//   Image batches (NCHW): [batch, channels, height, width]
#pragma once

#include "tensor/tensor.hpp"

namespace specdag {

// C = A(m,k) * B(k,n). Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

// C = A(m,k) * B(n,k)^T — used by backward passes without materializing
// transposes.
Tensor matmul_transposed_b(const Tensor& a, const Tensor& b);

// C = A(k,m)^T * B(k,n).
Tensor matmul_transposed_a(const Tensor& a, const Tensor& b);

// Adds a row vector `bias` [1, n] (or [n]) to every row of `m` [rows, n].
void add_row_bias(Tensor& m, const Tensor& bias);

struct Conv2dSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;       // square kernels, as in the paper's models
  std::size_t stride = 1;
  std::size_t padding = 0;      // "same"-style padding is computed by callers

  std::size_t out_dim(std::size_t in_dim) const {
    if (in_dim + 2 * padding < kernel) {
      throw std::invalid_argument("Conv2dSpec: kernel larger than padded input");
    }
    return (in_dim + 2 * padding - kernel) / stride + 1;
  }
};

// Unfolds input [N, C, H, W] into columns [N * OH * OW, C * K * K] so the
// convolution becomes one matmul against the [out_channels, C*K*K] filter.
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

// Folds column gradients back into input-gradient layout (adjoint of im2col).
Tensor col2im(const Tensor& cols, const Shape& input_shape, const Conv2dSpec& spec);

// Forward convolution via im2col + matmul.
// input [N, C, H, W], filters [OC, C*K*K], bias [OC] -> output [N, OC, OH, OW].
Tensor conv2d_forward(const Tensor& input, const Tensor& filters, const Tensor& bias,
                      const Conv2dSpec& spec);

struct MaxPoolResult {
  Tensor output;                     // [N, C, OH, OW]
  std::vector<std::size_t> argmax;   // flat input index of each output's max
};

// Max pooling with square window `size` and stride `stride`.
MaxPoolResult maxpool2d_forward(const Tensor& input, std::size_t size, std::size_t stride);

// Routes output gradients back to the argmax positions.
Tensor maxpool2d_backward(const Tensor& grad_output, const Shape& input_shape,
                          const std::vector<std::size_t>& argmax);

}  // namespace specdag
