#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>

namespace specdag {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {
  if (shape_.empty()) throw std::invalid_argument("Tensor: empty shape");
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_.empty()) throw std::invalid_argument("Tensor: empty shape");
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) throw std::out_of_range("Tensor::dim: axis out of range");
  return shape_[axis];
}

float& Tensor::at2(std::size_t r, std::size_t c) {
  if (rank() != 2) throw std::out_of_range("Tensor::at2: not a matrix");
  if (r >= shape_[0] || c >= shape_[1]) throw std::out_of_range("Tensor::at2: index out of range");
  return data_[r * shape_[1] + c];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " + shape_to_string(shape_) +
                                " -> " + shape_to_string(new_shape));
  }
  return Tensor(std::move(new_shape), data_);
}

void Tensor::resize(Shape new_shape) {
  if (new_shape.empty()) throw std::invalid_argument("Tensor::resize: empty shape");
  shape_ = std::move(new_shape);
  data_.resize(shape_numel(shape_));
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string("Tensor::") + op + ": shape mismatch " +
                                shape_to_string(shape_) + " vs " + shape_to_string(other.shape_));
  }
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

}  // namespace specdag
