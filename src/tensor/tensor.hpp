// Minimal dense float tensor: row-major storage plus a shape vector.
//
// This is the numeric substrate for the NN library. It deliberately supports
// only what the paper's models need: construction, reshaping, elementwise
// arithmetic, and accessors. Heavier kernels (matmul, conv, pooling) live in
// tensor/ops.hpp so they can be tested and benchmarked in isolation.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace specdag {

using Shape = std::vector<std::size_t>;

std::size_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor with explicit contents; data.size() must equal the shape product.
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t axis) const;

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // 2-D accessor (matrix layout [rows, cols]); bounds-checked in debug builds
  // via at2 below for tests; this one is unchecked for speed.
  float& at(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * shape_[1] + c]; }

  // Bounds-checked variant; throws std::out_of_range.
  float& at2(std::size_t r, std::size_t c);

  // Returns a tensor with the same data but a different shape (numel must
  // match).
  Tensor reshaped(Shape new_shape) const;

  // Reshapes in place, growing/shrinking storage as needed. Existing element
  // values are unspecified afterwards; capacity is retained, so scratch
  // tensors in hot loops can change batch size without reallocating.
  void resize(Shape new_shape);

  // In-place elementwise operations.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  void fill(float value);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);

}  // namespace specdag
