#include "tipsel/confidence.hpp"

#include <stdexcept>
#include <unordered_set>

namespace specdag::tipsel {

double confirmation_confidence(const dag::Dag& dag, dag::TxId target, TipSelector& selector,
                               std::size_t num_walks, Rng& rng) {
  if (num_walks == 0) throw std::invalid_argument("confirmation_confidence: zero walks");
  dag.transaction(target);  // bounds check
  std::size_t approving = 0;
  for (std::size_t w = 0; w < num_walks; ++w) {
    const std::vector<dag::TxId> tips = selector.select_tips(dag, 1, rng);
    const dag::TxId tip = tips.front();
    if (tip == target) {
      ++approving;
      continue;
    }
    for (dag::TxId ancestor : dag.past_cone(tip)) {
      if (ancestor == target) {
        ++approving;
        break;
      }
    }
  }
  return static_cast<double>(approving) / static_cast<double>(num_walks);
}

std::unordered_map<dag::TxId, double> confirmation_confidences(const dag::Dag& dag,
                                                                TipSelector& selector,
                                                          std::size_t num_walks, Rng& rng) {
  if (num_walks == 0) throw std::invalid_argument("confirmation_confidences: zero walks");
  std::unordered_map<dag::TxId, std::size_t> counts;
  for (std::size_t w = 0; w < num_walks; ++w) {
    const std::vector<dag::TxId> tips = selector.select_tips(dag, 1, rng);
    const dag::TxId tip = tips.front();
    ++counts[tip];
    for (dag::TxId ancestor : dag.past_cone(tip)) ++counts[ancestor];
  }
  std::unordered_map<dag::TxId, double> confidences;
  confidences.reserve(dag.size());
  for (dag::TxId id : dag.all_ids()) {
    auto it = counts.find(id);
    confidences[id] = it == counts.end()
                          ? 0.0
                          : static_cast<double>(it->second) / static_cast<double>(num_walks);
  }
  return confidences;
}

}  // namespace specdag::tipsel
