// Confirmation confidence (Popov / IOTA): the probability that a transaction
// is part of the consensus, estimated by Monte-Carlo tip selection — run N
// walks and measure the fraction whose selected tip (directly or
// indirectly) approves the transaction.
//
// In the Specializing DAG this generalizes naturally: run the walks with a
// client's own accuracy-biased selector and the confidence becomes
// *personalized* — "how certain is it that this model update is part of MY
// cluster's consensus".
#pragma once

#include <unordered_map>

#include "tipsel/tip_selector.hpp"

namespace specdag::tipsel {

// Fraction of `num_walks` tip selections (using `selector`) whose tip
// approves `target` (a tip approves itself). In [0, 1].
double confirmation_confidence(const dag::Dag& dag, dag::TxId target, TipSelector& selector,
                               std::size_t num_walks, Rng& rng);

// Confidence for every transaction at once: runs `num_walks` walks and
// accumulates each selected tip's full past cone. More efficient than
// calling confirmation_confidence per transaction.
std::unordered_map<dag::TxId, double> confirmation_confidences(const dag::Dag& dag,
                                                                TipSelector& selector,
                                                          std::size_t num_walks, Rng& rng);

}  // namespace specdag::tipsel
