#include "tipsel/hybrid_selector.hpp"

#include <cmath>
#include <stdexcept>

namespace specdag::tipsel {

HybridTipSelector::HybridTipSelector(double acc_alpha, double cw_alpha,
                                     Normalization normalization, ModelEvaluator evaluator,
                                     std::shared_ptr<AccuracyCache> persistent_cache)
    : acc_alpha_(acc_alpha),
      cw_alpha_(cw_alpha),
      normalization_(normalization),
      evaluator_(std::move(evaluator)),
      cache_(std::move(persistent_cache)),
      persistent_(cache_ != nullptr) {
  if (acc_alpha < 0.0 || cw_alpha < 0.0) {
    throw std::invalid_argument("HybridTipSelector: negative alpha");
  }
  if (!evaluator_) throw std::invalid_argument("HybridTipSelector: null evaluator");
}

double HybridTipSelector::evaluate(const dag::Dag& dag, dag::TxId id) {
  AccuracyCache& cache = persistent_ ? *cache_ : local_cache_;
  auto it = cache.find(id);
  if (it != cache.end()) return it->second;
  const double acc = evaluator_(*dag.weights(id));
  if (acc < 0.0 || acc > 1.0 || !std::isfinite(acc)) {
    throw std::runtime_error("HybridTipSelector: evaluator returned accuracy outside [0,1]");
  }
  ++stats_.evaluations;
  cache.emplace(id, acc);
  return acc;
}

dag::TxId HybridTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  if (!persistent_) local_cache_.clear();
  dag::TxId current = start;
  for (;;) {
    const std::vector<dag::TxId> children = visible_children(dag, current);
    if (children.empty()) return current;
    std::vector<double> accuracies(children.size());
    std::vector<double> cw(children.size());
    double cw_max = 0.0;
    for (std::size_t i = 0; i < children.size(); ++i) {
      accuracies[i] = evaluate(dag, children[i]);
      cw[i] = static_cast<double>(walk_cumulative_weight(dag, children[i]));
      cw_max = std::max(cw_max, cw[i]);
    }
    std::vector<double> weights =
        AccuracyTipSelector::walk_weights(accuracies, acc_alpha_, normalization_);
    for (std::size_t i = 0; i < children.size(); ++i) {
      weights[i] *= std::exp(cw_alpha_ * (cw[i] - cw_max));
    }
    current = children[rng.weighted_index(weights)];
    ++stats_.steps;
  }
}

}  // namespace specdag::tipsel
