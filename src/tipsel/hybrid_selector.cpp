#include "tipsel/hybrid_selector.hpp"

#include <cmath>
#include <stdexcept>

namespace specdag::tipsel {

HybridTipSelector::HybridTipSelector(double acc_alpha, double cw_alpha,
                                     Normalization normalization, ModelEvaluator evaluator,
                                     std::shared_ptr<AccuracyCache> persistent_cache)
    : acc_alpha_(acc_alpha),
      cw_alpha_(cw_alpha),
      normalization_(normalization),
      evaluator_(std::move(evaluator)),
      cache_(std::move(persistent_cache)) {
  if (acc_alpha < 0.0 || cw_alpha < 0.0) {
    throw std::invalid_argument("HybridTipSelector: negative alpha");
  }
  if (!evaluator_) throw std::invalid_argument("HybridTipSelector: null evaluator");
}

double HybridTipSelector::evaluate(const dag::Dag& dag, dag::TxId id) {
  if (cache_) {
    if (const std::optional<double> cached = cache_->lookup(dag, id)) return *cached;
  } else if (auto it = local_cache_.find(id); it != local_cache_.end()) {
    return it->second;
  }
  const double acc = evaluator_(*dag.weights(id));
  if (acc < 0.0 || acc > 1.0 || !std::isfinite(acc)) {
    throw std::runtime_error("HybridTipSelector: evaluator returned accuracy outside [0,1]");
  }
  ++stats_.evaluations;
  if (cache_) {
    cache_->store(dag, id, acc);
  } else {
    local_cache_.emplace(id, acc);
  }
  return acc;
}

dag::TxId HybridTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  if (!cache_) local_cache_.clear();
  const std::vector<std::size_t>& cw_all = batched_cumulative_weights(dag);
  const auto weight_of = [&](dag::TxId id) {
    return id < cw_all.size() ? cw_all[id] : walk_cumulative_weight(dag, id);
  };
  dag::TxId current = start;
  for (;;) {
    visible_children_into(dag, current, children_);
    if (children_.empty()) return current;
    accuracies_.resize(children_.size());
    cw_.resize(children_.size());
    double cw_max = 0.0;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      accuracies_[i] = evaluate(dag, children_[i]);
      cw_[i] = static_cast<double>(weight_of(children_[i]));
      cw_max = std::max(cw_max, cw_[i]);
    }
    AccuracyTipSelector::walk_weights_into(accuracies_, acc_alpha_, normalization_, weights_);
    for (std::size_t i = 0; i < children_.size(); ++i) {
      weights_[i] *= std::exp(cw_alpha_ * (cw_[i] - cw_max));
    }
    current = children_[rng.weighted_index(weights_)];
    ++stats_.steps;
  }
}

}  // namespace specdag::tipsel
