// Hybrid tip selection: bias each walk step by *both* the candidate model's
// local accuracy (the paper's contribution) and its cumulative weight (the
// classic Tangle security bias).
//
//   weight(child) = exp(acc_alpha * normalized_accuracy)
//                 * exp(cw_alpha  * (cw - cw_max))
//
// Rationale: the pure accuracy walk ignores how well-approved a transaction
// is, so a fresh, barely-connected lineage competes equally with a heavily
// confirmed one. Mixing in cumulative weight restores a preference for
// well-confirmed history (and raises the bar for tip-flooding attackers)
// while retaining accuracy-driven specialization. cw_alpha = 0 degenerates
// to AccuracyTipSelector; acc_alpha = 0 to WeightedTipSelector.
#pragma once

#include "tipsel/tip_selector.hpp"

namespace specdag::tipsel {

class HybridTipSelector final : public TipSelector {
 public:
  HybridTipSelector(double acc_alpha, double cw_alpha, Normalization normalization,
                    ModelEvaluator evaluator,
                    std::shared_ptr<AccuracyCache> persistent_cache = nullptr);

  dag::TxId walk(const dag::Dag& dag, dag::TxId start, Rng& rng) override;

  double acc_alpha() const { return acc_alpha_; }
  double cw_alpha() const { return cw_alpha_; }

 private:
  double evaluate(const dag::Dag& dag, dag::TxId id);

  double acc_alpha_;
  double cw_alpha_;
  Normalization normalization_;
  ModelEvaluator evaluator_;
  std::shared_ptr<AccuracyCache> cache_;
  std::unordered_map<dag::TxId, double> local_cache_;  // per-walk, when no cache was given
  // Per-step scratch: candidate children, accuracies, cumulative weights,
  // and the combined walk weights — reused across steps and walks.
  std::vector<dag::TxId> children_;
  std::vector<double> accuracies_;
  std::vector<double> cw_;
  std::vector<double> weights_;
};

}  // namespace specdag::tipsel
