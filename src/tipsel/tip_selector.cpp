#include "tipsel/tip_selector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/timer.hpp"

namespace specdag::tipsel {

void TipSelector::set_start_depth(std::size_t min_depth, std::size_t max_depth) {
  if (min_depth > max_depth) {
    throw std::invalid_argument("TipSelector::set_start_depth: min > max");
  }
  min_depth_ = min_depth;
  max_depth_ = max_depth;
}

std::vector<dag::TxId> TipSelector::select_tips(const dag::Dag& dag, std::size_t count,
                                                Rng& rng) {
  if (count == 0) throw std::invalid_argument("TipSelector::select_tips: count == 0");
  stats_ = WalkStats{};
  Timer timer;
  std::vector<dag::TxId> selected;
  selected.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const dag::TxId start =
        start_mode_ == WalkStart::kGenesis
            ? dag::kGenesisTx
            : dag.sample_walk_start(rng, min_start_depth(), max_start_depth());
    selected.push_back(walk(dag, start, rng));
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()), selected.end());
  stats_.seconds = timer.elapsed_seconds();
  return selected;
}

dag::TxId RandomTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  dag::TxId current = start;
  for (;;) {
    const std::vector<dag::TxId> children = dag.children(current);
    if (children.empty()) return current;
    current = children[rng.index(children.size())];
    ++stats_.steps;
  }
}

WeightedTipSelector::WeightedTipSelector(double alpha) : alpha_(alpha) {
  if (alpha < 0.0) throw std::invalid_argument("WeightedTipSelector: negative alpha");
}

dag::TxId WeightedTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  dag::TxId current = start;
  for (;;) {
    const std::vector<dag::TxId> children = dag.children(current);
    if (children.empty()) return current;
    std::vector<double> cw(children.size());
    double cw_max = 0.0;
    for (std::size_t i = 0; i < children.size(); ++i) {
      cw[i] = static_cast<double>(dag.cumulative_weight(children[i]));
      cw_max = std::max(cw_max, cw[i]);
    }
    std::vector<double> weights(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
      weights[i] = std::exp(alpha_ * (cw[i] - cw_max));
    }
    current = children[rng.weighted_index(weights)];
    ++stats_.steps;
  }
}

AccuracyTipSelector::AccuracyTipSelector(double alpha, Normalization normalization,
                                         ModelEvaluator evaluator,
                                         std::shared_ptr<AccuracyCache> persistent_cache)
    : alpha_(alpha),
      normalization_(normalization),
      evaluator_(std::move(evaluator)),
      cache_(std::move(persistent_cache)),
      persistent_(cache_ != nullptr) {
  if (alpha < 0.0) throw std::invalid_argument("AccuracyTipSelector: negative alpha");
  if (!evaluator_) throw std::invalid_argument("AccuracyTipSelector: null evaluator");
}

double AccuracyTipSelector::evaluate(const dag::Dag& dag, dag::TxId id) {
  AccuracyCache& cache = persistent_ ? *cache_ : local_cache_;
  auto it = cache.find(id);
  if (it != cache.end()) return it->second;
  const dag::WeightsPtr weights = dag.weights(id);
  const double acc = evaluator_(*weights);
  if (acc < 0.0 || acc > 1.0 || !std::isfinite(acc)) {
    throw std::runtime_error("AccuracyTipSelector: evaluator returned accuracy outside [0,1]");
  }
  ++stats_.evaluations;
  cache.emplace(id, acc);
  return acc;
}

std::vector<double> AccuracyTipSelector::walk_weights(const std::vector<double>& accuracies,
                                                      double alpha,
                                                      Normalization normalization) {
  if (accuracies.empty()) throw std::invalid_argument("walk_weights: empty accuracies");
  const auto [mn_it, mx_it] = std::minmax_element(accuracies.begin(), accuracies.end());
  const double mn = *mn_it, mx = *mx_it;
  std::vector<double> weights(accuracies.size());
  for (std::size_t i = 0; i < accuracies.size(); ++i) {
    double normalized = accuracies[i] - mx;  // Eq. 1: <= 0
    if (normalization == Normalization::kDynamic) {
      // Eq. 3: scale by the spread so the bias adapts to how different the
      // candidate models actually are. Equal accuracies -> no bias.
      const double spread = mx - mn;
      normalized = spread > 0.0 ? normalized / spread : 0.0;
    }
    weights[i] = std::exp(normalized * alpha);  // Eq. 2, in (0, 1]
  }
  return weights;
}

dag::TxId AccuracyTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  if (!persistent_) local_cache_.clear();
  dag::TxId current = start;
  for (;;) {
    const std::vector<dag::TxId> children = dag.children(current);
    if (children.empty()) return current;
    // Algorithm 1: evaluate every reachable next model on local data, then
    // make a weighted random choice.
    std::vector<double> accuracies(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
      accuracies[i] = evaluate(dag, children[i]);
    }
    const std::vector<double> weights = walk_weights(accuracies, alpha_, normalization_);
    current = children[rng.weighted_index(weights)];
    ++stats_.steps;
  }
}

}  // namespace specdag::tipsel
