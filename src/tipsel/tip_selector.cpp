#include "tipsel/tip_selector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace specdag::tipsel {
namespace {

struct WalkMetrics {
  obs::Counter& walks = obs::Registry::counter("tipsel.walks");
  obs::Counter& restarts = obs::Registry::counter("tipsel.walk_restarts");
  obs::Counter& evaluations = obs::Registry::counter("tipsel.evaluations");
  obs::Histogram& walk_steps = obs::Registry::histogram("tipsel.walk_steps");
};

WalkMetrics& walk_metrics() {
  static WalkMetrics metrics;
  return metrics;
}

}  // namespace

void TipSelector::set_start_depth(std::size_t min_depth, std::size_t max_depth) {
  if (min_depth > max_depth) {
    throw std::invalid_argument("TipSelector::set_start_depth: min > max");
  }
  min_depth_ = min_depth;
  max_depth_ = max_depth;
}

void TipSelector::set_visibility_mask(VisibilityMask mask) {
  mask_ = std::move(mask);
  // The cw scratch may hold a masked sweep or a snapshot for the old mask
  // state; never reuse it across a mask change.
  cw_version_ = kNoVersion;
}

VisibilityMask make_group_visibility_mask(std::shared_ptr<const std::vector<int>> groups,
                                          int my_group, std::size_t start_round) {
  return [groups = std::move(groups), my_group, start_round](const dag::Dag& dag,
                                                             dag::TxId id) {
    const int publisher = dag.publisher(id);
    if (publisher < 0 || static_cast<std::size_t>(publisher) >= groups->size()) return true;
    if (dag.round(id) < start_round) return true;
    return (*groups)[static_cast<std::size_t>(publisher)] == my_group;
  };
}

void TipSelector::visible_children_into(const dag::Dag& dag, dag::TxId id,
                                        std::vector<dag::TxId>& out) const {
  dag.children_into(id, out);
  if (!mask_) return;
  std::erase_if(out, [&](dag::TxId child) { return !mask_(dag, child); });
}

std::size_t TipSelector::walk_cumulative_weight(const dag::Dag& dag, dag::TxId id) {
  if (!mask_) return dag.cumulative_weight(id);
  // Epoch-marked visited array: bumping the epoch invalidates every mark
  // from previous calls without touching the memory.
  if (bfs_mark_.size() <= id) bfs_mark_.resize(id + 1, 0);
  ++bfs_epoch_;
  bfs_mark_[id] = bfs_epoch_;
  bfs_frontier_.assign(1, id);
  std::size_t count = 1;
  while (!bfs_frontier_.empty()) {
    const dag::TxId cur = bfs_frontier_.back();
    bfs_frontier_.pop_back();
    visible_children_into(dag, cur, bfs_children_);
    for (dag::TxId child : bfs_children_) {
      if (bfs_mark_.size() <= child) bfs_mark_.resize(child + 1, 0);
      if (bfs_mark_[child] != bfs_epoch_) {
        bfs_mark_[child] = bfs_epoch_;
        bfs_frontier_.push_back(child);
        ++count;
      }
    }
  }
  return count;
}

const std::vector<std::size_t>& TipSelector::batched_cumulative_weights(const dag::Dag& dag) {
  if (!mask_) {
    // Version-checked reuse of the DAG's incremental index: as long as no
    // transaction was appended since the last snapshot (of this DAG — two
    // DAGs of equal size share a version value), the previous copy is
    // still exact and the call is O(1).
    if (cw_dag_ != &dag || cw_version_ == kNoVersion || dag.version() != cw_version_) {
      cw_version_ = dag.cumulative_weights_snapshot(cw_scratch_);
      cw_dag_ = &dag;
    }
    return cw_scratch_;
  }
  cw_version_ = kNoVersion;  // masked sweeps must not be reused as snapshots
  const std::size_t n = dag.size();
  visible_scratch_.assign(n, 0);
  for (dag::TxId id = 0; id < n; ++id) {
    if (mask_(dag, id)) visible_scratch_[id] = 1;
  }
  dag.cumulative_weights_all_into(visible_scratch_, cw_scratch_, reach_scratch_);
  // A transaction appended between the two dag calls would land inside
  // the result as invisible (weight 0) even though the mask never saw it.
  // Clamp to the snapshot so post-snapshot ids hit the per-id fallback.
  if (cw_scratch_.size() > visible_scratch_.size()) cw_scratch_.resize(visible_scratch_.size());
  return cw_scratch_;
}

std::vector<dag::TxId> TipSelector::select_tips(const dag::Dag& dag, std::size_t count,
                                                Rng& rng) {
  if (count == 0) throw std::invalid_argument("TipSelector::select_tips: count == 0");
  stats_ = WalkStats{};
  Timer timer;
  const std::uint64_t evals_before = stats_.evaluations;
  std::vector<dag::TxId> selected;
  selected.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    dag::TxId start =
        start_mode_ == WalkStart::kGenesis
            ? dag::kGenesisTx
            : dag.sample_walk_start(rng, min_start_depth(), max_start_depth());
    // A depth-sampled start can land on a masked transaction; genesis is
    // always visible (publisher -1, round 0).
    if (!visible(dag, start)) {
      start = dag::kGenesisTx;
      walk_metrics().restarts.add();
    }
    const std::uint64_t steps_before = stats_.steps;
    selected.push_back(walk(dag, start, rng));
    walk_metrics().walks.add();
    walk_metrics().walk_steps.record(stats_.steps - steps_before);
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()), selected.end());
  walk_metrics().evaluations.add(stats_.evaluations - evals_before);
  stats_.seconds = timer.elapsed_seconds();
  return selected;
}

dag::TxId RandomTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  dag::TxId current = start;
  for (;;) {
    visible_children_into(dag, current, children_);
    if (children_.empty()) return current;
    current = children_[rng.index(children_.size())];
    ++stats_.steps;
  }
}

WeightedTipSelector::WeightedTipSelector(double alpha) : alpha_(alpha) {
  if (alpha < 0.0) throw std::invalid_argument("WeightedTipSelector: negative alpha");
}

dag::TxId WeightedTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  // One version-checked index snapshot per walk instead of a future-cone BFS
  // per step. The snapshot stays valid for the whole walk: cumulative
  // weights only change when transactions are appended, and commits are
  // serialized outside the prepare phase; ids beyond the snapshot (appended
  // concurrently) fall back to the per-id path.
  const std::vector<std::size_t>& cw_all = batched_cumulative_weights(dag);
  const auto weight_of = [&](dag::TxId id) {
    return id < cw_all.size() ? cw_all[id] : walk_cumulative_weight(dag, id);
  };
  dag::TxId current = start;
  for (;;) {
    visible_children_into(dag, current, children_);
    if (children_.empty()) return current;
    cw_.resize(children_.size());
    double cw_max = 0.0;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      cw_[i] = static_cast<double>(weight_of(children_[i]));
      cw_max = std::max(cw_max, cw_[i]);
    }
    weights_.resize(children_.size());
    for (std::size_t i = 0; i < children_.size(); ++i) {
      weights_[i] = std::exp(alpha_ * (cw_[i] - cw_max));
    }
    current = children_[rng.weighted_index(weights_)];
    ++stats_.steps;
  }
}

AccuracyTipSelector::AccuracyTipSelector(double alpha, Normalization normalization,
                                         ModelEvaluator evaluator,
                                         std::shared_ptr<AccuracyCache> persistent_cache)
    : alpha_(alpha),
      normalization_(normalization),
      evaluator_(std::move(evaluator)),
      cache_(std::move(persistent_cache)) {
  if (alpha < 0.0) throw std::invalid_argument("AccuracyTipSelector: negative alpha");
  if (!evaluator_) throw std::invalid_argument("AccuracyTipSelector: null evaluator");
}

double AccuracyTipSelector::evaluate(const dag::Dag& dag, dag::TxId id) {
  if (cache_) {
    if (const std::optional<double> cached = cache_->lookup(dag, id)) return *cached;
  } else if (auto it = local_cache_.find(id); it != local_cache_.end()) {
    return it->second;
  }
  const dag::WeightsPtr weights = dag.weights(id);
  const double acc = evaluator_(*weights);
  if (acc < 0.0 || acc > 1.0 || !std::isfinite(acc)) {
    throw std::runtime_error("AccuracyTipSelector: evaluator returned accuracy outside [0,1]");
  }
  ++stats_.evaluations;
  if (cache_) {
    cache_->store(dag, id, acc);
  } else {
    local_cache_.emplace(id, acc);
  }
  return acc;
}

void AccuracyTipSelector::walk_weights_into(const std::vector<double>& accuracies,
                                            double alpha, Normalization normalization,
                                            std::vector<double>& out) {
  if (accuracies.empty()) throw std::invalid_argument("walk_weights: empty accuracies");
  const auto [mn_it, mx_it] = std::minmax_element(accuracies.begin(), accuracies.end());
  const double mn = *mn_it, mx = *mx_it;
  out.resize(accuracies.size());
  for (std::size_t i = 0; i < accuracies.size(); ++i) {
    double normalized = accuracies[i] - mx;  // Eq. 1: <= 0
    if (normalization == Normalization::kDynamic) {
      // Eq. 3: scale by the spread so the bias adapts to how different the
      // candidate models actually are. Equal accuracies -> no bias.
      const double spread = mx - mn;
      normalized = spread > 0.0 ? normalized / spread : 0.0;
    }
    out[i] = std::exp(normalized * alpha);  // Eq. 2, in (0, 1]
  }
}

std::vector<double> AccuracyTipSelector::walk_weights(const std::vector<double>& accuracies,
                                                      double alpha,
                                                      Normalization normalization) {
  std::vector<double> weights;
  walk_weights_into(accuracies, alpha, normalization, weights);
  return weights;
}

dag::TxId AccuracyTipSelector::walk(const dag::Dag& dag, dag::TxId start, Rng& rng) {
  if (!cache_) local_cache_.clear();
  dag::TxId current = start;
  for (;;) {
    visible_children_into(dag, current, children_);
    if (children_.empty()) return current;
    // Algorithm 1: evaluate every reachable next model on local data, then
    // make a weighted random choice.
    accuracies_.resize(children_.size());
    for (std::size_t i = 0; i < children_.size(); ++i) {
      accuracies_[i] = evaluate(dag, children_[i]);
    }
    walk_weights_into(accuracies_, alpha_, normalization_, weights_);
    current = children_[rng.weighted_index(weights_)];
    ++stats_.steps;
  }
}

}  // namespace specdag::tipsel
