// Tip selection strategies (paper §4.2).
//
// A tip selector performs random walks through the DAG in the direction
// opposite to approvals (from old transactions towards tips). The three
// strategies the paper evaluates:
//   * RandomTipSelector       — uniformly random child at every step (the
//                               "random tip selector" poisoning baseline).
//   * WeightedTipSelector     — classic Tangle walk biased by cumulative
//                               weight (Figure 3).
//   * AccuracyTipSelector     — the paper's contribution: the walk is biased
//                               by each candidate model's accuracy on the
//                               client's local test data (Algorithm 1),
//                               with the standard (Eq. 1-2) or dynamic
//                               (Eq. 3) normalization.
//
// Selectors are per-client and walk sequentially, so every buffer the walk
// inner loops need (children, per-step weights, BFS scratch) is owned by
// the selector and reused across steps and walks — steady-state walks
// allocate nothing.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "dag/dag.hpp"
#include "util/rng.hpp"

namespace specdag::tipsel {

// Where walks begin.
//
// kGenesis starts every walk at the genesis transaction: the walk passes the
// branch point of all lineages, so the bias — not the start position —
// decides which specialized subgraph the walk enters. kDepthSampled starts
// at a transaction sampled 15-25 steps behind the tips (Popov's suggestion,
// used by the paper's §5.3.5 scalability measurements); it bounds the walk
// cost but can trap a walk inside whatever lineage the start belongs to.
enum class WalkStart {
  kGenesis,
  kDepthSampled,
};

// Instrumentation for the scalability evaluation (Figure 15).
struct WalkStats {
  std::size_t steps = 0;        // walk steps taken
  std::size_t evaluations = 0;  // candidate-model evaluations performed
  double seconds = 0.0;         // wall time inside the selector
};

// Per-client visibility filter over the shared DAG: a walk only traverses
// transactions for which the mask returns true. Empty mask = full
// visibility. Used by the simulators to model network partitions — during a
// partition each client's mask hides the other groups' new transactions, so
// walks terminate at the tips of the client's *visible* subgraph.
using VisibilityMask = std::function<bool(const dag::Dag&, dag::TxId)>;

// The partition mask both simulators install: a transaction is visible when
// its publisher carries no group information (genesis, external attackers),
// when it was committed before `start_round` (already broadcast network-wide),
// or when its publisher shares the client's group.
VisibilityMask make_group_visibility_mask(std::shared_ptr<const std::vector<int>> groups,
                                          int my_group, std::size_t start_round);

class TipSelector {
 public:
  virtual ~TipSelector() = default;

  // Walks from `start` to a tip. `start` must exist in `dag`.
  virtual dag::TxId walk(const dag::Dag& dag, dag::TxId start, Rng& rng) = 0;

  // Runs `count` independent walks and returns the reached tips
  // (deduplicated, so the result may be shorter than `count`).
  // Resets and accumulates `last_stats` across the walks of this call.
  std::vector<dag::TxId> select_tips(const dag::Dag& dag, std::size_t count, Rng& rng);

  void set_walk_start(WalkStart mode) { start_mode_ = mode; }
  WalkStart walk_start() const { return start_mode_; }

  // Depth window for WalkStart::kDepthSampled (paper §5.3.5: 15-25).
  void set_start_depth(std::size_t min_depth, std::size_t max_depth);
  std::size_t min_start_depth() const { return min_depth_; }
  std::size_t max_start_depth() const { return max_depth_; }

  // Restricts walks to the masked subgraph (empty mask = no restriction).
  void set_visibility_mask(VisibilityMask mask);
  bool has_visibility_mask() const { return static_cast<bool>(mask_); }

  const WalkStats& last_stats() const { return stats_; }

 protected:
  // Children of `id` that pass the visibility mask, copied into `out`
  // (cleared first). A visible transaction whose children are all masked
  // acts as a tip of the visible subgraph. `out` must be a selector-owned
  // scratch distinct from any buffer live in the caller's loop.
  void visible_children_into(const dag::Dag& dag, dag::TxId id,
                             std::vector<dag::TxId>& out) const;
  bool visible(const dag::Dag& dag, dag::TxId id) const {
    return !mask_ || mask_(dag, id);
  }

  // Cumulative weight as this walker perceives it: with a mask set, only
  // the visible future cone counts — a partitioned client must not rank
  // candidates by the size of subgraphs it cannot see. Uses selector-owned
  // BFS scratch (epoch-marked visited array), so repeated calls allocate
  // nothing once the buffers reach the DAG's high-water size.
  std::size_t walk_cumulative_weight(const dag::Dag& dag, dag::TxId id);

  // Cumulative weight of every transaction at once, respecting the
  // visibility mask (the §5.3.5 walk-cost hot path). Unmasked, this is a
  // version-checked copy of the DAG's incremental weight index — reused
  // across walks (and rounds) until the DAG appends a transaction, so
  // steady-state walks neither sweep nor copy. With a mask set it falls
  // back to one bit-parallel sweep per walk (masks are per-client state the
  // DAG cannot index). Transactions appended after the snapshot are not
  // covered; callers fall back to walk_cumulative_weight for ids beyond the
  // returned size. The returned reference points into selector-owned
  // scratch and stays valid until the next call.
  const std::vector<std::size_t>& batched_cumulative_weights(const dag::Dag& dag);

  WalkStats stats_;

 private:
  static constexpr std::uint64_t kNoVersion = ~std::uint64_t{0};

  WalkStart start_mode_ = WalkStart::kGenesis;
  std::size_t min_depth_ = 15;
  std::size_t max_depth_ = 25;
  VisibilityMask mask_;
  // Scratch for batched_cumulative_weights: result, sweep bit masks, the
  // visibility snapshot, and the index version the unmasked snapshot
  // corresponds to. Sized once per DAG high-water mark.
  std::vector<std::size_t> cw_scratch_;
  std::vector<std::uint64_t> reach_scratch_;
  std::vector<char> visible_scratch_;
  std::uint64_t cw_version_ = kNoVersion;
  const dag::Dag* cw_dag_ = nullptr;  // snapshot identity: versions of distinct DAGs collide
  // Scratch for walk_cumulative_weight's BFS: epoch-marked visited array
  // (no O(n) clear per call), frontier, and a children buffer separate from
  // the walk loops' buffers (the BFS runs while a walk iterates its own).
  std::vector<std::uint64_t> bfs_mark_;
  std::uint64_t bfs_epoch_ = 0;
  std::vector<dag::TxId> bfs_frontier_;
  std::vector<dag::TxId> bfs_children_;
};

// Uniformly random walk.
class RandomTipSelector final : public TipSelector {
 public:
  dag::TxId walk(const dag::Dag& dag, dag::TxId start, Rng& rng) override;

 private:
  std::vector<dag::TxId> children_;  // per-step scratch
};

// Cumulative-weight biased walk: P(child) ∝ exp(alpha * (cw - cw_max)),
// the IOTA-style MCMC bias. alpha -> 0 degenerates to the random walk.
class WeightedTipSelector final : public TipSelector {
 public:
  explicit WeightedTipSelector(double alpha);

  dag::TxId walk(const dag::Dag& dag, dag::TxId start, Rng& rng) override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  // Per-step scratch: candidate children, their cumulative weights, and the
  // exp-bias weights — reused across steps and walks.
  std::vector<dag::TxId> children_;
  std::vector<double> cw_;
  std::vector<double> weights_;
};

// Normalization variants of the accuracy bias (paper Eq. 1-3).
enum class Normalization {
  kStandard,  // normalized  = acc - max(accs);             weight = exp(alpha * normalized)
  kDynamic,   // normalized* = (acc - max) / (max - min);   weight = exp(alpha * normalized*)
};

// Evaluates a model payload on the calling client's local test data and
// returns its accuracy in [0, 1].
using ModelEvaluator = std::function<double(const nn::WeightVector&)>;

// Accuracy cache interface: transaction payloads are immutable, so a
// model's accuracy on a fixed local dataset never changes. A client may
// hold a persistent cache across rounds (fast path) or give the selector
// none, in which case evaluations are only memoized within a single walk
// (matches the paper's cost model for the Figure 15 timing).
//
// Implementations: TxAccuracyCache below (a private per-client map) and
// store::ClientEvalCacheView (a client-scoped view of the simulation-wide
// sharded cache keyed by payload content).
class AccuracyCache {
 public:
  virtual ~AccuracyCache() = default;

  virtual std::optional<double> lookup(const dag::Dag& dag, dag::TxId id) = 0;
  virtual void store(const dag::Dag& dag, dag::TxId id, double accuracy) = 0;
  // Invalidates the cached view (the owning client's data changed).
  virtual void clear() = 0;
};

// The simple persistent cache: a private map keyed by transaction id.
class TxAccuracyCache final : public AccuracyCache {
 public:
  std::optional<double> lookup(const dag::Dag&, dag::TxId id) override {
    auto it = map_.find(id);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  void store(const dag::Dag&, dag::TxId id, double accuracy) override {
    map_.emplace(id, accuracy);
  }
  void clear() override { map_.clear(); }
  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<dag::TxId, double> map_;
};

class AccuracyTipSelector final : public TipSelector {
 public:
  // If `persistent_cache` is null, a fresh cache is used per select_tips
  // call (every walk step evaluates uncached candidates).
  AccuracyTipSelector(double alpha, Normalization normalization, ModelEvaluator evaluator,
                      std::shared_ptr<AccuracyCache> persistent_cache = nullptr);

  dag::TxId walk(const dag::Dag& dag, dag::TxId start, Rng& rng) override;

  double alpha() const { return alpha_; }
  Normalization normalization() const { return normalization_; }

  // Accuracy of one transaction's model on local data, via the cache.
  double evaluate(const dag::Dag& dag, dag::TxId id);

  // Computes the walk weights for a set of candidate accuracies — exposed
  // for unit tests of Eq. 1-3. `walk_weights_into` is the allocation-free
  // variant the walk loops use.
  static std::vector<double> walk_weights(const std::vector<double>& accuracies, double alpha,
                                          Normalization normalization);
  static void walk_weights_into(const std::vector<double>& accuracies, double alpha,
                                Normalization normalization, std::vector<double>& out);

 private:
  double alpha_;
  Normalization normalization_;
  ModelEvaluator evaluator_;
  std::shared_ptr<AccuracyCache> cache_;
  std::unordered_map<dag::TxId, double> local_cache_;  // per-walk, when no cache was given
  // Per-step scratch: candidate children, accuracies, walk weights.
  std::vector<dag::TxId> children_;
  std::vector<double> accuracies_;
  std::vector<double> weights_;
};

}  // namespace specdag::tipsel
