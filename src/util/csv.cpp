#include "util/csv.hpp"

#include <stdexcept>

namespace specdag {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (width_ == 0) throw std::invalid_argument("CsvWriter: empty header");
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double c : cells) {
    std::ostringstream os;
    os << c;
    text.push_back(os.str());
  }
  row(text);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

}  // namespace specdag
