// Tiny CSV writer used by the bench harness to dump figure series next to the
// printed tables so results can be plotted externally.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace specdag {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  // Appends one row; the number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  // Convenience overload for numeric rows.
  void row(const std::vector<double>& cells);

  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace specdag
