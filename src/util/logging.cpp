#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace specdag {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_output_mutex;

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel log_level_from_string(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level \"" + name +
                              "\" (expected debug, info, warn, error, or off)");
}

bool init_log_level_from_env() {
  const char* value = std::getenv("SPECDAG_LOG_LEVEL");
  if (value == nullptr || *value == '\0') return false;
  try {
    set_log_level(log_level_from_string(value));
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= log_level() && level != LogLevel::kOff) {
  if (enabled_) {
    stream_ << "[" << log_level_name(level) << " " << basename_of(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_output_mutex);
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace detail
}  // namespace specdag
