// Minimal leveled logger writing to stderr.
//
// Usage: SPECDAG_LOG(Info) << "round " << r << " accuracy " << acc;
// The global level defaults to Warn so library code stays quiet in tests and
// benches unless explicitly enabled.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace specdag {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

// "debug" | "info" | "warn" | "error" | "off" (case-sensitive); throws
// std::invalid_argument on anything else. The parser behind both the
// SPECDAG_LOG_LEVEL env var and the CLI's --log-level flag.
LogLevel log_level_from_string(const std::string& name);

// Applies SPECDAG_LOG_LEVEL from the environment if set and valid (an
// invalid value is ignored — logging setup must never abort the program).
// Returns true when the env var changed the level.
bool init_log_level_from_env();

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace specdag

#define SPECDAG_LOG(severity) \
  ::specdag::detail::LogMessage(::specdag::LogLevel::k##severity, __FILE__, __LINE__)
