// Minimal leveled logger writing to stderr.
//
// Usage: SPECDAG_LOG(Info) << "round " << r << " accuracy " << acc;
// The global level defaults to Warn so library code stays quiet in tests and
// benches unless explicitly enabled.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace specdag {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace specdag

#define SPECDAG_LOG(severity) \
  ::specdag::detail::LogMessage(::specdag::LogLevel::k##severity, __FILE__, __LINE__)
