#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace specdag {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("Rng::weighted_index: negative or non-finite weight");
    }
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: all weights zero");
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge: r == total
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<double> Rng::dirichlet(std::size_t dim, double alpha) {
  if (dim == 0) throw std::invalid_argument("Rng::dirichlet: dim == 0");
  if (alpha <= 0.0) throw std::invalid_argument("Rng::dirichlet: alpha <= 0");
  std::gamma_distribution<double> gamma(alpha, 1.0);
  std::vector<double> draw(dim);
  double total = 0.0;
  for (auto& d : draw) {
    d = gamma(engine_);
    total += d;
  }
  if (total <= 0.0) {
    // Extremely small alpha can underflow every gamma draw; fall back to a
    // one-hot sample, which is the limiting distribution.
    std::fill(draw.begin(), draw.end(), 0.0);
    draw[index(dim)] = 1.0;
    return draw;
  }
  for (auto& d : draw) d /= total;
  return draw;
}

Rng Rng::fork(std::uint64_t tag) const {
  return Rng(splitmix64(seed_ ^ splitmix64(tag)));
}

}  // namespace specdag
