// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit Rng& so that a
// whole experiment is reproducible from one root seed. Rng also supports
// deterministic forking (`fork`) so independent components (clients, data
// generators) get decorrelated but reproducible streams.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace specdag {

// Wrapper around a 64-bit Mersenne twister with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed), seed_(seed) {}

  // Underlying engine access (for use with std:: distributions).
  std::mt19937_64& engine() { return engine_; }

  std::uint64_t seed() const { return seed_; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Standard normal scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  bool bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Samples an index proportionally to the (non-negative) weights.
  // Throws if all weights are zero or any weight is negative.
  std::size_t weighted_index(std::span<const double> weights);

  // Samples k distinct indices uniformly from [0, n) (partial Fisher-Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  // Draws from a symmetric Dirichlet distribution of dimension `dim` with
  // concentration `alpha` (used by the Pachinko Allocation Method).
  std::vector<double> dirichlet(std::size_t dim, double alpha);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Deterministically derives an independent child stream. Streams forked
  // with distinct tags from the same parent are decorrelated.
  Rng fork(std::uint64_t tag) const;

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

// SplitMix64 — used to derive fork seeds; public for testability.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace specdag
