#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace specdag {

double mean_of(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean_of: empty input");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev_of(std::span<const double> values) {
  double m = mean_of(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile_sorted: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile_sorted: q outside [0,1]");
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("summarize: empty input");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.mean = mean_of(sorted);
  s.stddev = stddev_of(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.q3 = quantile_sorted(sorted, 0.75);
  return s;
}

}  // namespace specdag
