// Small descriptive-statistics helpers used by the evaluation harness
// (Figure 9 reports per-client accuracy distributions; Figures 10/11 report
// means; the scalability bench reports timing averages).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace specdag {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

// Computes the five-number summary plus mean/stddev. Throws on empty input.
Summary summarize(std::span<const double> values);

double mean_of(std::span<const double> values);
double stddev_of(std::span<const double> values);

// Linear-interpolated quantile of a *sorted* vector, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

}  // namespace specdag
