#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace specdag {

ThreadPool::ThreadPool(std::size_t num_threads) {
  // 0 = one worker per hardware thread (which itself may report 0 on
  // exotic platforms, hence the final clamp to at least one worker).
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // std::function requires copyable targets, so the packaged_task rides in
  // a shared_ptr.
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  post([packaged] { (*packaged)(); });
  return fut;
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace specdag
