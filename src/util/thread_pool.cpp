#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace specdag {

ThreadPool::ThreadPool(std::size_t num_threads, const char* name) : name_(name) {
  // 0 = one worker per hardware thread (which itself may report 0 on
  // exotic platforms, hence the final clamp to at least one worker).
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads = std::max<std::size_t>(1, num_threads);
  if (obs::kObsCompiledIn) {
    const std::string prefix = std::string("pool.") + name_ + ".";
    busy_nanos_ = &obs::Registry::counter(prefix + "busy_nanos");
    idle_nanos_ = &obs::Registry::counter(prefix + "idle_nanos");
    tasks_run_ = &obs::Registry::counter(prefix + "tasks");
    task_wait_us_ = &obs::Registry::histogram(prefix + "task_wait_us");
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // std::function requires copyable targets, so the packaged_task rides in
  // a shared_ptr.
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  post([packaged] { (*packaged)(); });
  return fut;
}

void ThreadPool::post(std::function<void()> task) {
  const std::uint64_t enqueue_ns =
      obs::metrics_enabled() || obs::tracing_enabled() ? obs::now_ns() : 0;
  // Capture the poster's active context so the worker records this task's
  // metrics/trace events into the run that posted it.
  obs::Context* ctx = obs::kObsCompiledIn ? &obs::Context::current() : nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool: submit after shutdown");
    tasks_.push(Task{std::move(task), enqueue_ns, ctx});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  obs::set_thread_name(std::string(name_) + "-" + std::to_string(worker_index));
  for (;;) {
    Task task;
    // The idle interval belongs to whichever task ends it, so the clock
    // must start before that task's context is known — hence the gate on
    // compiled-in obs rather than any context's runtime flag.
    std::uint64_t wait_start = 0;
    if (obs::kObsCompiledIn) wait_start = obs::now_ns();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Run the task under the context it was posted from: its counters,
    // spans, and the pool's own accounting attribute to the posting run.
    obs::ContextScope ctx_scope(task.ctx);
    // Metrics and tracing are independent switches: --trace with --obs off
    // must still emit the dequeue instants (and vice versa).
    const bool metrics = obs::metrics_enabled() && busy_nanos_ != nullptr;
    const bool tracing = obs::tracing_enabled();
    if (metrics || tracing) {
      const std::uint64_t run_start = obs::now_ns();
      const std::uint64_t wait_us = task.enqueue_ns != 0 && run_start > task.enqueue_ns
                                        ? (run_start - task.enqueue_ns) / 1000
                                        : 0;
      if (metrics) {
        if (wait_start != 0) idle_nanos_->add(run_start - wait_start);
        if (task.enqueue_ns != 0) task_wait_us_->record(wait_us);
      }
      if (tracing) {
        obs::trace_detail::instant("pool.dequeue", {{"wait_us", wait_us}});
      }
      task.fn();
      if (metrics) {
        tasks_run_->add();
        busy_nanos_->add(obs::now_ns() - run_start);
      }
    } else {
      task.fn();
    }
  }
}

}  // namespace specdag
