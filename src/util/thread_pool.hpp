// Fixed-size thread pool with a parallel_for helper.
//
// The simulator uses it to train the round's active clients concurrently
// (they are independent until publication), which mirrors the paper's
// "concurrently active clients" notion in the scalability experiment.
//
// Each pool carries a short name ("prepare", "encode") used to label its
// obs metrics (pool.<name>.busy_nanos / idle_nanos / tasks, task_wait_us)
// and its worker threads in trace output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace specdag {

namespace obs {
class Context;
class Counter;
class Histogram;
}  // namespace obs

class ThreadPool {
 public:
  // num_threads == 0 means one worker per hardware thread. `name` labels the
  // pool's metrics and trace tracks; it must outlive the pool (use a
  // literal).
  explicit ThreadPool(std::size_t num_threads = 0, const char* name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future rethrows any exception it raised.
  std::future<void> submit(std::function<void()> task);

  // Fire-and-forget enqueue (no future, no promise allocation). The task
  // must not throw — an escaped exception terminates the worker. Tasks run
  // in FIFO order relative to every other submit/post (the store's encode
  // pipeline relies on this to settle base payloads before their deltas).
  void post(std::function<void()> task);

  // Runs fn(i) for i in [0, n), blocking until all complete. Exceptions from
  // tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
    // The poster's active obs context, captured at post()/submit() time and
    // re-installed around fn() in the worker — so pool work (client
    // prepares, async encodes) records metrics and trace events into the
    // scenario run that spawned it, not whatever ran on the worker last.
    obs::Context* ctx = nullptr;
  };

  void worker_loop(std::size_t worker_index);

  const char* name_;
  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Cached registry references — resolved once in the ctor so workers never
  // touch the registry mutex.
  obs::Counter* busy_nanos_ = nullptr;
  obs::Counter* idle_nanos_ = nullptr;
  obs::Counter* tasks_run_ = nullptr;
  obs::Histogram* task_wait_us_ = nullptr;
};

}  // namespace specdag
