// Fixed-size thread pool with a parallel_for helper.
//
// The simulator uses it to train the round's active clients concurrently
// (they are independent until publication), which mirrors the paper's
// "concurrently active clients" notion in the scalability experiment.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace specdag {

class ThreadPool {
 public:
  // num_threads == 0 means one worker per hardware thread.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future rethrows any exception it raised.
  std::future<void> submit(std::function<void()> task);

  // Fire-and-forget enqueue (no future, no promise allocation). The task
  // must not throw — an escaped exception terminates the worker. Tasks run
  // in FIFO order relative to every other submit/post (the store's encode
  // pipeline relies on this to settle base payloads before their deltas).
  void post(std::function<void()> task);

  // Runs fn(i) for i in [0, n), blocking until all complete. Exceptions from
  // tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace specdag
