// Finite-difference gradient checking for layers and models.
//
// Verifies both parameter gradients and input gradients of a scalar loss
// L(layer(x)) against central differences. This is the strongest correctness
// test the NN substrate has: any indexing or chain-rule bug in a backward
// pass shows up here.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.hpp"
#include "nn/model.hpp"

namespace specdag::testing {

// Scalar loss over the layer output; sum of squares / 2 keeps dL/dy = y.
inline double half_sq_sum(const Tensor& t) {
  double s = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) s += 0.5 * static_cast<double>(t[i]) * t[i];
  return s;
}

inline Tensor half_sq_grad(const Tensor& t) { return t; }

// Checks dL/dparams of `layer` for input `input` against central
// differences. `tol` is the max allowed absolute error; gradients of typical
// magnitude ~1 check out to ~1e-2 with float storage and eps 1e-2.
inline void check_param_gradients(nn::Layer& layer, const Tensor& input, double tol = 5e-2,
                                  float eps = 1e-2f) {
  // Analytical gradients.
  for (auto& p : layer.params()) p.grad->fill(0.0f);
  Tensor out = layer.forward(input, /*train=*/true);
  layer.backward(half_sq_grad(out));

  for (auto& p : layer.params()) {
    auto& values = p.value->data();
    auto& grads = p.grad->data();
    // Check a bounded number of coordinates to keep tests fast.
    const std::size_t stride = std::max<std::size_t>(1, values.size() / 24);
    for (std::size_t i = 0; i < values.size(); i += stride) {
      const float original = values[i];
      values[i] = original + eps;
      const double up = half_sq_sum(layer.forward(input, false));
      values[i] = original - eps;
      const double down = half_sq_sum(layer.forward(input, false));
      values[i] = original;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(grads[i], numeric, tol)
          << "param " << p.name << " coordinate " << i;
    }
  }
}

// Checks dL/dinput of `layer` against central differences.
inline void check_input_gradients(nn::Layer& layer, Tensor input, double tol = 5e-2,
                                  float eps = 1e-2f) {
  Tensor out = layer.forward(input, /*train=*/true);
  for (auto& p : layer.params()) p.grad->fill(0.0f);
  const Tensor grad_in = layer.backward(half_sq_grad(out));
  ASSERT_EQ(grad_in.shape(), input.shape());

  const std::size_t stride = std::max<std::size_t>(1, input.numel() / 24);
  for (std::size_t i = 0; i < input.numel(); i += stride) {
    const float original = input[i];
    input[i] = original + eps;
    const double up = half_sq_sum(layer.forward(input, false));
    input[i] = original - eps;
    const double down = half_sq_sum(layer.forward(input, false));
    input[i] = original;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tol) << "input coordinate " << i;
  }
}

}  // namespace specdag::testing
